"""Command-line interface: ``python -m repro.cli <command> …``.

Six subcommands expose the library's main workflows:

* ``check``   — evaluate a string formula on explicit strings::

      python -m repro.cli check --alphabet ab \\
          "([x,y]l(x = y))* . [x,y]l(x = y = eps)" x=abab y=abab

* ``query``   — run an alignment calculus query against a database
  stored as JSON (``{"relation": [["col1", "col2"], …], …}``)::

      python -m repro.cli query --alphabet acgt --db db.json \\
          --head x "exists y: R1(y, x) & [y]l(y = 'a') . [y]l(y = eps)"

* ``compile`` — show the Theorem 3.1 machine for a string formula
  (text listing or Graphviz DOT);
* ``limit``   — run the Theorem 5.2 limitation analysis;
* ``serve``   — run the long-lived query daemon (:mod:`repro.service`)
  over one database, with a session pool, cost-based admission
  control and per-request deadlines::

      python -m repro.cli serve --alphabet ab --db db.json --port 7094

* ``client``  — query a running daemon (or probe it with ``--health``
  / ``--stats`` / ``--explain``, or mutate it with ``--update``)::

      python -m repro.cli client --port 7094 --head x "R2(x)" --length 3
      python -m repro.cli client --port 7094 \
          --update '{"insert": {"R2": [["bb"]]}}'

  See ``docs/service.md`` for the wire protocol and the operations
  runbook.

``query`` exposes the observability layer
(:mod:`repro.observability`): ``--stats`` prints the legacy
cache/engine/parallel summary (including planner-rejection counts),
``--profile`` a per-stage time profile, ``--trace`` the full span
tree, and ``--metrics-out PATH`` writes the schema-stable JSON
:class:`~repro.observability.TraceReport`.  ``--explain`` prints the
normalized :mod:`repro.ir` plan — cost estimates, fired rewrite rules
and the optimized algebra expression — instead of evaluating.
``--storage ngram`` (optionally with ``--index-dir``) loads relations
into the positional n-gram index backend (:mod:`repro.storage`) the
planner probes for pushed-down selection factors; ``--storage slp``
holds every cell as a straight-line program (:mod:`repro.slp`).
``--kernel {v1,v2,v3,auto}`` selects the acceptance kernel tier
(:mod:`repro.fsa.determinize`; the default ``auto`` serves
in-fragment machines from the determinized v2 scan tables and falls
back to the v1 worklist kernel otherwise; ``v3`` additionally
evaluates compressed inputs on their grammars,
:mod:`repro.slp.kernel`).  All human-readable
instrumentation goes to stderr so stdout stays a clean tuple stream.

Formulas use the concrete syntax of :mod:`repro.core.parser`.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.alphabet import Alphabet
from repro.core.database import Database
from repro.core.parser import parse_formula, parse_string_formula
from repro.core.query import Query
from repro.core.semantics import check_string_formula
from repro.core.syntax import string_variables
from repro.engine import QueryEngine, available_engines
from repro.errors import ReproError
from repro.observability import Tracer
from repro.storage import STORAGE_KINDS, storage_factory


def _alphabet(text: str) -> Alphabet:
    return Alphabet(text)


def _comma_list(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _parse_bindings(pairs: list[str]) -> dict[str, str]:
    bindings: dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"binding {pair!r} must look like var=string")
        name, _, value = pair.partition("=")
        bindings[name] = value
    return bindings


def cmd_check(args: argparse.Namespace) -> int:
    alphabet = _alphabet(args.alphabet)
    formula = parse_string_formula(args.formula)
    env = _parse_bindings(args.bindings)
    missing = string_variables(formula) - set(env)
    if missing:
        raise ReproError(f"missing bindings for {sorted(missing)}")
    for value in env.values():
        alphabet.validate_string(value)
    verdict = check_string_formula(formula, env)
    print("satisfied" if verdict else "not satisfied")
    return 0 if verdict else 1


def cmd_query(args: argparse.Namespace) -> int:
    """Run one query; print answers to stdout, instrumentation to stderr."""
    alphabet = _alphabet(args.alphabet)
    factory = None
    if args.storage != "memory" or args.index_dir:
        factory = storage_factory(args.storage, index_dir=args.index_dir)
    database = Database.from_json(args.db, alphabet, storage_factory=factory)
    formula = parse_formula(args.formula)
    query = Query(tuple(args.head), formula, alphabet)
    tracing = bool(args.trace or args.profile or args.metrics_out)
    session = QueryEngine(
        tracer=Tracer() if tracing else None, kernel_mode=args.kernel
    )
    if args.explain:
        from repro.ir.explain import explain_query

        print(explain_query(session, query, database, length=args.length))
        return 0
    answers = session.evaluate(
        query,
        database,
        length=args.length,
        engine=args.engine,
        workers=args.workers,
        shards=args.shards,
    )
    for row in sorted(answers):
        print("\t".join(value if value else "ε" for value in row))
    print(f"-- {len(answers)} tuple(s)", file=sys.stderr)
    report = session.trace_report()
    if args.stats:
        print(report.summary(), file=sys.stderr)
    if args.profile:
        print(report.describe(), file=sys.stderr)
    if args.trace:
        print(report.tree(), file=sys.stderr)
    if args.metrics_out:
        report.write(args.metrics_out)
        print(f"-- metrics written to {args.metrics_out}", file=sys.stderr)
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.fsa.compile import compile_string_formula
    from repro.fsa.render import to_dot, to_text

    alphabet = _alphabet(args.alphabet)
    formula = parse_string_formula(args.formula)
    compiled = compile_string_formula(formula, alphabet)
    if args.dot:
        print(to_dot(compiled.fsa))
    else:
        print(f"tapes: {', '.join(compiled.variables)}")
        print(to_text(compiled.fsa))
    return 0


def cmd_limit(args: argparse.Namespace) -> int:
    from repro.safety.limitation import formula_limitation

    alphabet = _alphabet(args.alphabet)
    formula = parse_string_formula(args.formula)
    report = formula_limitation(
        formula, args.inputs, args.outputs, alphabet
    )
    print(f"limited: {report.limited}")
    print(f"reason:  {report.reason}")
    if report.crossing_size is not None:
        print(f"|A″|:    {report.crossing_size}")
    if report.limited:
        print(f"bound:   {report.limit.describe()}")
    return 0 if report.limited else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the query daemon until SIGINT/SIGTERM, then drain."""
    import asyncio
    import signal

    from repro.service import QueryService

    alphabet = _alphabet(args.alphabet)
    factory = None
    if args.storage != "memory" or args.index_dir:
        factory = storage_factory(args.storage, index_dir=args.index_dir)
    database = Database.from_json(args.db, alphabet, storage_factory=factory)

    async def run() -> None:
        service = QueryService(
            database,
            host=args.host,
            port=args.port,
            pool_size=args.pool_size,
            max_cost=args.max_cost,
            max_queue=args.max_queue,
            default_deadline=args.deadline,
            default_workers=args.workers,
            default_shards=args.shards,
            kernel_mode=args.kernel,
            report_log=args.report_log,
        )
        await service.start()
        host, port = service.address
        print(f"-- serving {args.db} on {host}:{port}", file=sys.stderr)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()
        print("-- draining", file=sys.stderr)
        await service.drain()
        print("-- drained, bye", file=sys.stderr)

    asyncio.run(run())
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    """One request against a running daemon; rows to stdout."""
    import json as _json

    from repro.errors import ServiceError
    from repro.service import ServiceClient

    try:
        connection = ServiceClient(args.host, args.port, timeout=args.timeout)
    except OSError as error:
        raise ServiceError(
            f"cannot reach {args.host}:{args.port}: {error}"
        ) from error
    with connection as client:
        if args.health:
            print(_json.dumps(client.health(), indent=2, sort_keys=True))
            return 0
        if args.stats:
            print(_json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.update is not None:
            try:
                delta = _json.loads(args.update)
            except _json.JSONDecodeError as error:
                raise ReproError(
                    f"--update must be a JSON object: {error}"
                ) from error
            if not isinstance(delta, dict):
                raise ReproError(
                    "--update must be a JSON object with 'insert' "
                    "and/or 'delete' keys"
                )
            result = client.update(
                insert=delta.get("insert"),
                delete=delta.get("delete"),
                deadline=args.deadline,
            )
            print(_json.dumps(result, indent=2, sort_keys=True))
            return 0
        if not args.formula:
            raise ReproError(
                "a formula is required unless --health, --stats or "
                "--update is given"
            )
        if args.explain:
            print(
                client.explain(
                    args.formula,
                    args.head,
                    length=args.length,
                    deadline=args.deadline,
                )
            )
            return 0
        rows = client.query(
            args.formula,
            args.head,
            length=args.length,
            engine=args.engine,
            workers=args.workers,
            shards=args.shards,
            deadline=args.deadline,
        )
        for row in rows:
            print("\t".join(value if value else "ε" for value in row))
        print(f"-- {len(rows)} tuple(s)", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Alignment calculus for string databases "
        "(Grahne, Nykänen & Ukkonen, PODS 1994).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="evaluate a string formula")
    check.add_argument("--alphabet", required=True, help="e.g. 'acgt'")
    check.add_argument("formula", help="string formula (concrete syntax)")
    check.add_argument("bindings", nargs="+", help="var=string pairs")
    check.set_defaults(handler=cmd_check)

    query = sub.add_parser("query", help="run a query against a JSON database")
    query.add_argument("--alphabet", required=True)
    query.add_argument("--db", required=True, help="JSON file of relations")
    query.add_argument(
        "--head",
        required=True,
        type=_comma_list,
        help="answer variables, comma separated, in order",
    )
    query.add_argument(
        "--length",
        type=int,
        default=None,
        help="truncation bound (default: certified by the safety analysis)",
    )
    query.add_argument(
        "--engine",
        choices=available_engines(),
        default="auto",
        help="evaluation engine from the repro.engine registry "
        "(default: auto — planner first, naive fallback, when no "
        "--length is given; upgraded to the parallel engine when "
        "workers and candidate-space size warrant it)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for sharded evaluation (default: one "
        "per CPU for the parallel engine; 1 forces sequential). "
        "Answers are identical for every worker count.",
    )
    query.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for sharded evaluation (default: 4 per worker)",
    )
    query.add_argument(
        "--kernel",
        choices=("v1", "v2", "v3", "auto"),
        default="auto",
        help="acceptance-kernel mode (default: auto — the determinized "
        "scan kernel for machines in the unidirectional / "
        "right-restricted fragment, the compiled worklist kernel "
        "otherwise; v1 forces the worklist kernel everywhere; v2 "
        "requests the scan kernel with transparent v1 fallback; v3 "
        "adds grammar-path acceptance for SLP-compressed inputs). "
        "Answers are identical for every mode.",
    )
    query.add_argument(
        "--storage",
        choices=STORAGE_KINDS,
        default="memory",
        help="relation storage backend (default: memory — plain "
        "frozensets; ngram builds positional n-gram indexes the "
        "planner probes for pushed-down selection factors; slp "
        "compresses cells into straight-line programs with "
        "grammar-extracted prefilters). Answers are identical for "
        "every backend.",
    )
    query.add_argument(
        "--index-dir",
        metavar="DIR",
        default=None,
        help="with --storage ngram: persist the index artifacts under "
        "DIR (built once, mmap'd read-only on later runs and shared "
        "by parallel workers)",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the normalized plan (with cost estimates and "
        "fired rewrite rules) and the optimized algebra expression "
        "instead of evaluating",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print engine cache/timing and parallel-execution "
        "instrumentation to stderr",
    )
    query.add_argument(
        "--trace",
        action="store_true",
        help="record the evaluation as hierarchical spans and print "
        "the span tree to stderr",
    )
    query.add_argument(
        "--profile",
        action="store_true",
        help="record spans and print a per-pipeline-stage time "
        "profile (plus counters and gauges) to stderr",
    )
    query.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="record spans and write the JSON TraceReport "
        "(schema repro.trace-report/3) to PATH",
    )
    query.add_argument("formula")
    query.set_defaults(handler=cmd_query)

    compile_ = sub.add_parser("compile", help="show the Theorem 3.1 machine")
    compile_.add_argument("--alphabet", required=True)
    compile_.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    compile_.add_argument("formula")
    compile_.set_defaults(handler=cmd_compile)

    limit = sub.add_parser("limit", help="Theorem 5.2 limitation analysis")
    limit.add_argument("--alphabet", required=True)
    limit.add_argument(
        "--inputs",
        type=_comma_list,
        default=[],
        help="input variables, comma separated",
    )
    limit.add_argument(
        "--outputs",
        type=_comma_list,
        required=True,
        help="output variables, comma separated",
    )
    limit.add_argument("formula")
    limit.set_defaults(handler=cmd_limit)

    from repro.service.pool import DEFAULT_POOL_SIZE
    from repro.service.protocol import DEFAULT_PORT

    serve = sub.add_parser(
        "serve", help="run the query daemon (see docs/service.md)"
    )
    serve.add_argument("--alphabet", required=True)
    serve.add_argument("--db", required=True, help="JSON file of relations")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port (default {DEFAULT_PORT}; 0 picks a free port)",
    )
    serve.add_argument(
        "--pool-size",
        type=int,
        default=DEFAULT_POOL_SIZE,
        help="concurrently evaluating requests "
        f"(default {DEFAULT_POOL_SIZE}); all share one warm session",
    )
    serve.add_argument(
        "--max-cost",
        type=float,
        default=None,
        help="admission ceiling on the IR cost estimate (default: "
        "no cost-based rejection)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="max requests waiting for a slot before 'queue-full' "
        "rejections (default 64)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline in seconds, queue wait "
        "included (default: none; clients may set their own)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="default worker processes for sharded evaluation",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="default shard count for sharded evaluation",
    )
    serve.add_argument(
        "--kernel", choices=("v1", "v2", "v3", "auto"), default="auto"
    )
    serve.add_argument(
        "--storage", choices=STORAGE_KINDS, default="memory"
    )
    serve.add_argument("--index-dir", metavar="DIR", default=None)
    serve.add_argument(
        "--report-log",
        metavar="PATH",
        default=None,
        help="append one JSON TraceReport line per request to PATH",
    )
    serve.set_defaults(handler=cmd_serve)

    client = sub.add_parser(
        "client", help="query a running daemon (see docs/service.md)"
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=DEFAULT_PORT)
    client.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="socket timeout in seconds (default 30)",
    )
    client.add_argument(
        "--head",
        type=_comma_list,
        default=[],
        help="answer variables, comma separated, in order",
    )
    client.add_argument("--length", type=int, default=None)
    client.add_argument(
        "--engine", choices=available_engines(), default=None
    )
    client.add_argument("--workers", type=int, default=None)
    client.add_argument("--shards", type=int, default=None)
    client.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="server-side deadline in seconds for this request",
    )
    client.add_argument(
        "--explain",
        action="store_true",
        help="print the server's plan explanation instead of rows",
    )
    client.add_argument(
        "--health", action="store_true", help="print the health document"
    )
    client.add_argument(
        "--stats", action="store_true", help="print service statistics"
    )
    client.add_argument(
        "--update",
        metavar="JSON",
        default=None,
        help="apply a delta: a JSON object with 'insert' and/or "
        "'delete' mapping relation names to row lists, e.g. "
        '\'{"insert": {"R": [["ab", "b"]]}}\'',
    )
    client.add_argument("formula", nargs="?", default=None)
    client.set_defaults(handler=cmd_client)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # The consumer closed stdout early (e.g. `repro client … | head`);
        # park stdout on devnull so the interpreter's shutdown flush
        # doesn't raise again, and exit quietly like other filters do.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
