"""The SLP-compressed string domain: grammars + the kernel-v3 path.

Two modules:

* :mod:`repro.slp.grammar` — the straight-line-program representation
  (interned binary rules, deterministic :func:`~repro.slp.grammar
  .compress`, guarded :meth:`~repro.slp.grammar.SLP.expand`, and the
  grammar-level observers the storage backend and cost model consume).
* :mod:`repro.slp.kernel` — kernel v3: acceptance of compressed
  strings evaluated *on the grammar*, composing per-rule state→state
  summaries over the v2 DFA table, so a verdict costs
  ``O(rules · states)`` instead of ``O(expanded length)``.

The compressed relation backend lives in :mod:`repro.storage.slp`
(``--storage slp``); the kernel tier is ``--kernel v3`` / the
``KERNEL_V3`` mode of :func:`repro.fsa.kernel.kernel_for`.
"""

from repro.slp.grammar import (
    DEFAULT_EXPAND_LIMIT,
    SLP,
    compress,
    concat,
    expand,
    expanded_length,
    literal,
    repeat,
)
from repro.slp.kernel import MAX_SUMMARIES, SLPKernel, slp_kernel_for

__all__ = [
    "DEFAULT_EXPAND_LIMIT",
    "MAX_SUMMARIES",
    "SLP",
    "SLPKernel",
    "compress",
    "concat",
    "expand",
    "expanded_length",
    "literal",
    "repeat",
    "slp_kernel_for",
]
