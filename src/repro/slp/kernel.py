"""Kernel v3: automaton acceptance evaluated on the grammar.

The v2 scan (:mod:`repro.fsa.determinize`) already collapsed
in-fragment acceptance to one pass over the endmarked input — but a
pass over the *expanded* input, O(|string|) per candidate.  Following
the compositional MSO-over-SLP evaluation of Muñoz et al. (PAPERS.md:
"Dynamic direct access of MSO query evaluation over SLP-compressed
strings"), this module evaluates the same DFA **bottom-up over the
grammar** instead: every rule ``X`` of a straight-line program gets a
*summary* — the function ``state → state`` the DFA computes across
``X``'s expansion, stored as a flat ``array('l')`` indexed by state id
(stride-1 premultiplication: each entry is directly the index into the
next summary, the grammar analogue of the scan table's
``next_state · ncols`` entries).  A terminal rule's summary is one
column of the v2 table; a pair rule's summary is the composition
``h[s] = right[left[s]]`` of its children's — pure array indexing, no
re-scan.  Acceptance of a compressed string is then

    ``⊢-column → root summary → ⊣-column``

— three table applications once the root's summary exists, and
``O(rules · states)`` to build it, **independent of the expanded
length**.  Because rules are interned process-wide
(:mod:`repro.slp.grammar`), summaries are memoized per ``(DFA, rule)``
and shared across every string, query and batch that contains the
rule; the kernel itself rides the session kernel cache and the
machine-instance stash, so the memo is shared across queries exactly
like the v2 table.

:class:`SLPKernel` subclasses
:class:`~repro.fsa.determinize.DeterministicKernel` and shares its
table — plain-string inputs scan exactly like v2 (same verdicts, same
counters), so ``--kernel v3`` is a strict superset of v2 behaviour.

Tracer counters: ``kernel.v3_hits`` (instance-cache hits),
``kernel.slp_summaries`` (per-rule summaries built),
``kernel.slp_expanded`` (SLP cells a non-grammar path had to expand),
``simulate.runs`` / ``simulate.grammar_rules`` (grammar-path
acceptance runs and the rules they touched).
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence

from repro.errors import AlphabetError, ArityError
from repro.fsa.determinize import (
    ACCEPT,
    START,
    DeterministicKernel,
    determinized_for,
)
from repro.fsa.machine import FSA, register_kernel_stash
from repro.observability import current_tracer
from repro.slp.grammar import SLP, _Node, _postorder

#: Bound on memoized per-rule summaries per kernel; reaching it evicts
#: oldest-first between acceptance calls (never mid-composition), like
#: :data:`repro.fsa.kernel.MAX_BINDINGS`.
MAX_SUMMARIES = 1 << 16

#: Stash attribute for the per-instance v3 kernel.
_STASH = "_kernel_v3"
register_kernel_stash(_STASH)

#: Stash marker for "v3 declined" (out of fragment / over budget).
_UNSUPPORTED = "unsupported"


class SLPKernel(DeterministicKernel):
    """A determinized kernel that also accepts SLP-compressed inputs.

    Built by :func:`slp_kernel_for`; shares the base kernel's flat
    scan table (no recompilation) and adds the per-rule summary memo.
    Inputs may mix plain strings and :class:`~repro.slp.grammar.SLP`
    values freely:

    * a single-tape SLP input takes the grammar path —
      ``O(rules · states)``, expanded length never materialized;
    * plain strings take the inherited v2 scan, verdict-identical to
      :class:`~repro.fsa.determinize.DeterministicKernel`;
    * SLP cells on multitape machines are expanded (within the
      grammar's decompression cap) and scanned — correct, counted by
      ``kernel.slp_expanded``, and the reason multitape compressed
      workloads should keep cells small.

    >>> from repro.core.alphabet import AB, LEFT_END, RIGHT_END
    >>> from repro.fsa.machine import make_fsa
    >>> from repro.slp import compress, repeat
    >>> ends_ab = make_fsa(1, AB, "s", ["f"], [
    ...     ("s", (LEFT_END,), "scan", (+1,)),
    ...     ("scan", ("a",), "scan", (+1,)),
    ...     ("scan", ("b",), "scan", (+1,)),
    ...     ("scan", ("a",), "saw_a", (+1,)),
    ...     ("saw_a", ("b",), "win", (+1,)),
    ...     ("win", (RIGHT_END,), "f", (0,)),
    ... ])
    >>> kernel = slp_kernel_for(ends_ab)
    >>> huge = repeat(compress("ba"), 10**12)  # 2·10¹² chars, ~60 rules
    >>> kernel.accepts((huge,))
    False
    >>> kernel.accepts((compress("bbab"),)), kernel.accepts(("bbab",))
    (True, True)
    """

    __slots__ = ("_summaries",)

    def __init__(self, base: DeterministicKernel) -> None:
        super().__init__(
            base.fsa,
            base.fragment,
            base._table,
            base._ncols,
            base._symbol_count,
            base._char_ids,
            base.dfa_states,
        )
        self._summaries: dict[_Node, array] = {}

    def __reduce__(self):
        """Pickle as the machine; rebuild (and re-stash) on load.

        The summary memo is scratch state — workers rebuild summaries
        on demand from the rules they actually see.
        """
        return (_rebuild, (self.fsa,))

    # -- per-rule summaries ----------------------------------------------

    def _summary(self, root: _Node) -> array:
        """The state→state summary of ``root``, memoized per rule.

        Builds bottom-up over the rule DAG: terminal summaries read one
        column of the scan table (the single ``// ncols`` per entry
        converts the table's premultiplied targets into state ids),
        pair summaries compose their children by indexing.  Sticky
        sinks need no special casing — their table rows are constant,
        so every summary maps ``DEAD → DEAD`` and ``ACCEPT → ACCEPT``.
        """
        summaries = self._summaries
        cached = summaries.get(root)
        if cached is not None:
            return cached
        if len(summaries) >= MAX_SUMMARIES:
            # Evict between calls only, so in-flight compositions
            # below never lose a child they still need.
            for stale in list(summaries)[: MAX_SUMMARIES // 2]:
                del summaries[stale]
        table = self._table
        ncols = self._ncols
        states = range(self.dfa_states)
        char_ids = self._char_ids
        built = 0
        for node in _postorder(root):
            if node in summaries:
                continue
            if node.char is not None:
                column = char_ids.get(node.char)
                if column is None:
                    raise AlphabetError(
                        f"character {node.char!r} of a compressed input "
                        f"is not in alphabet {self.fsa.alphabet}"
                    )
                summary = array(
                    "l",
                    [table[state * ncols + column] // ncols for state in states],
                )
            else:
                left = summaries[node.left]
                right = summaries[node.right]
                summary = array("l", [right[state] for state in left])
            summaries[node] = summary
            built += 1
        if built:
            current_tracer().add("kernel.slp_summaries", built)
        return summaries[root]

    def _accepts_grammar(self, slp: SLP) -> bool:
        """Grammar-path acceptance of one single-tape SLP input."""
        table = self._table
        ncols = self._ncols
        left_column = self._symbol_count - 2
        right_column = self._symbol_count - 1
        state = table[START * ncols + left_column] // ncols
        rules = 0
        root = slp.root
        if root is not None:
            state = self._summary(root)[state]
            rules = slp.stored_size()
        state = table[state * ncols + right_column] // ncols
        tracer = current_tracer()
        tracer.add("simulate.runs")
        tracer.add("simulate.grammar_rules", rules)
        return state == ACCEPT

    # -- input normalization ---------------------------------------------

    def _expand_cells(self, row: tuple) -> tuple[str, ...]:
        """Expand any SLP cells of a row bound for the v2 scan path."""
        expanded = []
        swapped = 0
        for cell in row:
            if isinstance(cell, SLP):
                expanded.append(cell.expand())
                swapped += 1
            else:
                expanded.append(cell)
        if swapped:
            current_tracer().add("kernel.slp_expanded", swapped)
        return tuple(expanded)

    # -- acceptance entry points -----------------------------------------

    def accepts(self, inputs: Sequence[object]) -> bool:
        """Acceptance of one row, compressed cells welcome.

        Exactly equivalent to the v2 scan of the expanded row (and
        hence to the reference search), including arity and alphabet
        validation — but a single-tape SLP input never expands.

        Args:
            inputs: One string or :class:`~repro.slp.grammar.SLP` per
                tape.

        Returns:
            The acceptance verdict.
        """
        inputs = tuple(inputs)
        if len(inputs) != self.arity:
            raise ArityError(
                f"{self.arity}-FSA fed {len(inputs)} input strings"
            )
        if self.arity == 1 and isinstance(inputs[0], SLP):
            return self._accepts_grammar(inputs[0])
        if any(isinstance(cell, SLP) for cell in inputs):
            inputs = self._expand_cells(inputs)
        return super().accepts(inputs)

    def accepts_batch(
        self, rows: Sequence[Sequence[object]]
    ) -> tuple[bool, ...]:
        """:meth:`accepts` over a batch; grammar rows skip the scan.

        Single-tape SLP rows are answered on the grammar path; all
        remaining rows (plain strings, multitape rows with expanded
        cells) are driven through the inherited column-wise v2 sweep
        in one sub-batch, preserving its batching advantages and
        counters.

        Args:
            rows: The input tuples.

        Returns:
            Per-row verdicts, positionally aligned with ``rows``.
        """
        arity = self.arity
        verdicts: list[bool | None] = [None] * len(rows)
        scan_rows: list[tuple] = []
        scan_slots: list[int] = []
        for slot, row in enumerate(rows):
            row = tuple(row)
            if len(row) != arity:
                raise ArityError(
                    f"{arity}-FSA fed {len(row)} input strings"
                )
            if arity == 1 and isinstance(row[0], SLP):
                verdicts[slot] = self._accepts_grammar(row[0])
            else:
                if any(isinstance(cell, SLP) for cell in row):
                    row = self._expand_cells(row)
                scan_rows.append(row)
                scan_slots.append(slot)
        if scan_rows:
            for slot, verdict in zip(
                scan_slots, super().accepts_batch(scan_rows)
            ):
                verdicts[slot] = verdict
        return tuple(verdicts)


def _rebuild(fsa: FSA) -> SLPKernel:
    """Unpickle hook: re-enter the worker's instance stash."""
    kernel = slp_kernel_for(fsa)
    if kernel is None:  # pragma: no cover - the machine was supported
        raise ArityError(
            f"machine {fsa} no longer supports kernel v3 after unpickling"
        )
    return kernel


def slp_kernel_for(fsa: FSA) -> SLPKernel | None:
    """The v3 kernel of ``fsa``, cached on the instance.

    Reuses :func:`~repro.fsa.determinize.determinized_for` — the v3
    kernel *is* the v2 DFA table plus the summary memo, so fragment
    classification, the cell budget and the subset construction are
    all shared with (and counted once across) the v2 tier.  Repeat
    lookups bump ``kernel.v3_hits``; the stash is dropped from pickles
    like every kernel stash
    (:data:`repro.fsa.machine._KERNEL_STASHES`).

    Args:
        fsa: The machine whose v3 kernel is wanted.

    Returns:
        The cached (or freshly wrapped) kernel, or ``None`` when the
        machine is out of fragment / over budget — callers
        (:func:`repro.fsa.kernel.kernel_for`) then fall back to v1.
    """
    cached = fsa.__dict__.get(_STASH)
    if cached is not None:
        if cached == _UNSUPPORTED:
            return None
        current_tracer().add("kernel.v3_hits")
        return cached
    base = determinized_for(fsa)
    if base is None:
        object.__setattr__(fsa, _STASH, _UNSUPPORTED)
        return None
    kernel = SLPKernel(base)
    object.__setattr__(fsa, _STASH, kernel)
    return kernel


__all__ = [
    "MAX_SUMMARIES",
    "SLPKernel",
    "slp_kernel_for",
]
