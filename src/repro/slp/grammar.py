"""Straight-line programs: grammar-compressed strings.

A straight-line program (SLP) is a context-free grammar in Chomsky
normal form that derives exactly one string: every rule is either a
*terminal* rule ``X → c`` or a *pair* rule ``X → Y Z``.  The derived
string can be exponentially longer than the grammar — ``aⁿ`` needs
only ``O(log n)`` rules — which is what lets the kernel-v3 acceptance
path (:mod:`repro.slp.kernel`) answer queries about strings far past
what the uncompressed pipeline could even materialize.

Rules are **hash-consed**: structurally identical nodes are interned
process-wide, so equal subtrees are shared, structural equality is
pointer equality, and per-node memo tables (kernel summaries, gram
sets) are automatically shared between every string containing the
subtree.  :func:`compress` is deterministic — equal strings always
compress to the *same* interned root — so structural identity of
compressed cells coincides with string equality, which the SLP storage
backend (:mod:`repro.storage.slp`) relies on for membership tests and
distinct counts without decompressing anything.

Builders: :func:`literal` (from a short string), :func:`concat`,
:func:`repeat` (binary powers — ``O(log n)`` rules), and
:func:`compress` (a RePair-style most-frequent-pair builder for
arbitrary strings).  Observers: :meth:`SLP.expand` (guarded by a
decompression cap), :meth:`SLP.expanded_length`, :meth:`SLP.grams`
(the factor set up to a gram size, computed on the grammar — never on
the expansion), and :meth:`SLP.stored_size` (the rule count the cost
model prices compressed columns by).
"""

from __future__ import annotations

import itertools
import weakref
from collections.abc import Iterator

from repro.errors import SLPError

#: Default cap on :meth:`SLP.expand` output, in characters.  An SLP
#: over the cap is exactly the payload kernel v3 exists for; expanding
#: it is almost certainly a bug, so it raises instead.
DEFAULT_EXPAND_LIMIT = 1 << 24

#: The process-wide rule interner: ``('t', char)`` for terminal rules,
#: ``(left_id, right_id)`` for pair rules.  Values are weakly held so
#: grammars die with their last reference.
_INTERNER: "weakref.WeakValueDictionary[tuple, _Node]" = (
    weakref.WeakValueDictionary()
)

#: Monotone node ids; never reused, so id order is creation order.
_NODE_IDS = itertools.count()


class _Node:
    """One interned SLP rule (terminal or pair).  Internal.

    Nodes are immutable after construction and unique per structure —
    always obtain them through :func:`_terminal` / :func:`_pair`, never
    directly, so identity comparisons and per-node memo tables stay
    sound.
    """

    __slots__ = ("id", "length", "char", "left", "right", "__weakref__")

    def __init__(
        self,
        length: int,
        char: str | None,
        left: "_Node | None",
        right: "_Node | None",
    ) -> None:
        self.id = next(_NODE_IDS)
        self.length = length
        self.char = char
        self.left = left
        self.right = right

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.char is not None:
            return f"_Node({self.char!r})"
        return f"_Node(#{self.id}, len={self.length})"


def _terminal(char: str) -> _Node:
    """The interned terminal rule ``X → char``."""
    if len(char) != 1:
        raise SLPError(
            f"terminal rules hold exactly one character, got {char!r}"
        )
    key = ("t", char)
    node = _INTERNER.get(key)
    if node is None:
        node = _Node(1, char, None, None)
        _INTERNER[key] = node
    return node


def _pair(left: _Node, right: _Node) -> _Node:
    """The interned pair rule ``X → left right``."""
    key = (left.id, right.id)
    node = _INTERNER.get(key)
    if node is None:
        node = _Node(left.length + right.length, None, left, right)
        _INTERNER[key] = node
    return node


def _postorder(root: _Node) -> list[_Node]:
    """The DAG's distinct nodes, children before parents."""
    order: list[_Node] = []
    seen: set[int] = set()
    stack: list[tuple[_Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node.id in seen:
            continue
        if expanded or node.char is not None:
            seen.add(node.id)
            order.append(node)
            continue
        stack.append((node, True))
        stack.append((node.right, False))
        stack.append((node.left, False))
    return order


class SLP:
    """A grammar-compressed string: one straight-line program.

    Instances wrap an interned rule DAG (or ``None`` for the empty
    string) and are value-like: equality and hashing are structural,
    and — because :func:`compress` is deterministic — two equal strings
    compressed independently compare equal.  SLPs pickle as their
    canonical rule list and re-intern on load, so they cross process
    boundaries (parallel shards, the service) at grammar size, not
    expanded size.

    >>> s = compress("abababab")
    >>> s.expanded_length(), len(s)
    (8, 8)
    >>> s.expand()
    'abababab'
    >>> s == compress("ab" * 4), s == compress("abab")
    (True, False)
    """

    __slots__ = ("_root",)

    def __init__(self, root: _Node | None) -> None:
        self._root = root

    # -- observation -----------------------------------------------------

    @property
    def root(self) -> _Node | None:
        """The interned root rule (``None`` for the empty string)."""
        return self._root

    def expanded_length(self) -> int:
        """``|expand()|`` — from the grammar, without expanding."""
        return self._root.length if self._root is not None else 0

    def __len__(self) -> int:
        return self.expanded_length()

    def stored_size(self) -> int:
        """The number of distinct rules in the grammar (its DAG size).

        This is the unit the cost model prices compressed columns in:
        a kernel-v3 acceptance pass touches each rule at most once.
        """
        if self._root is None:
            return 0
        return len(_postorder(self._root))

    def __iter__(self) -> Iterator[str]:
        """Stream the expanded characters left to right, lazily."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.char is not None:
                yield node.char
            else:
                stack.append(node.right)
                stack.append(node.left)

    def expand(self, max_chars: int = DEFAULT_EXPAND_LIMIT) -> str:
        """The derived string (guarded decompression).

        Args:
            max_chars: Decompression cap; expansion past it raises.

        Returns:
            The expanded string.

        Raises:
            SLPError: If the expanded length exceeds ``max_chars``.
        """
        if self._root is None:
            return ""
        if self._root.length > max_chars:
            raise SLPError(
                f"refusing to expand {self._root.length} characters "
                f"(cap {max_chars}); raise max_chars to force it"
            )
        # Assemble bottom-up over the *distinct* nodes so shared
        # subtrees (e.g. repeat powers) are concatenated once each.
        texts: dict[int, str] = {}
        for node in _postorder(self._root):
            if node.char is not None:
                texts[node.id] = node.char
            else:
                texts[node.id] = texts[node.left.id] + texts[node.right.id]
        return texts[self._root.id]

    def grams(self, n: int) -> frozenset[str]:
        """Every length-``n`` factor of the expanded string.

        Computed compositionally on the grammar: a pair rule's factors
        are its children's factors plus the windows straddling the
        seam, which only needs the children's length-``n-1`` prefixes
        and suffixes.  Cost is ``O(rules · n)`` — independent of the
        expanded length — which is what lets the SLP storage backend
        answer n-gram prefilter probes without decompressing.

        Args:
            n: The factor length (must be positive).

        Returns:
            The factor set (empty when the string is shorter than ``n``).
        """
        if n <= 0:
            raise SLPError(f"gram size must be positive, got {n}")
        if self._root is None:
            return frozenset()
        margin = n - 1
        # node id -> (grams, prefix≤margin, suffix≤margin)
        info: dict[int, tuple[set[str], str, str]] = {}
        for node in _postorder(self._root):
            if node.char is not None:
                grams = {node.char} if n == 1 else set()
                edge = node.char if margin else ""
                info[node.id] = (grams, edge, edge)
                continue
            l_grams, l_pre, l_suf = info[node.left.id]
            r_grams, r_pre, r_suf = info[node.right.id]
            grams = l_grams | r_grams
            seam = l_suf + r_pre
            grams.update(
                seam[start : start + n]
                for start in range(len(seam) - n + 1)
            )
            if margin:
                prefix = (
                    l_pre
                    if node.left.length >= margin
                    else (l_pre + r_pre)[:margin]
                )
                suffix = (
                    r_suf
                    if node.right.length >= margin
                    else (l_suf + r_suf)[-margin:]
                )
            else:
                prefix = suffix = ""
            info[node.id] = (grams, prefix, suffix)
        return frozenset(info[self._root.id][0])

    def validate(self) -> None:
        """Check the grammar's structural invariants.

        Every rule must be a well-formed terminal (one character, no
        children) or pair (two children, no character) with consistent
        derived lengths.  Interned construction guarantees all of this;
        the check exists so deserialized or hand-built grammars can be
        audited.

        Raises:
            SLPError: On the first violated invariant.
        """
        if self._root is None:
            return
        for node in _postorder(self._root):
            if node.char is not None:
                if node.left is not None or node.right is not None:
                    raise SLPError(
                        f"terminal rule {node.id} has children"
                    )
                if len(node.char) != 1 or node.length != 1:
                    raise SLPError(
                        f"terminal rule {node.id} is malformed"
                    )
            else:
                if node.left is None or node.right is None:
                    raise SLPError(f"pair rule {node.id} lacks children")
                if node.length != node.left.length + node.right.length:
                    raise SLPError(
                        f"pair rule {node.id} has inconsistent length "
                        f"{node.length} != {node.left.length} + "
                        f"{node.right.length}"
                    )

    # -- value semantics -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SLP):
            return NotImplemented
        return self._root is other._root

    def __hash__(self) -> int:
        return hash(self._root.id) if self._root is not None else 0

    def __repr__(self) -> str:
        length = self.expanded_length()
        if length <= 16:
            return f"SLP({self.expand()!r})"
        return f"SLP({length} chars, {self.stored_size()} rules)"

    # -- pickling --------------------------------------------------------

    def rules(self) -> tuple[object, ...]:
        """The canonical rule list: postorder, child refs by index.

        Each entry is either a one-character string (a terminal rule)
        or an ``(left_index, right_index)`` pair of earlier entries;
        the last entry is the root.  This is the pickle payload and a
        convenient export format.
        """
        if self._root is None:
            return ()
        order = _postorder(self._root)
        index = {node.id: position for position, node in enumerate(order)}
        return tuple(
            node.char
            if node.char is not None
            else (index[node.left.id], index[node.right.id])
            for node in order
        )

    @classmethod
    def from_rules(cls, rules: tuple[object, ...]) -> "SLP":
        """Rebuild (and re-intern) an SLP from :meth:`rules` output.

        Args:
            rules: The canonical rule list.

        Returns:
            The interned SLP.

        Raises:
            SLPError: If a rule references an undefined later rule.
        """
        if not rules:
            return cls(None)
        nodes: list[_Node] = []
        for position, rule in enumerate(rules):
            if isinstance(rule, str):
                nodes.append(_terminal(rule))
                continue
            left, right = rule
            if not (0 <= left < position and 0 <= right < position):
                raise SLPError(
                    f"rule {position} references undefined rule "
                    f"({left}, {right})"
                )
            nodes.append(_pair(nodes[left], nodes[right]))
        return cls(nodes[-1])

    def __reduce__(self):
        return (SLP.from_rules, (self.rules(),))


# -- builders -----------------------------------------------------------


def literal(text: str) -> SLP:
    """An SLP deriving ``text``, built as a balanced binary fold.

    Args:
        text: The string to wrap (no compression is attempted; use
            :func:`compress` for that).

    Returns:
        The SLP (``O(|text|)`` rules, ``O(log |text|)`` depth).
    """
    if not text:
        return SLP(None)
    return SLP(_fold([_terminal(char) for char in text]))


def concat(first: SLP, second: SLP) -> SLP:
    """The SLP deriving ``first.expand() + second.expand()``.

    One new pair rule (both operands' grammars are shared as-is).
    """
    if first.root is None:
        return second
    if second.root is None:
        return first
    return SLP(_pair(first.root, second.root))


def repeat(base: SLP, count: int) -> SLP:
    """The SLP deriving ``base.expand() * count`` via binary powers.

    ``O(log count)`` new rules — the constructor behind the
    "expanded length ≥100× anything the uncompressed path could hold"
    scale workloads.

    Args:
        base: The unit to repeat.
        count: The repetition count (non-negative).

    Returns:
        The repeated SLP.
    """
    if count < 0:
        raise SLPError(f"repeat count must be non-negative, got {count}")
    if count == 0 or base.root is None:
        return SLP(None)
    result: _Node | None = None
    power = base.root
    remaining = count
    while remaining:
        if remaining & 1:
            result = power if result is None else _pair(result, power)
        remaining >>= 1
        if remaining:
            power = _pair(power, power)
    return SLP(result)


def _fold(nodes: list[_Node]) -> _Node:
    """Balanced binary fold of a node sequence into one root."""
    while len(nodes) > 1:
        folded = [
            _pair(nodes[index], nodes[index + 1])
            for index in range(0, len(nodes) - 1, 2)
        ]
        if len(nodes) % 2:
            folded.append(nodes[-1])
        nodes = folded
    return nodes[0]


def compress(text: str) -> SLP:
    """Compress ``text`` into an SLP (deterministic, RePair-style).

    Repeatedly replaces the most frequent adjacent digram with a fresh
    pair rule (ties break on smallest node ids, i.e. first creation),
    then folds the residual sequence with a balanced binary fold.
    Determinism matters more than optimality here: equal strings always
    produce the *same* interned root, so structural identity of
    compressed values coincides with string equality.

    >>> compress("a" * 1024).stored_size()
    11
    >>> compress("").expand()
    ''

    Args:
        text: The string to compress.

    Returns:
        The compressed SLP; repetitive strings yield grammars
        logarithmic in the input, incompressible ones stay linear.
    """
    if not text:
        return SLP(None)
    sequence = [_terminal(char) for char in text]
    while len(sequence) > 1:
        counts: dict[tuple[int, int], int] = {}
        pairs: dict[tuple[int, int], tuple[_Node, _Node]] = {}
        # Tie-break on the digram's first expanded offset — a pure
        # function of the text, so equal strings compress identically
        # in *every* process (interned node ids are history-dependent
        # and must not influence the outcome).
        first_offset: dict[tuple[int, int], int] = {}
        offset = 0
        previous_key = None
        for left, right in zip(sequence, sequence[1:]):
            key = (left.id, right.id)
            position = offset
            offset += left.length
            # Overlapping occurrences of a square like "aaa" can only
            # be replaced once; count them once.
            if key == previous_key and left.id == right.id:
                previous_key = None
                continue
            previous_key = key
            counts[key] = counts.get(key, 0) + 1
            pairs.setdefault(key, (left, right))
            first_offset.setdefault(key, position)
        best_key = min(
            counts, key=lambda key: (-counts[key], first_offset[key])
        )
        if counts[best_key] < 2:
            return SLP(_fold(sequence))
        replacement = _pair(*pairs[best_key])
        replaced: list[_Node] = []
        position = 0
        limit = len(sequence) - 1
        while position < len(sequence):
            if (
                position < limit
                and (sequence[position].id, sequence[position + 1].id)
                == best_key
            ):
                replaced.append(replacement)
                position += 2
            else:
                replaced.append(sequence[position])
                position += 1
        sequence = replaced
    return SLP(sequence[0])


def expand(slp: SLP, max_chars: int = DEFAULT_EXPAND_LIMIT) -> str:
    """Module-level convenience for :meth:`SLP.expand`."""
    return slp.expand(max_chars)


def expanded_length(slp: SLP) -> int:
    """Module-level convenience for :meth:`SLP.expanded_length`."""
    return slp.expanded_length()


__all__ = [
    "DEFAULT_EXPAND_LIMIT",
    "SLP",
    "compress",
    "concat",
    "expand",
    "expanded_length",
    "literal",
    "repeat",
]
