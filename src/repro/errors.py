"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library is a subclass of
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AlphabetError(ReproError):
    """A string or symbol does not belong to the fixed alphabet."""


class ArityError(ReproError):
    """A relation, tuple or automaton was used with the wrong arity."""


class AssignmentError(ReproError):
    """An assignment of variables to alignment rows is invalid.

    Assignments must be injections (paper, Section 2): two distinct
    variables may never denote the same row of an alignment.
    """


class ParseError(ReproError):
    """A concrete-syntax string could not be parsed into a formula."""


class TransitionError(ReproError):
    """An FSA transition violates the endmarker legality restriction.

    The paper requires that a head reading the left endmarker never
    moves left and a head reading the right endmarker never moves right
    (Section 3).
    """


class SafetyError(ReproError):
    """A query could not be certified safe / domain independent."""


class LimitationError(ReproError):
    """The limitation analysis could not be carried out.

    Raised for formula classes where the limitation problem is
    undecidable (Theorem 5.1) and no decision procedure applies.
    """


class StorageError(ReproError):
    """A relation storage backend could not be built or used."""


class ArtifactError(StorageError):
    """An on-disk index artifact is missing, corrupt or incompatible."""


class SLPError(ReproError):
    """A straight-line program is malformed or an operation on one
    exceeded its budget (e.g. expanding past the decompression cap)."""


class EvaluationError(ReproError):
    """A query or algebra expression could not be evaluated."""


class UnboundedQueryError(EvaluationError):
    """Evaluation would require materializing an infinite relation."""


class ParallelExecutionError(EvaluationError):
    """A sharded parallel evaluation failed after exhausting retries.

    Raised by :mod:`repro.parallel` when a shard keeps failing through
    the full retry/re-split budget; the partial results of the other
    shards are discarded so a parallel answer is never silently
    incomplete.
    """


class ShardTimeoutError(ParallelExecutionError):
    """A shard exceeded its per-shard timeout on every retry."""


class WorkerCrashError(ParallelExecutionError):
    """A worker process died (rather than raised) on every retry."""


class ServiceError(ReproError):
    """Base class for query-service (daemon/client) failures.

    Every error the :mod:`repro.service` layer raises deliberately —
    protocol violations, admission rejections, expired deadlines —
    subclasses this, and the wire protocol maps each subclass to a
    stable machine-readable error code (see
    :mod:`repro.service.protocol`).
    """


class ServiceProtocolError(ServiceError):
    """A wire frame violated the newline-delimited JSON protocol.

    Covers undecodable JSON, frames that are not objects, frames over
    the size limit, and requests with missing or malformed fields.
    """


class AdmissionError(ServiceError):
    """The admission controller refused to run a request.

    Carries a machine-readable ``reason`` (``"cost-exceeded"`` or
    ``"queue-full"``) plus the offending estimate/threshold, so
    clients can decide whether to retry, narrow the query, or back
    off.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "cost-exceeded",
        est_cost: float | None = None,
        max_cost: float | None = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.est_cost = est_cost
        self.max_cost = max_cost


class DeadlineError(ServiceError):
    """A request missed its deadline (queue wait plus evaluation)."""
