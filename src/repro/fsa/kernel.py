"""Compiled k-FSA simulation kernel — Theorem 3.3 on dense integers.

The reference acceptance search (:func:`repro.fsa.simulate
.reference_accepts`) walks the configuration graph with a frozen
``Configuration`` dataclass per node and a linear scan with tuple
comparison per expansion.  That is faithful to the paper but slow: the
hot loop allocates, hashes dataclasses and re-compares symbol tuples
for every edge.  Following the compiled-dispatch approach of RE2-style
automaton engines, this module compiles an :class:`~repro.fsa.machine
.FSA` *once* into a :class:`CompiledKernel` that runs the same search
entirely on flat integers:

* **interning** — states and tape symbols are renumbered to dense
  ints at compile time;
* **dispatch table** — transitions are grouped by their full
  ``(state, head-symbols)`` key, packed into a single int
  ``p·|Γ|^k + Σ γᵢ·|Γ|^{k-1-i}`` (``Γ = Σ ∪ {⊢, ⊣}``), so finding the
  enabled transitions of a configuration is one dict lookup instead
  of a filtered scan;
* **mixed-radix packing** — a configuration ``(p, n₁ … n_k)`` on a
  concrete input tuple becomes one int ``((p·r₁ + n₁)·r₂ + n₂)…``
  with per-tape radix ``rᵢ = |wᵢ| + 2``, so the visited set is a set
  of ints and firing a transition is a single precomputed integer
  *delta* added to the packed value;
* **per-shape binding** — the deltas depend only on the input
  *lengths*, so rows of equal shape (ubiquitous in batches) share one
  bound dispatch table, cached on the kernel.

The kernel is contractually **exactly equivalent** to the reference
search: same accepted language, same :class:`~repro.errors.ArityError`
/ :class:`~repro.errors.AlphabetError` validation, for every machine
and every input tuple (``tests/fsa/test_kernel.py`` holds it to that
with a hypothesis differential).  Compiled kernels are cached on the
machine instance itself (``kernel_for``), in
:class:`~repro.engine.QueryEngine` sessions (the ``kernel`` keyed
cache) and once per shard in parallel workers.

Since kernel v2 (:mod:`repro.fsa.determinize`), this module is also
the **mode dispatcher**: :func:`kernel_for` takes a kernel mode —
:data:`KERNEL_V1` (always the worklist kernel), :data:`KERNEL_V2`
(determinized scan, or v1 fallback when the machine is out of the
Theorem 5.2 fragment), :data:`KERNEL_V3` (the grammar-compositional
kernel of :mod:`repro.slp.kernel`, which additionally accepts
SLP-compressed inputs in time proportional to the *grammar*, with the
same fragment condition and v1 fallback) or :data:`KERNEL_AUTO` (the
default: v2 when the fragment detector says yes, v1 otherwise) — and
returns whichever kernel object will answer
``accepts``/``accepts_batch`` fastest while staying exactly
equivalent to the reference search.

Tracer counters: ``kernel.compile`` (one per compilation),
``kernel.hits`` (instance-cache hits), ``kernel.fallback`` (v2-eligible
requests answered by v1 because the machine is out of fragment or over
the DFA budget), ``simulate.runs`` and
``simulate.kernel_configurations`` (configurations explored per run).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import AlphabetError, ArityError
from repro.fsa.determinize import DeterministicKernel, determinized_for
from repro.fsa.machine import FSA, register_kernel_stash
from repro.observability import current_tracer

#: Bound on cached per-input-shape dispatch bindings per kernel;
#: eviction is oldest-first, like :class:`~repro.engine.caches
#: .KeyedCache`.
MAX_BINDINGS = 64

#: Kernel mode: always the v1 worklist kernel.
KERNEL_V1 = "v1"

#: Kernel mode: the determinized v2 scan kernel, falling back to v1
#: (transparently, counter ``kernel.fallback``) out of fragment.
KERNEL_V2 = "v2"

#: Kernel mode: the grammar-compositional v3 kernel
#: (:mod:`repro.slp.kernel`) — the v2 scan table plus per-rule
#: summaries, so SLP-compressed inputs are accepted in
#: ``O(rules · states)``; plain strings scan exactly like v2.  Falls
#: back to v1 (counter ``kernel.fallback``) out of fragment.
KERNEL_V3 = "v3"

#: Kernel mode: v2 when the fragment detector allows it, else v1.
#: The default everywhere.
KERNEL_AUTO = "auto"

#: All recognized kernel modes, in precedence order.
KERNEL_MODES = (KERNEL_V1, KERNEL_V2, KERNEL_V3, KERNEL_AUTO)

#: Stash attribute for the per-instance v1 compiled kernel.
_STASH = "_kernel"
register_kernel_stash(_STASH)

#: One bound shape: ``(radii, weights, state_weight, delta_table)``.
_Binding = tuple[tuple[int, ...], tuple[int, ...], int, dict]


class CompiledKernel:
    """An :class:`~repro.fsa.machine.FSA` compiled to integer tables.

    Build one with :func:`compile_kernel` (or the caching
    :func:`kernel_for`); the instance is immutable apart from its
    per-input-shape binding cache and may be shared freely.

    >>> from repro.core.alphabet import AB, LEFT_END, RIGHT_END
    >>> from repro.fsa.machine import make_fsa
    >>> eq = make_fsa(2, AB, "s", ["f"], [
    ...     ("s", (LEFT_END, LEFT_END), "cmp", (+1, +1)),
    ...     ("cmp", ("a", "a"), "cmp", (+1, +1)),
    ...     ("cmp", ("b", "b"), "cmp", (+1, +1)),
    ...     ("cmp", (RIGHT_END, RIGHT_END), "f", (0, 0)),
    ... ])
    >>> kernel = compile_kernel(eq)
    >>> kernel.accepts(("ab", "ab")), kernel.accepts(("ab", "ba"))
    (True, False)
    """

    __slots__ = (
        "fsa",
        "arity",
        "start_id",
        "state_count",
        "_final_flags",
        "_symbol_count",
        "_sym_power",
        "_char_ids",
        "_dispatch",
        "_bindings",
    )

    def __init__(
        self,
        fsa: FSA,
        start_id: int,
        final_flags: tuple[bool, ...],
        symbol_count: int,
        char_ids: dict[str, int],
        dispatch: dict[int, tuple[tuple[int, tuple[int, ...]], ...]],
    ) -> None:
        self.fsa = fsa
        self.arity = fsa.arity
        self.start_id = start_id
        self.state_count = len(final_flags)
        self._final_flags = final_flags
        self._symbol_count = symbol_count
        self._sym_power = symbol_count**fsa.arity
        self._char_ids = char_ids
        self._dispatch = dispatch
        self._bindings: dict[tuple[int, ...], _Binding] = {}

    def __reduce__(self):
        """Pickle as the underlying machine; recompile on load.

        The integer tables are cheap to rebuild and the binding cache
        is scratch state, so a kernel crossing a process boundary
        (e.g. riding along with a shard task) travels as its machine
        and re-enters the worker's instance cache on arrival.
        """
        return (kernel_for, (self.fsa,))

    # -- input binding ---------------------------------------------------

    def _symbol_rows(
        self, inputs: Sequence[str]
    ) -> list[list[int]]:
        """Interned tape contents: ``rows[i][n]`` is tape i's symbol at n.

        Raises :class:`~repro.errors.AlphabetError` for characters
        outside Σ — this pass *is* the alphabet validation, folded
        into the interning work the search needs anyway.
        """
        char_ids = self._char_ids
        left = self._symbol_count - 2
        right = self._symbol_count - 1
        rows = []
        for content in inputs:
            try:
                row = [left]
                row.extend(char_ids[char] for char in content)
                row.append(right)
            except KeyError:
                for char in content:
                    if char not in char_ids:
                        raise AlphabetError(
                            f"character {char!r} of {content!r} is not in "
                            f"alphabet {self.fsa.alphabet}"
                        ) from None
                raise  # pragma: no cover - unreachable
            rows.append(row)
        return rows

    def _bind(self, lengths: tuple[int, ...]) -> _Binding:
        """The dispatch table bound to one input *shape* (lengths tuple).

        Radii, packing weights and per-transition packed deltas depend
        only on the component lengths, so equal-shaped rows — the
        common case inside batches — share one binding.  Bindings are
        cached on the kernel (bounded by :data:`MAX_BINDINGS`).
        """
        binding = self._bindings.get(lengths)
        if binding is not None:
            return binding
        arity = self.arity
        radii = tuple(length + 2 for length in lengths)
        weights = [1] * arity
        weight = 1
        for tape in range(arity - 1, -1, -1):
            weights[tape] = weight
            weight *= radii[tape]
        state_weight = weight
        sym_power = self._sym_power
        table: dict[int, tuple[int, ...]] = {}
        for key, entries in self._dispatch.items():
            source = key // sym_power
            table[key] = tuple(
                (target - source) * state_weight
                + sum(
                    move * weights[tape]
                    for tape, move in enumerate(moves)
                    if move
                )
                for target, moves in entries
            )
        binding = (radii, tuple(weights), state_weight, table)
        if len(self._bindings) >= MAX_BINDINGS:
            self._bindings.pop(next(iter(self._bindings)))
        self._bindings[lengths] = binding
        return binding

    # -- the search ------------------------------------------------------

    def _search(
        self,
        syms: list[list[int]],
        binding: _Binding,
        visited: set[int],
        frontier: list[int],
    ) -> bool:
        """Worklist reachability over packed configurations.

        ``visited`` and ``frontier`` are caller-owned scratch (cleared
        here) so batch entry points reuse them across rows.  Returns
        the acceptance verdict; ``len(visited)`` afterwards is the
        number of configurations explored.
        """
        radii, _, state_weight, table = binding
        final = self._final_flags
        sym_count = self._symbol_count
        sym_power = self._sym_power
        arity = self.arity
        visited.clear()
        del frontier[:]
        start = self.start_id * state_weight
        visited.add(start)
        frontier.append(start)
        pop = frontier.pop
        push = frontier.append
        seen = visited.__contains__
        add = visited.add
        lookup = table.get
        while frontier:
            packed = pop()
            remainder = packed
            key = 0
            power = 1
            for tape in range(arity - 1, -1, -1):
                remainder, position = divmod(remainder, radii[tape])
                key += syms[tape][position] * power
                power *= sym_count
            key += remainder * sym_power
            deltas = lookup(key)
            if deltas is None:
                if final[remainder]:
                    return True
                continue
            for delta in deltas:
                nxt = packed + delta
                if not seen(nxt):
                    add(nxt)
                    push(nxt)
        return False

    # -- public acceptance entry points ----------------------------------

    def accepts(self, inputs: Sequence[str]) -> bool:
        """Does the compiled machine (Theorem 3.3) accept ``inputs``?

        Exactly equivalent to the reference
        :func:`~repro.fsa.simulate.reference_accepts`, including its
        arity and alphabet validation.

        Args:
            inputs: One string per tape.

        Returns:
            The acceptance verdict.
        """
        inputs = tuple(inputs)
        if len(inputs) != self.arity:
            raise ArityError(
                f"{self.arity}-FSA fed {len(inputs)} input strings"
            )
        syms = self._symbol_rows(inputs)
        binding = self._bind(tuple(len(content) for content in inputs))
        visited: set[int] = set()
        accepted = self._search(syms, binding, visited, [])
        tracer = current_tracer()
        tracer.add("simulate.runs")
        tracer.add("simulate.kernel_configurations", len(visited))
        return accepted

    def accepts_batch(
        self, rows: Sequence[Sequence[str]]
    ) -> tuple[bool, ...]:
        """:meth:`accepts` over a batch of rows, in order.

        The batch shares the compiled dispatch, the per-shape bound
        tables *and* the visited/frontier scratch buffers across rows,
        so per-row cost is the search alone.

        Args:
            rows: The input tuples, each one string per tape.

        Returns:
            Per-row verdicts, positionally aligned with ``rows``.
        """
        arity = self.arity
        prepared = []
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise ArityError(
                    f"{arity}-FSA fed {len(row)} input strings"
                )
            prepared.append(
                (
                    self._symbol_rows(row),
                    self._bind(tuple(len(content) for content in row)),
                )
            )
        visited: set[int] = set()
        frontier: list[int] = []
        configurations = 0
        verdicts = []
        for syms, binding in prepared:
            verdicts.append(self._search(syms, binding, visited, frontier))
            configurations += len(visited)
        tracer = current_tracer()
        tracer.add("simulate.runs", len(prepared))
        tracer.add("simulate.kernel_configurations", configurations)
        return tuple(verdicts)


def compile_kernel(fsa: FSA) -> CompiledKernel:
    """Compile ``fsa`` into a :class:`CompiledKernel` (one-time cost).

    States are interned start-first then in deterministic ``repr``
    order (matching :meth:`~repro.fsa.machine.FSA.renumbered`); tape
    symbols in :meth:`~repro.core.alphabet.Alphabet.tape_symbols`
    order, endmarkers last.

    Args:
        fsa: The machine to compile.

    Returns:
        The compiled kernel.
    """
    tracer = current_tracer()
    with tracer.span(
        "compile.kernel",
        stage="compile",
        states=len(fsa.states),
        transitions=fsa.size,
    ):
        tape_syms = fsa.alphabet.tape_symbols()
        sym_ids = {symbol: index for index, symbol in enumerate(tape_syms)}
        order = [fsa.start] + sorted(
            (state for state in fsa.states if state != fsa.start), key=repr
        )
        state_ids = {state: index for index, state in enumerate(order)}
        sym_count = len(tape_syms)
        grouped: dict[int, list[tuple[int, tuple[int, ...]]]] = {}
        for transition in fsa.transitions:
            key = state_ids[transition.source]
            for symbol in transition.reads:
                key = key * sym_count + sym_ids[symbol]
            grouped.setdefault(key, []).append(
                (state_ids[transition.target], transition.moves)
            )
        dispatch = {
            key: tuple(sorted(entries)) for key, entries in grouped.items()
        }
        final_flags = tuple(state in fsa.finals for state in order)
        # Input characters may never be endmarkers, so the interning
        # map used on inputs covers Σ only.
        char_ids = {
            symbol: sym_ids[symbol] for symbol in fsa.alphabet.symbols
        }
        kernel = CompiledKernel(
            fsa,
            state_ids[fsa.start],
            final_flags,
            sym_count,
            char_ids,
            dispatch,
        )
    tracer.add("kernel.compile")
    return kernel


def kernel_for(
    fsa: FSA, mode: str = KERNEL_AUTO
) -> CompiledKernel | DeterministicKernel:
    """The acceptance kernel of ``fsa`` under ``mode``, instance-cached.

    Kernels are stashed via ``object.__setattr__`` (the same trick the
    frozen :class:`~repro.fsa.machine.FSA` uses for its adjacency
    index), so repeat lookups are one attribute read — no machine
    hashing on the hot path.  The stashes are excluded from pickling;
    a worker process compiles once per machine it receives.

    Mode dispatch: :data:`KERNEL_V1` always returns the worklist
    :class:`CompiledKernel`; :data:`KERNEL_V2` and :data:`KERNEL_AUTO`
    return the determinized
    :class:`~repro.fsa.determinize.DeterministicKernel` when the
    machine is inside the Theorem 5.2 fragment and within the DFA
    budget; :data:`KERNEL_V3` returns the grammar-compositional
    :class:`~repro.slp.kernel.SLPKernel` (sharing the same DFA table,
    plus per-rule summaries for SLP-compressed inputs) under the same
    fragment condition.  Out of fragment, every tier falls back to v1
    **transparently** — the verdicts are identical either way —
    bumping the ``kernel.fallback`` counter so the fallback is
    observable.

    Args:
        fsa: The machine whose kernel is wanted.
        mode: One of :data:`KERNEL_MODES` (default :data:`KERNEL_AUTO`).

    Returns:
        The (possibly freshly compiled) kernel for ``mode``.
    """
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}"
        )
    if mode == KERNEL_V3:
        # Imported lazily: repro.slp.kernel builds on this module's
        # sibling (determinize), so a top-level import would cycle.
        from repro.slp.kernel import slp_kernel_for

        grammar_kernel = slp_kernel_for(fsa)
        if grammar_kernel is not None:
            return grammar_kernel
        current_tracer().add("kernel.fallback")
    elif mode != KERNEL_V1:
        determinized = determinized_for(fsa)
        if determinized is not None:
            return determinized
        current_tracer().add("kernel.fallback")
    kernel = fsa.__dict__.get(_STASH)
    if kernel is not None:
        current_tracer().add("kernel.hits")
        return kernel
    kernel = compile_kernel(fsa)
    object.__setattr__(fsa, _STASH, kernel)
    return kernel


__all__ = [
    "CompiledKernel",
    "DeterministicKernel",
    "KERNEL_AUTO",
    "KERNEL_MODES",
    "KERNEL_V1",
    "KERNEL_V2",
    "KERNEL_V3",
    "compile_kernel",
    "kernel_for",
    "MAX_BINDINGS",
]
