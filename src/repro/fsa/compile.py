"""Compiling string formulae into k-FSAs (Theorem 3.1).

The construction follows the paper's proof:

* an **atomic** string formula ``[x_{i1},…,x_{ip}]_d ψ`` becomes the
  two-edge paths of Figure 4 — from the start through an intermediate
  state indexed by the expected next character combination (the device
  that enforces property 5), with the stationary-prefix paths bypassed
  as in Figure 5;
* **concatenation** merges the first machine's final state into the
  second's start state and bypasses the resulting stationary
  transitions, then deletes the merged state;
* **Kleene closure** adds a fresh final state reachable by stationary
  transitions on every character combination (the "do not enter the
  loop" case) and loops the body by merging its final into its start;
* **selection** merges start states and final states;
* finally the whole machine is prefixed with the single-transition
  guard ``((s, ⊢…⊢), (f, 0…0))`` so that computations only begin in
  initial tape configurations.

Tape ``i`` of the result corresponds to the ``i``-th variable of the
formula in ascending name order (the paper's convention ``x_i ↦ row
i``), unless an explicit variable layout is given.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core.alphabet import LEFT_END, RIGHT_END, Alphabet
from repro.core.syntax import (
    Lambda,
    SAtom,
    SConcat,
    SStar,
    StringFormula,
    SUnion,
    Transpose,
    Var,
    WTrue,
    evaluate_window,
    string_variables,
)
from repro.errors import ArityError
from repro.fsa.machine import FSA, STAY, Transition
from repro.observability import current_tracer


@dataclass(frozen=True)
class CompiledFormula:
    """A compiled string formula: the machine plus its tape layout."""

    fsa: FSA
    variables: tuple[Var, ...]

    def tape_of(self, var: Var) -> int:
        """The tape index carrying ``var``."""
        try:
            return self.variables.index(var)
        except ValueError:
            raise ArityError(f"{var!r} is not a tape of this machine") from None


class _Fragment:
    """A machine under construction: integer states, one optional final.

    Invariants maintained (properties 1-4 of Theorem 3.1): the start
    has no incoming transitions; the final — when present — is distinct
    from the start, has no outgoing transitions, and all its incoming
    transitions are stationary.
    """

    __slots__ = ("start", "final", "transitions", "_next_state")

    def __init__(self) -> None:
        self.start = 0
        self.final: int | None = None
        self.transitions: set[Transition] = set()
        self._next_state = 1

    def fresh(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def states(self) -> set[int]:
        found = {self.start}
        if self.final is not None:
            found.add(self.final)
        for transition in self.transitions:
            found.add(transition.source)
            found.add(transition.target)
        return found

    def shifted(self, offset: int) -> "_Fragment":
        out = _Fragment()
        out.start = self.start + offset
        out.final = None if self.final is None else self.final + offset
        out.transitions = {
            Transition(t.source + offset, t.reads, t.target + offset, t.moves)
            for t in self.transitions
        }
        out._next_state = self._next_state + offset
        return out

    def prune(self) -> None:
        """Drop states not on a start→final path (property 3)."""
        forward = {self.start}
        frontier = [self.start]
        adjacency: dict[int, list[Transition]] = {}
        for transition in self.transitions:
            adjacency.setdefault(transition.source, []).append(transition)
        while frontier:
            state = frontier.pop()
            for transition in adjacency.get(state, ()):
                if transition.target not in forward:
                    forward.add(transition.target)
                    frontier.append(transition.target)
        if self.final is None or self.final not in forward:
            self.final = None
            self.transitions = set()
            return
        backward = {self.final}
        entering: dict[int, list[int]] = {}
        for transition in self.transitions:
            entering.setdefault(transition.target, []).append(transition.source)
        frontier = [self.final]
        while frontier:
            state = frontier.pop()
            for source in entering.get(state, ()):
                if source in forward and source not in backward:
                    backward.add(source)
                    frontier.append(source)
        keep = backward | {self.start}
        self.transitions = {
            t
            for t in self.transitions
            if t.source in keep and t.target in keep
        }


class _Compiler:
    """Theorem 3.1 construction for a fixed variable layout."""

    def __init__(self, variables: tuple[Var, ...], alphabet: Alphabet) -> None:
        self.variables = variables
        self.alphabet = alphabet
        self.tape_symbols = alphabet.tape_symbols()

    # -- character-combination helpers -----------------------------------

    def _satisfying_combos(self, test) -> list[tuple[str, ...]]:
        """Window-satisfying combinations over ``(Σ ∪ {⊢,⊣})^k``."""
        combos = []
        for combo in product(self.tape_symbols, repeat=len(self.variables)):
            chars = {
                var: (None if sym in (LEFT_END, RIGHT_END) else sym)
                for var, sym in zip(self.variables, combo)
            }
            if evaluate_window(test, chars):
                combos.append(combo)
        return combos

    def _entry_options(
        self, transpose: Transpose, target: tuple[str, ...]
    ) -> list[tuple[tuple[str, ...], tuple[int, ...]]]:
        """All ``(a-combo, d-combo)`` pairs that can yield ``target``.

        Realizes Figure 4's side conditions: a transposed tape either
        moves (any pre-character compatible with the direction) or is
        clamped at the endmarker; every other tape stays with its
        character unchanged.
        """
        moved = set(transpose.variables)
        per_tape: list[list[tuple[str, int]]] = []
        for var, b in zip(self.variables, target):
            options: list[tuple[str, int]] = []
            if var not in moved:
                options.append((b, STAY))
            elif transpose.direction == "l":
                if b != LEFT_END:
                    options.extend(
                        (a, +1) for a in (*self.alphabet.symbols, LEFT_END)
                    )
                if b == RIGHT_END:
                    options.append((RIGHT_END, STAY))  # clamped at the right end
            else:  # right transpose
                if b != RIGHT_END:
                    options.extend(
                        (a, -1) for a in (*self.alphabet.symbols, RIGHT_END)
                    )
                if b == LEFT_END:
                    options.append((LEFT_END, STAY))  # clamped at the left end
            if not options:
                return []
            per_tape.append(options)
        results = []
        for choice in product(*per_tape):
            reads = tuple(a for a, _ in choice)
            moves = tuple(d for _, d in choice)
            results.append((reads, moves))
        return results

    # -- fragment constructors --------------------------------------------

    def atomic(self, formula: SAtom) -> _Fragment:
        frag = _Fragment()
        frag.final = frag.fresh()
        zeros = (STAY,) * len(self.variables)
        for target in self._satisfying_combos(formula.test):
            entries = self._entry_options(formula.transpose, target)
            if not entries:
                continue
            intermediate: int | None = None
            for reads, moves in entries:
                if all(m == STAY for m in moves):
                    # Figure 5: bypass the stationary two-edge path.
                    frag.transitions.add(
                        Transition(frag.start, reads, frag.final, zeros)
                    )
                else:
                    if intermediate is None:
                        intermediate = frag.fresh()
                        frag.transitions.add(
                            Transition(intermediate, target, frag.final, zeros)
                        )
                    frag.transitions.add(
                        Transition(frag.start, reads, intermediate, moves)
                    )
        frag.prune()
        return frag

    def identity(self) -> _Fragment:
        """The machine of ``λ`` / ``[]_l ⊤``: accept without moving."""
        return self.atomic(SAtom(Transpose("l", ()), WTrue()))

    def concatenate(self, first: _Fragment, second: _Fragment) -> _Fragment:
        if first.final is None or second.final is None:
            return _Fragment()  # single rejecting start state
        second = second.shifted(first._next_state)
        frag = _Fragment()
        frag.start = first.start
        frag.final = second.final
        frag._next_state = second._next_state
        entering_final = [
            t for t in first.transitions if t.target == first.final
        ]
        leaving_start = [
            t for t in second.transitions if t.source == second.start
        ]
        frag.transitions = (
            {t for t in first.transitions if t.target != first.final}
            | {t for t in second.transitions if t.source != second.start}
        )
        for t1 in entering_final:  # all stationary by property 4
            for t2 in leaving_start:
                if t2.reads == t1.reads:
                    frag.transitions.add(
                        Transition(t1.source, t1.reads, t2.target, t2.moves)
                    )
        frag.prune()
        return frag

    def star(self, body: _Fragment) -> _Fragment:
        if body.final is None:
            # L(ψ) = ∅ so L(ψ*) = {λ}: the identity machine.  (The
            # paper leaves the lone-start machine unmodified here,
            # which would lose the λ word; see DESIGN.md §5.)
            return self.identity()
        frag = _Fragment()
        frag.start = body.start
        frag._next_state = body._next_state
        frag.final = frag.fresh()
        zeros = (STAY,) * len(self.variables)
        # "Do not enter the loop at all": stationary exits on every combo.
        for combo in product(self.tape_symbols, repeat=len(self.variables)):
            frag.transitions.add(
                Transition(frag.start, combo, frag.final, zeros)
            )
        body_transitions = {
            t
            for t in body.transitions
            if not (
                t.source == body.start
                and t.target == body.final
                and t.is_stationary()
            )
        }
        entering_final = [
            t for t in body_transitions if t.target == body.final
        ]
        frag.transitions |= {
            t for t in body_transitions if t.target != body.final
        }
        leaving_start = [
            t
            for t in frag.transitions
            if t.source == frag.start
        ]
        for t1 in entering_final:  # stationary by property 4
            for t2 in leaving_start:
                if t2.reads == t1.reads:
                    frag.transitions.add(
                        Transition(t1.source, t1.reads, t2.target, t2.moves)
                    )
        frag.prune()
        return frag

    def union(self, first: _Fragment, second: _Fragment) -> _Fragment:
        second = second.shifted(first._next_state)
        frag = _Fragment()
        frag.start = first.start
        frag._next_state = second._next_state

        def renamed(transition: Transition) -> Transition:
            source = transition.source
            target = transition.target
            if source == second.start:
                source = frag.start
            if target == second.start:
                target = frag.start
            return Transition(source, transition.reads, target, transition.moves)

        transitions = set(first.transitions)
        transitions |= {renamed(t) for t in second.transitions}
        if first.final is not None and second.final is not None:
            merged_final = first.final
            transitions = {
                Transition(
                    t.source,
                    t.reads,
                    merged_final if t.target == second.final else t.target,
                    t.moves,
                )
                for t in transitions
            }
            frag.final = merged_final
        else:
            frag.final = (
                first.final if first.final is not None else second.final
            )
        frag.transitions = transitions
        frag.prune()
        return frag

    def build(self, formula: StringFormula) -> _Fragment:
        if isinstance(formula, SAtom):
            return self.atomic(formula)
        if isinstance(formula, Lambda):
            return self.identity()
        if isinstance(formula, SConcat):
            frag = self.build(formula.parts[0])
            for part in formula.parts[1:]:
                frag = self.concatenate(frag, self.build(part))
            return frag
        if isinstance(formula, SUnion):
            frag = self.build(formula.parts[0])
            for part in formula.parts[1:]:
                frag = self.union(frag, self.build(part))
            return frag
        if isinstance(formula, SStar):
            return self.star(self.build(formula.inner))
        raise TypeError(f"not a string formula: {formula!r}")

    def initial_guard(self) -> _Fragment:
        """The prefix machine testing all heads on ``⊢``."""
        frag = _Fragment()
        frag.final = frag.fresh()
        k = len(self.variables)
        frag.transitions.add(
            Transition(
                frag.start, (LEFT_END,) * k, frag.final, (STAY,) * k
            )
        )
        return frag


_CACHE: dict[tuple, CompiledFormula] = {}


def resolve_layout(
    formula: StringFormula, variables: tuple[Var, ...] | None
) -> tuple[Var, ...]:
    """Canonicalize and validate a tape layout for ``formula``.

    ``None`` resolves to the formula's variables in ascending name
    order (the paper's convention).  An explicit layout must cover the
    formula's variables without repetition; it may list extras.  Cache
    layers key compiled machines on the resolved layout so that the
    implicit and the equivalent explicit spelling share one entry.
    """
    if variables is None:
        return tuple(sorted(string_variables(formula)))
    missing = string_variables(formula) - set(variables)
    if missing:
        raise ArityError(
            f"layout {variables!r} misses formula variables {sorted(missing)}"
        )
    if len(set(variables)) != len(variables):
        raise ArityError(f"layout {variables!r} repeats a variable")
    return tuple(variables)


def build_string_formula(
    formula: StringFormula,
    alphabet: Alphabet,
    variables: tuple[Var, ...],
) -> CompiledFormula:
    """Run the Theorem 3.1 construction, uncached.

    ``variables`` must already be a resolved layout (see
    :func:`resolve_layout`).  :func:`compile_string_formula` wraps this
    with the module-level memo; :class:`repro.engine.QueryEngine`
    sessions call it directly so their instrumented caches own the
    artifact.  When a tracer is active
    (:func:`repro.observability.current_tracer`) the construction is
    recorded as a ``compile``-stage span plus ``compile.*`` counters.
    """
    tracer = current_tracer()
    with tracer.span("compile.build", stage="compile", tapes=len(variables)):
        compiler = _Compiler(variables, alphabet)
        frag = compiler.concatenate(
            compiler.initial_guard(), compiler.build(formula)
        )
        states = frozenset(frag.states())
        finals = frozenset({frag.final} if frag.final is not None else ())
        fsa = FSA(
            len(variables),
            states,
            frag.start,
            finals,
            frozenset(frag.transitions),
            alphabet,
        )
    tracer.add("compile.machines_built")
    tracer.add("compile.states_built", len(states))
    tracer.add("compile.transitions_built", len(frag.transitions))
    return CompiledFormula(fsa, variables)


def compile_string_formula(
    formula: StringFormula,
    alphabet: Alphabet,
    variables: tuple[Var, ...] | None = None,
) -> CompiledFormula:
    """Theorem 3.1: an FSA ``A_φ`` with ``L(A_φ) = ⟦φ⟧``.

    ``variables`` fixes the tape layout; it defaults to the formula's
    variables in ascending name order and may list extra variables
    (their tapes are then unconstrained only insofar as the formula
    ignores them — they still must be *strings*, so pair such layouts
    with ``Σ*`` columns as Theorem 4.2 does).

    Results are memoized process-wide; engine sessions maintain their
    own instrumented caches via :func:`build_string_formula` instead.
    """
    variables = resolve_layout(formula, variables)
    key = (formula, alphabet, variables)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    result = build_string_formula(formula, alphabet, variables)
    _CACHE[key] = result
    return result
