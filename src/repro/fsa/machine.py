"""Multitape two-way finite state acceptors (k-FSAs).

A k-FSA (paper, Section 3) is a nondeterministic k-tape two-way finite
automaton with endmarkers: a system ``(Q, s, F, T)`` whose transitions
read one symbol per tape (from ``Σ ∪ {⊢, ⊣}``) and move each head by
``-1``, ``0`` or ``+1``, never off the endmarked tape area.  These
devices are the computational counterpart of string formulae
(Theorems 3.1 and 3.2) and the selection operators of alignment
algebra (Section 4).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from repro.core.alphabet import LEFT_END, RIGHT_END, Alphabet
from repro.errors import ArityError, TransitionError

#: States may be any hashable value; the compiler uses ints, the
#: Section 6 constructions use descriptive tuples/strings.
State = Hashable

#: Head movements.
LEFT_MOVE, STAY, RIGHT_MOVE = -1, 0, +1
_MOVES = (LEFT_MOVE, STAY, RIGHT_MOVE)

#: Per-instance stash attributes the kernel layers cache on machines
#: (compiled kernels, determinization verdicts, fragment labels).
#: Everything registered here is dropped from pickles by
#: :meth:`FSA.__getstate__` — each kernel tier registers its own slot
#: at import time, so adding a tier can never silently leak compiled
#: tables into worker payloads.
_KERNEL_STASHES: list[str] = []


def register_kernel_stash(name: str) -> None:
    """Register a per-instance stash attribute for pickle exclusion.

    Called once at import time by each module that caches derived
    state on :class:`FSA` instances via ``object.__setattr__``
    (:mod:`repro.fsa.kernel`, :mod:`repro.fsa.determinize`,
    :mod:`repro.slp.kernel`).

    Args:
        name: The attribute name the caller stashes under.
    """
    if name not in _KERNEL_STASHES:
        _KERNEL_STASHES.append(name)


@dataclass(frozen=True)
class Transition:
    """One transition ``((p, c₁…c_k), (q, d₁…d_k))``.

    ``reads[i]`` is the symbol expected under head ``i`` and
    ``moves[i]`` the displacement applied to it.  The endmarker
    restriction of the paper — heads never leave the marked area — is
    enforced at construction time.
    """

    source: State
    reads: tuple[str, ...]
    target: State
    moves: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.reads) != len(self.moves):
            raise TransitionError(
                f"reads/moves arity mismatch: {self.reads!r} vs {self.moves!r}"
            )
        for symbol, move in zip(self.reads, self.moves):
            if move not in _MOVES:
                raise TransitionError(f"illegal move {move!r}")
            if symbol == LEFT_END and move == LEFT_MOVE:
                raise TransitionError("cannot move left from the left endmarker")
            if symbol == RIGHT_END and move == RIGHT_MOVE:
                raise TransitionError("cannot move right from the right endmarker")

    @property
    def arity(self) -> int:
        return len(self.reads)

    def is_stationary(self) -> bool:
        """True iff no head moves (the FSA analogue of an ε-transition)."""
        return all(move == STAY for move in self.moves)

    def __str__(self) -> str:
        label = " ".join(
            f"{symbol}{move:+d}" if move else f"{symbol} 0"
            for symbol, move in zip(self.reads, self.moves)
        )
        return f"{self.source} --[{label}]--> {self.target}"


@dataclass(frozen=True)
class FSA:
    """An immutable k-tape two-way finite state acceptor.

    ``size`` follows the paper's definition of ``|A|`` as the number of
    transitions.  The adjacency index ``outgoing`` is computed once and
    cached on the instance (it does not participate in equality).
    """

    arity: int
    states: frozenset[State]
    start: State
    finals: frozenset[State]
    transitions: frozenset[Transition]
    alphabet: Alphabet
    _outgoing: dict = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ArityError("FSA arity must be non-negative")
        if self.start not in self.states:
            raise TransitionError("start state missing from state set")
        if not self.finals <= self.states:
            raise TransitionError("final states missing from state set")
        valid_symbols = set(self.alphabet.tape_symbols())
        index: dict[State, list[Transition]] = {state: [] for state in self.states}
        for transition in self.transitions:
            if transition.arity != self.arity:
                raise ArityError(
                    f"transition arity {transition.arity} != FSA arity {self.arity}"
                )
            if (
                transition.source not in self.states
                or transition.target not in self.states
            ):
                raise TransitionError(
                    f"transition uses unknown state: {transition}"
                )
            for symbol in transition.reads:
                if symbol not in valid_symbols:
                    raise TransitionError(
                        f"transition reads {symbol!r} outside Σ ∪ endmarkers"
                    )
            index[transition.source].append(transition)
        object.__setattr__(self, "_outgoing", index)

    def __getstate__(self) -> dict:
        """Pickle the fields and adjacency index, not the kernel stashes.

        Every kernel tier caches derived state on the instance via
        ``object.__setattr__`` — the v1 compiled kernel, the v2
        determinization verdict, the v3 grammar kernel, the fragment
        label — and registers its stash attribute in
        :data:`_KERNEL_STASHES` (:func:`register_kernel_stash`).
        Workers rebuild everything locally (one compile per machine
        per process), so shipping the stashes would only inflate shard
        payloads.
        """
        state = self.__dict__.copy()
        for name in _KERNEL_STASHES:
            state.pop(name, None)
        return state

    # -- observation ----------------------------------------------------

    @property
    def size(self) -> int:
        """``|A|``: the number of transitions (paper, Section 3)."""
        return len(self.transitions)

    def outgoing(self, state: State) -> tuple[Transition, ...]:
        """Transitions leaving ``state``."""
        return tuple(self._outgoing.get(state, ()))

    def incoming(self, state: State) -> tuple[Transition, ...]:
        """Transitions entering ``state`` (computed on demand)."""
        return tuple(t for t in self.transitions if t.target == state)

    def bidirectional_tapes(self) -> frozenset[int]:
        """Tapes moved left by some transition (paper, Section 3).

        Mirrors the *bidirectional variable* notion for string
        formulae: bidirectional tapes can be scanned back and forth.
        """
        found = set()
        for transition in self.transitions:
            for tape, move in enumerate(transition.moves):
                if move == LEFT_MOVE:
                    found.add(tape)
        return frozenset(found)

    def unidirectional_tapes(self) -> frozenset[int]:
        """Tapes never moved left."""
        return frozenset(range(self.arity)) - self.bidirectional_tapes()

    def is_unidirectional(self) -> bool:
        return not self.bidirectional_tapes()

    def reading_tapes(self, transition: Transition) -> frozenset[int]:
        """Tapes advanced (moved right) by ``transition``."""
        return frozenset(
            tape for tape, move in enumerate(transition.moves) if move == RIGHT_MOVE
        )

    # -- transformation -------------------------------------------------

    def pruned(self) -> "FSA":
        """Remove states unreachable from the start or not reaching a final.

        Keeps the start state even if no final is reachable, matching
        the paper's "single non-final start state" degenerate machines.
        """
        forward = {self.start}
        frontier = [self.start]
        while frontier:
            state = frontier.pop()
            for transition in self.outgoing(state):
                if transition.target not in forward:
                    forward.add(transition.target)
                    frontier.append(transition.target)
        backward = set(self.finals & forward)
        enter: dict[State, set[State]] = {}
        for transition in self.transitions:
            enter.setdefault(transition.target, set()).add(transition.source)
        frontier = list(backward)
        while frontier:
            state = frontier.pop()
            for source in enter.get(state, ()):
                if source in forward and source not in backward:
                    backward.add(source)
                    frontier.append(source)
        keep = backward | {self.start}
        transitions = frozenset(
            t
            for t in self.transitions
            if t.source in keep and t.target in keep
        )
        return FSA(
            self.arity,
            frozenset(keep),
            self.start,
            frozenset(self.finals & keep),
            transitions,
            self.alphabet,
        )

    def renumbered(self) -> "FSA":
        """Replace states by consecutive integers (start first).

        Deterministic given a deterministic state ordering; used to
        canonicalize machines after structural surgery.
        """
        order = [self.start] + sorted(
            (s for s in self.states if s != self.start), key=repr
        )
        names = {state: index for index, state in enumerate(order)}
        return self.map_states(names.__getitem__)

    def map_states(self, rename) -> "FSA":
        """Apply a state-renaming function (must be injective)."""
        states = frozenset(rename(s) for s in self.states)
        if len(states) != len(self.states):
            raise TransitionError("state renaming is not injective")
        return FSA(
            self.arity,
            states,
            rename(self.start),
            frozenset(rename(s) for s in self.finals),
            frozenset(
                Transition(rename(t.source), t.reads, rename(t.target), t.moves)
                for t in self.transitions
            ),
            self.alphabet,
        )

    def __str__(self) -> str:
        return (
            f"{self.arity}-FSA({len(self.states)} states, "
            f"{self.size} transitions, {len(self.finals)} final)"
        )


def make_fsa(
    arity: int,
    alphabet: Alphabet,
    start: State,
    finals: Iterable[State],
    transitions: Iterable[
        Transition | tuple[State, Iterable[str], State, Iterable[int]]
    ],
    extra_states: Iterable[State] = (),
) -> FSA:
    """Convenience constructor inferring the state set.

    Transitions may be given as :class:`Transition` objects or as
    ``(source, reads, target, moves)`` tuples.
    """
    built: list[Transition] = []
    for item in transitions:
        if isinstance(item, Transition):
            built.append(item)
        else:
            source, reads, target, moves = item
            built.append(
                Transition(source, tuple(reads), target, tuple(moves))
            )
    states = {start, *finals, *extra_states}
    for transition in built:
        states.add(transition.source)
        states.add(transition.target)
    return FSA(
        arity,
        frozenset(states),
        start,
        frozenset(finals),
        frozenset(built),
        alphabet,
    )


def tape_symbol(content: str, position: int) -> str:
    """The paper's ``w[j]``: character ``j`` of the endmarked tape.

    Position 0 is ``⊢``, positions ``1 … |w|`` the characters of ``w``
    and position ``|w| + 1`` is ``⊣``.
    """
    if position == 0:
        return LEFT_END
    if position == len(content) + 1:
        return RIGHT_END
    if 1 <= position <= len(content):
        return content[position - 1]
    raise IndexError(f"position {position} outside tape of {content!r}")
