"""Multitape two-way finite automata — the paper's Section 3 substrate."""

from repro.fsa.compile import CompiledFormula, compile_string_formula
from repro.fsa.decompile import decompile, normalize_for_decompile
from repro.fsa.determinize import (
    DeterministicKernel,
    classify_fragment,
    determinize,
    determinized_for,
    dfa_to_fsa,
    lockstep_intersection,
)
from repro.fsa.generate import accepted_tuples
from repro.fsa.kernel import (
    KERNEL_AUTO,
    KERNEL_MODES,
    KERNEL_V1,
    KERNEL_V2,
    CompiledKernel,
    compile_kernel,
    kernel_for,
)
from repro.fsa.machine import FSA, State, Transition, make_fsa, tape_symbol
from repro.fsa.ops import disregard_tape, drop_tape, permute_tapes, widen
from repro.fsa.simulate import (
    Configuration,
    accepting_run,
    accepts,
    accepts_batch,
    language,
    reachable_configurations,
    reference_accepts,
)
from repro.fsa.specialize import specialize

__all__ = [
    "CompiledFormula",
    "compile_string_formula",
    "decompile",
    "normalize_for_decompile",
    "accepted_tuples",
    "CompiledKernel",
    "DeterministicKernel",
    "KERNEL_AUTO",
    "KERNEL_MODES",
    "KERNEL_V1",
    "KERNEL_V2",
    "classify_fragment",
    "compile_kernel",
    "determinize",
    "determinized_for",
    "dfa_to_fsa",
    "kernel_for",
    "lockstep_intersection",
    "FSA",
    "State",
    "Transition",
    "make_fsa",
    "tape_symbol",
    "disregard_tape",
    "drop_tape",
    "permute_tapes",
    "widen",
    "Configuration",
    "accepting_run",
    "accepts",
    "accepts_batch",
    "language",
    "reachable_configurations",
    "reference_accepts",
    "specialize",
]
