"""Multitape two-way finite automata — the paper's Section 3 substrate."""

from repro.fsa.compile import CompiledFormula, compile_string_formula
from repro.fsa.decompile import decompile, normalize_for_decompile
from repro.fsa.generate import accepted_tuples
from repro.fsa.kernel import CompiledKernel, compile_kernel, kernel_for
from repro.fsa.machine import FSA, State, Transition, make_fsa, tape_symbol
from repro.fsa.ops import disregard_tape, drop_tape, permute_tapes, widen
from repro.fsa.simulate import (
    Configuration,
    accepting_run,
    accepts,
    accepts_batch,
    language,
    reachable_configurations,
    reference_accepts,
)
from repro.fsa.specialize import specialize

__all__ = [
    "CompiledFormula",
    "compile_string_formula",
    "decompile",
    "normalize_for_decompile",
    "accepted_tuples",
    "CompiledKernel",
    "compile_kernel",
    "kernel_for",
    "FSA",
    "State",
    "Transition",
    "make_fsa",
    "tape_symbol",
    "disregard_tape",
    "drop_tape",
    "permute_tapes",
    "widen",
    "Configuration",
    "accepting_run",
    "accepts",
    "accepts_batch",
    "language",
    "reachable_configurations",
    "reference_accepts",
    "specialize",
]
