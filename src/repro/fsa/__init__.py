"""Multitape two-way finite automata — the paper's Section 3 substrate."""

from repro.fsa.compile import CompiledFormula, compile_string_formula
from repro.fsa.decompile import decompile, normalize_for_decompile
from repro.fsa.generate import accepted_tuples
from repro.fsa.machine import FSA, State, Transition, make_fsa, tape_symbol
from repro.fsa.ops import disregard_tape, drop_tape, permute_tapes, widen
from repro.fsa.simulate import (
    Configuration,
    accepting_run,
    accepts,
    language,
    reachable_configurations,
)
from repro.fsa.specialize import specialize

__all__ = [
    "CompiledFormula",
    "compile_string_formula",
    "decompile",
    "normalize_for_decompile",
    "accepted_tuples",
    "FSA",
    "State",
    "Transition",
    "make_fsa",
    "tape_symbol",
    "disregard_tape",
    "drop_tape",
    "permute_tapes",
    "widen",
    "Configuration",
    "accepting_run",
    "accepts",
    "language",
    "reachable_configurations",
    "specialize",
]
