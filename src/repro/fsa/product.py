"""Sequencing products of k-FSAs — conjunction as one machine.

The optimizer's selection-fusion rule rewrites stacked selections
``σ_A(σ_B(E))`` into a single selection by one machine accepting
``L(A) ∩ L(B)``.  For *two-way* multitape machines the classical
synchronous product does not apply (the two head vectors move
independently), so the intersection machine is built as a *sequencing
product*: run ``A`` to acceptance, rewind every head to ``⊢``, then
run ``B`` on the same tapes.

The paper's acceptance condition (Theorem 3.3) is *halting* in a final
state — a final configuration with enabled transitions does not
accept.  The construction is exact about this: the hand-off from ``A``
to the rewind gadget fires only on read combinations that no outgoing
transition of the final state matches, i.e. exactly when ``A`` would
have halted there.  Hence ``seq(A, B)`` accepts a tuple iff both ``A``
and ``B`` accept it, for arbitrary two-way machines.

The hand-off and rewind transitions enumerate ``(|Σ|+2)^k`` read
combinations, so fusion is gated by :func:`fusion_supported` on a
combination budget; callers fall back to stacked selections when the
budget is exceeded.
"""

from __future__ import annotations

from itertools import product as iproduct

from repro.core.alphabet import LEFT_END
from repro.errors import ArityError
from repro.fsa.machine import FSA, STAY, Transition

#: Budget on ``(|Σ|+2)^arity`` read combinations enumerated by the
#: rewind gadget; above it :func:`fusion_supported` says no.
FUSION_COMBO_LIMIT = 4096

_REWIND = ("rw",)


def _combo_count(fsa: FSA) -> int:
    return (len(fsa.alphabet.symbols) + 2) ** fsa.arity


def fusion_supported(first: FSA, second: FSA) -> bool:
    """Whether :func:`sequence_machines` may fuse this pair.

    Requires matching alphabets and a positive, shared arity, and the
    rewind gadget's read-combination count within
    :data:`FUSION_COMBO_LIMIT`.

    Args:
        first: The machine that would run first.
        second: The machine that would run second.

    Returns:
        True iff the pair is fusable within budget.
    """
    return (
        first.alphabet == second.alphabet
        and first.arity == second.arity
        and first.arity > 0
        and _combo_count(first) <= FUSION_COMBO_LIMIT
    )


def sequence_machines(first: FSA, second: FSA) -> FSA:
    """A machine accepting ``L(first) ∩ L(second)``.

    Runs ``first`` to a halting accepting configuration, rewinds every
    head to ``⊢``, then runs ``second``; the result's finals are
    ``second``'s, so overall acceptance is the conjunction of both
    machines' (halting) acceptance.

    Args:
        first: The machine run first (put the most selective one here —
            generation explores its language before filtering by the
            second).
        second: The machine run second.

    Returns:
        The sequencing product, pruned and deterministically
        renumbered.

    Raises:
        ArityError: If the pair is not fusable (see
            :func:`fusion_supported`).
    """
    if not fusion_supported(first, second):
        raise ArityError(
            "machines are not fusable: alphabets/arities must match and "
            f"(|Σ|+2)^arity must stay within {FUSION_COMBO_LIMIT}"
        )
    arity = first.arity
    alphabet = first.alphabet
    combos = list(iproduct(alphabet.tape_symbols(), repeat=arity))
    transitions: list[Transition] = []
    for transition in first.transitions:
        transitions.append(
            Transition(
                ("a", transition.source),
                transition.reads,
                ("a", transition.target),
                transition.moves,
            )
        )
    for transition in second.transitions:
        transitions.append(
            Transition(
                ("b", transition.source),
                transition.reads,
                ("b", transition.target),
                transition.moves,
            )
        )
    stay = (STAY,) * arity
    for final in first.finals:
        matched = {t.reads for t in first.outgoing(final)}
        for combo in combos:
            if combo not in matched:
                # ``first`` halts here on this read combination — hand
                # off to the rewind gadget without moving any head.
                transitions.append(
                    Transition(("a", final), combo, _REWIND, stay)
                )
    for combo in combos:
        if all(symbol == LEFT_END for symbol in combo):
            transitions.append(
                Transition(_REWIND, combo, ("b", second.start), stay)
            )
        else:
            moves = tuple(
                STAY if symbol == LEFT_END else -1 for symbol in combo
            )
            transitions.append(Transition(_REWIND, combo, _REWIND, moves))
    states = (
        {("a", state) for state in first.states}
        | {("b", state) for state in second.states}
        | {_REWIND}
    )
    fused = FSA(
        arity,
        frozenset(states),
        ("a", first.start),
        frozenset(("b", state) for state in second.finals),
        frozenset(transitions),
        alphabet,
    )
    return fused.pruned().renumbered()
