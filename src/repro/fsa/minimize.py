"""Bisimulation-based state reduction for k-FSAs.

Merging forward-bisimilar states preserves the accepted language of a
nondeterministic machine (it is a quotient of the transition graph
that neither adds nor removes labelled paths or finality).  It is not
full NFA minimization — that is PSPACE-hard — but it collapses the
bulk of the redundancy the Theorem 3.1 compiler introduces (parallel
intermediate states expecting different characters but behaving
identically afterwards), which matters most as a preprocessing step
for the exponential crossing-sequence construction of Theorem 5.2.
"""

from __future__ import annotations

from repro.fsa.machine import FSA, Transition


def bisimulation_quotient(fsa: FSA) -> FSA:
    """Quotient the machine by its coarsest forward bisimulation.

    Two states are merged when they are both-or-neither final and have
    the same set of ``(reads, moves, target-block)`` signatures, computed
    to a fixed point by partition refinement.
    """
    block: dict = {
        state: (state in fsa.finals) for state in fsa.states
    }
    while True:
        signatures: dict = {}
        for state in fsa.states:
            signature = frozenset(
                (t.reads, t.moves, block[t.target]) for t in fsa.outgoing(state)
            )
            signatures[state] = (block[state], signature)
        renumber: dict = {}
        for state in sorted(fsa.states, key=repr):
            renumber.setdefault(signatures[state], len(renumber))
        new_block = {
            state: renumber[signatures[state]] for state in fsa.states
        }
        if len(set(new_block.values())) == len(set(block.values())):
            block = new_block
            break
        block = new_block
    representative: dict = {}
    for state in sorted(fsa.states, key=repr):
        representative.setdefault(block[state], state)
    mapping = {state: representative[block[state]] for state in fsa.states}
    transitions = frozenset(
        Transition(mapping[t.source], t.reads, mapping[t.target], t.moves)
        for t in fsa.transitions
    )
    return FSA(
        fsa.arity,
        frozenset(mapping.values()),
        mapping[fsa.start],
        frozenset(mapping[s] for s in fsa.finals),
        transitions,
        fsa.alphabet,
    )
