"""Specializing an FSA on constant inputs (Lemma 3.1).

Given a ``(k+l)``-FSA and constant strings for some of its tapes, build
the ``l``-FSA that remembers the fixed heads' positions in its finite
control.  The construction runs in time polynomial in
``|A| · Π(|uᵢ| + 2)``, which is what makes the acceptance problem
polynomial for a fixed machine (Theorem 3.3) and drives selection in
alignment algebra.
"""

from __future__ import annotations

from collections.abc import Mapping
from itertools import product

from repro.errors import ArityError
from repro.fsa.machine import FSA, Transition, tape_symbol
from repro.observability import current_tracer


def specialize(
    fsa: FSA, fixed: Mapping[int, str], prune: bool = True
) -> FSA:
    """Fix the ``fixed`` tapes of ``fsa`` to constant strings.

    ``fixed`` maps tape indices (0-based) to their contents.  The
    result is an FSA over the remaining tapes, in their original
    relative order, whose states are pairs
    ``(p, (n_i)_{i ∈ fixed})`` — the paper's ``p_(n₁,…,n_k)``.

    With ``prune=True`` (default) states unreachable from the start are
    dropped; pass ``prune=False`` to obtain the paper's full product
    for size measurements.

    The construction is recorded on the ambient tracer as a
    ``specialize``-stage span plus ``specialize.*`` counters.
    """
    tracer = current_tracer()
    with tracer.span(
        "specialize.machine", stage="specialize", fixed=len(fixed)
    ):
        machine = _specialize(fsa, fixed, prune)
    tracer.add("specialize.machines_built")
    tracer.add("specialize.states_built", len(machine.states))
    return machine


def _specialize(fsa: FSA, fixed: Mapping[int, str], prune: bool) -> FSA:
    """The uninstrumented Lemma 3.1 product construction."""
    for tape, content in fixed.items():
        if not 0 <= tape < fsa.arity:
            raise ArityError(f"tape {tape} outside 0..{fsa.arity - 1}")
        fsa.alphabet.validate_string(content)
    fixed_tapes = tuple(sorted(fixed))
    free_tapes = tuple(i for i in range(fsa.arity) if i not in fixed)

    def project(values: tuple, tapes: tuple[int, ...]) -> tuple:
        return tuple(values[i] for i in tapes)

    position_ranges = [
        range(len(fixed[tape]) + 2) for tape in fixed_tapes
    ]
    start = (fsa.start, (0,) * len(fixed_tapes))

    def transitions_from(state) -> list[tuple[Transition, tuple]]:
        p, positions = state
        heads = {
            tape: tape_symbol(fixed[tape], position)
            for tape, position in zip(fixed_tapes, positions)
        }
        out = []
        for transition in fsa.outgoing(p):
            if any(
                transition.reads[tape] != symbol
                for tape, symbol in heads.items()
            ):
                continue
            moved = tuple(
                position + transition.moves[tape]
                for tape, position in zip(fixed_tapes, positions)
            )
            out.append((transition, (transition.target, moved)))
        return out

    if prune:
        states = {start}
        frontier = [start]
        new_transitions: list[Transition] = []
        while frontier:
            state = frontier.pop()
            for transition, target in transitions_from(state):
                new_transitions.append(
                    Transition(
                        state,
                        project(transition.reads, free_tapes),
                        target,
                        project(transition.moves, free_tapes),
                    )
                )
                if target not in states:
                    states.add(target)
                    frontier.append(target)
    else:
        states = {
            (p, positions)
            for p in fsa.states
            for positions in product(*position_ranges)
        }
        new_transitions = []
        for state in states:
            for transition, target in transitions_from(state):
                new_transitions.append(
                    Transition(
                        state,
                        project(transition.reads, free_tapes),
                        target,
                        project(transition.moves, free_tapes),
                    )
                )

    finals = frozenset(
        state for state in states if state[0] in fsa.finals
    )
    return FSA(
        len(free_tapes),
        frozenset(states),
        start,
        finals,
        frozenset(new_transitions),
        fsa.alphabet,
    )
