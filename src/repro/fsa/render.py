"""Rendering FSAs as text and Graphviz DOT (Figure 6 reproduction)."""

from __future__ import annotations

from repro.fsa.machine import FSA


def transition_label(reads, moves) -> str:
    """The paper's edge label style ``c₁d₁ … c_kd_k``."""
    return " ".join(
        f"{symbol}{move:+d}" if move else f"{symbol}·"
        for symbol, move in zip(reads, moves)
    )


def to_text(fsa: FSA) -> str:
    """A deterministic, human-readable machine listing."""
    lines = [str(fsa), f"start: {fsa.start}", f"finals: {sorted(map(repr, fsa.finals))}"]
    for transition in sorted(fsa.transitions, key=repr):
        lines.append(
            f"  {transition.source!r} --[{transition_label(transition.reads, transition.moves)}]--> "
            f"{transition.target!r}"
        )
    return "\n".join(lines)


def to_dot(fsa: FSA, name: str = "fsa") -> str:
    """Graphviz DOT source for the machine's transition graph."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in sorted(fsa.states, key=repr):
        shape = "doublecircle" if state in fsa.finals else "circle"
        lines.append(f'  "{state!r}" [shape={shape}];')
    lines.append(f'  "__start" [shape=point];')
    lines.append(f'  "__start" -> "{fsa.start!r}";')
    for transition in sorted(fsa.transitions, key=repr):
        label = transition_label(transition.reads, transition.moves)
        lines.append(
            f'  "{transition.source!r}" -> "{transition.target!r}" [label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)
