"""Enumerating the tuples accepted by an FSA — Definition 3.1 in action.

The limitation problem asks when an acceptor can safely be used as a
*string production device*: fix some tapes as inputs and enumerate the
output tapes.  This module implements that production:

* fixed tapes are folded into the finite control by Lemma 3.1
  (:mod:`repro.fsa.specialize`);
* output tapes are generated **on the fly** — a head stepping onto an
  undetermined square chooses its character, and the chosen prefix is
  remembered so that re-reads (bidirectional sweeps included) must
  stay consistent.  The search therefore explores only prefixes the
  machine actually touches, instead of enumerating ``Σ^{<=L}``.

Everything is bounded by an explicit ``max_length``; safe queries
obtain that bound from the limitation analysis of
:mod:`repro.safety.limitation`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from itertools import product

from repro.core.alphabet import LEFT_END, RIGHT_END
from repro.fsa.machine import FSA
from repro.fsa.specialize import specialize
from repro.observability import current_tracer


@dataclass(frozen=True)
class _Tape:
    """A partially determined output tape.

    ``prefix`` holds the characters fixed so far (squares ``1 …
    len(prefix)``), ``head`` the current position, and ``ended``
    whether the square after the prefix has been fixed to ``⊣``.
    """

    prefix: str
    head: int
    ended: bool

    def read_options(self, wanted: str, limit: int) -> "_Tape | None":
        """Can this tape show ``wanted`` under its head?

        Returns the (possibly further determined) tape, or ``None``
        when impossible within the length ``limit``.
        """
        if self.head == 0:
            return self if wanted == LEFT_END else None
        if self.head <= len(self.prefix):
            return self if wanted == self.prefix[self.head - 1] else None
        # Head is one past the prefix: the square is ⊣ if ended,
        # otherwise undetermined and ours to choose.
        if self.ended:
            return self if wanted == RIGHT_END else None
        if wanted == RIGHT_END:
            return _Tape(self.prefix, self.head, True)
        if wanted == LEFT_END:
            return None
        if len(self.prefix) >= limit:
            return None
        return _Tape(self.prefix + wanted, self.head, False)

    def moved(self, delta: int) -> "_Tape":
        return _Tape(self.prefix, self.head + delta, self.ended)


def _ensure_sink_finals(fsa: FSA) -> FSA:
    """Guarantee final states have no outgoing transitions.

    Generation declares success as soon as a final state is reached;
    that matches the paper's halting acceptance only when finals cannot
    continue.  Machines from the Theorem 3.1 compiler already comply;
    arbitrary machines are rewritten with the halting-normalization of
    :mod:`repro.fsa.decompile`.
    """
    if all(not fsa.outgoing(state) for state in fsa.finals):
        return fsa
    from repro.fsa.decompile import normalize_for_decompile

    return normalize_for_decompile(fsa)


def _generate_free(
    fsa: FSA, max_length: int
) -> frozenset[tuple[str, ...]]:
    """All accepted tuples of a machine whose tapes are all generated.

    Works for bidirectional tapes as well: the determined prefix is
    part of the search state, so leftward re-reads are checked against
    the characters chosen earlier.
    """
    fsa = _ensure_sink_finals(fsa)
    start = (fsa.start, tuple(_Tape("", 0, False) for _ in range(fsa.arity)))
    visited = {start}
    frontier = [start]
    accepted_states: set[tuple] = set()
    while frontier:
        state, tapes = frontier.pop()
        if state in fsa.finals:
            accepted_states.add((state, tapes))
            continue
        for transition in fsa.outgoing(state):
            new_tapes = []
            for tape, wanted, move in zip(
                tapes, transition.reads, transition.moves
            ):
                determined = tape.read_options(wanted, max_length)
                if determined is None:
                    break
                new_tapes.append(determined.moved(move))
            else:
                nxt = (transition.target, tuple(new_tapes))
                if nxt not in visited:
                    visited.add(nxt)
                    frontier.append(nxt)
    tracer = current_tracer()
    tracer.add("generate.machine_runs")
    tracer.add("generate.search_states", len(visited))
    results: set[tuple[str, ...]] = set()
    pool_cache: dict[int, list[str]] = {}
    for _, tapes in accepted_states:
        per_tape: list[list[str]] = []
        for tape in tapes:
            if tape.ended:
                per_tape.append([tape.prefix])
            else:
                # The machine halted without pinning the tape's end:
                # every extension within the bound is accepted.
                budget = max_length - len(tape.prefix)
                if fsa.alphabet.count_strings(budget) > 2_000_000:
                    from repro.errors import UnboundedQueryError

                    raise UnboundedQueryError(
                        "an accepted tape is unconstrained beyond "
                        f"{tape.prefix!r}; materializing Σ^<={budget} "
                        "extensions is infeasible — the query does not "
                        "limit this output"
                    )
                extensions = pool_cache.get(budget)
                if extensions is None:
                    extensions = list(fsa.alphabet.strings(budget))
                    pool_cache[budget] = extensions
                per_tape.append([tape.prefix + ext for ext in extensions])
        results.update(product(*per_tape))
    return frozenset(results)


def accepted_tuples(
    fsa: FSA,
    max_length: int,
    fixed: Mapping[int, str] | None = None,
) -> frozenset[tuple[str, ...]]:
    """Tuples of ``L(A)`` with the ``fixed`` tapes held constant.

    Returns tuples over the *free* tapes (in their original order),
    every component of length at most ``max_length``.  This is the
    workhorse behind alignment algebra's ``σ_A(F × (Σ*)^n)`` pattern:
    ``F``'s tuple supplies ``fixed`` and the ``Σ*`` columns are
    generated.
    """
    machine = specialize(fsa, dict(fixed)) if fixed else fsa
    return _generate_free(machine, max_length)


def accepted_tuples_batch(
    fsa: FSA,
    max_length: int,
    fixed_batch: "tuple[tuple[tuple[int, str], ...], ...]",
) -> tuple[frozenset[tuple[str, ...]], ...]:
    """One :func:`accepted_tuples` run per ``fixed`` binding.

    The shard entry point of :mod:`repro.parallel`: a worker receives
    one machine and a batch of canonicalized ``fixed`` bindings
    (sorted ``(tape, value)`` pairs) and answers them in order, so the
    per-call pickling cost of the machine is amortized over the whole
    batch.
    """
    return tuple(
        accepted_tuples(fsa, max_length, dict(fixed) if fixed else None)
        for fixed in fixed_batch
    )
