"""Structural operations on k-FSAs.

The tape surgery used throughout the paper: disregarding a tape
(Section 3's modification that parks a head on ``⊢`` forever),
permuting tapes, and widening a machine with ignored tapes (needed by
the algebra translation, where machines built for different variable
sets must agree on a common tape layout).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.alphabet import LEFT_END
from repro.errors import ArityError
from repro.fsa.machine import FSA, STAY, Transition


def disregard_tape(fsa: FSA, tape: int) -> FSA:
    """The paper's tape-disregarding modification.

    Every transition's entry for ``tape`` is replaced by reading ``⊢``
    and staying put: the tape is retained but never moved off its left
    endmarker, so the resulting machine ignores that tape's content.
    Together with property 5 of Theorem 3.1 this implements
    unidirectional quantifier elimination (Theorem 6.6's opening
    remark).
    """
    if not 0 <= tape < fsa.arity:
        raise ArityError(f"tape {tape} outside 0..{fsa.arity - 1}")

    def rewrite(transition: Transition) -> Transition:
        reads = list(transition.reads)
        moves = list(transition.moves)
        reads[tape] = LEFT_END
        moves[tape] = STAY
        return Transition(
            transition.source, tuple(reads), transition.target, tuple(moves)
        )

    return FSA(
        fsa.arity,
        fsa.states,
        fsa.start,
        fsa.finals,
        frozenset(rewrite(t) for t in fsa.transitions),
        fsa.alphabet,
    )


def drop_tape(fsa: FSA, tape: int) -> FSA:
    """Disregard ``tape`` and then remove it from the layout entirely.

    The result is a ``(k-1)``-FSA accepting exactly the projections of
    ``L(fsa)`` when ``tape`` was already disregarded, or — by property
    5 for unidirectional tapes — the projection of the language.
    """
    ignored = disregard_tape(fsa, tape)

    def strip(values: tuple) -> tuple:
        return values[:tape] + values[tape + 1 :]

    return FSA(
        fsa.arity - 1,
        ignored.states,
        ignored.start,
        ignored.finals,
        frozenset(
            Transition(t.source, strip(t.reads), t.target, strip(t.moves))
            for t in ignored.transitions
        ),
        fsa.alphabet,
    )


def permute_tapes(fsa: FSA, order: Sequence[int]) -> FSA:
    """Reorder tapes: new tape ``i`` is old tape ``order[i]``."""
    if sorted(order) != list(range(fsa.arity)):
        raise ArityError(
            f"{order!r} is not a permutation of 0..{fsa.arity - 1}"
        )

    def rearrange(values: tuple) -> tuple:
        return tuple(values[i] for i in order)

    return FSA(
        fsa.arity,
        fsa.states,
        fsa.start,
        fsa.finals,
        frozenset(
            Transition(t.source, rearrange(t.reads), t.target, rearrange(t.moves))
            for t in fsa.transitions
        ),
        fsa.alphabet,
    )


def widen(fsa: FSA, arity: int, placement: Sequence[int]) -> FSA:
    """Embed a k-FSA into an ``arity``-tape layout.

    ``placement[i]`` gives the new index of old tape ``i``; the
    remaining new tapes are ignored (their heads sit on ``⊢``
    forever), so the widened machine accepts any content there —
    matching how Theorem 4.2 pairs machines with ``Σ*`` columns.
    """
    if len(placement) != fsa.arity:
        raise ArityError("placement must list every existing tape")
    if len(set(placement)) != len(placement) or any(
        not 0 <= p < arity for p in placement
    ):
        raise ArityError(f"invalid placement {placement!r} into arity {arity}")

    def spread(values: tuple, fill) -> tuple:
        out = [fill] * arity
        for old, new in enumerate(placement):
            out[new] = values[old]
        return tuple(out)

    return FSA(
        arity,
        fsa.states,
        fsa.start,
        fsa.finals,
        frozenset(
            Transition(
                t.source,
                spread(t.reads, LEFT_END),
                t.target,
                spread(t.moves, STAY),
            )
            for t in fsa.transitions
        ),
        fsa.alphabet,
    )
