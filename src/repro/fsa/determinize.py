"""Crossing-sequence determinization — Theorem 5.2 as a dense DFA scan.

The compiled kernel (:mod:`repro.fsa.kernel`, "v1") still explores the
configuration graph with a worklist, one packed integer at a time.
For the paper's Theorem 5.2 fragment that search is overkill: when no
head ever moves *left*, the crossing sequences of a computation
degenerate to single states, so the classical subset construction
applies and acceptance collapses into **one linear scan** over the
endmarked input — no worklist, no visited set, no per-configuration
dispatch.

Two fragment shapes are recognized by :func:`classify_fragment`:

* ``"unidirectional"`` — single-tape machines whose only moves are
  *stay* and *right* (the paper's unidirectional variables);
* ``"right-restricted"`` — multitape machines whose transitions move
  **all** heads right together or keep **all** heads still.  The
  lockstep restriction keeps every reachable configuration's heads at
  one shared position, so the tuple of symbols under the heads is a
  single *column* of the endmarked input tuple and the machine reads
  its input column-by-column like a one-tape device.

Everything else — any left move, or multitape machines whose heads
desynchronize — is out of fragment and stays on the v1 worklist
kernel; :func:`repro.fsa.kernel.kernel_for` falls back transparently
(counter ``kernel.fallback``).

:func:`determinize` runs an on-the-fly subset construction over the
*reachable* subsets only (never the ``2^Q`` powerset), with the
paper's halting acceptance folded in: a subset/column entry whose
stay-closure contains a final state with **no** enabled transition
jumps to a sticky ``ACCEPT`` state, and an empty successor subset is
the sticky ``DEAD`` state.  The result is a
:class:`DeterministicKernel`: one flat ``array('l')`` transition table
(premultiplied targets, so a scan step is one add and one index) whose
batch entry point runs whole candidate batches column-wise.

:func:`lockstep_intersection` multiplies two determinized tables into
one machine accepting ``L(A) ∩ L(B)`` — the in-fragment replacement
for the two-way sequencing product of :mod:`repro.fsa.product`, so
optimized plans whose fused selections stay inside the fragment
compile to one machine and one pass.

Tracer counters: ``kernel.determinize`` (one per subset construction),
``kernel.dfa_states`` (DFA states built), ``kernel.v2_hits``
(instance-cache hits), ``kernel.classify.hits`` (memoized fragment
verdicts served), ``simulate.runs`` and ``simulate.scan_symbols``
(columns consumed by v2 scans).
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence

from repro.core.alphabet import LEFT_END, RIGHT_END
from repro.errors import AlphabetError, ArityError
from repro.fsa.machine import (
    FSA,
    LEFT_MOVE,
    RIGHT_MOVE,
    STAY,
    Transition,
    make_fsa,
    register_kernel_stash,
)
from repro.observability import current_tracer

#: Fragment label for single-tape stay/right machines.
UNIDIRECTIONAL = "unidirectional"

#: Fragment label for multitape lockstep (all-stay / all-right) machines.
RIGHT_RESTRICTED = "right-restricted"

#: Cap on transition-table cells (DFA states × columns) built by the
#: subset construction; beyond it :func:`determinize` declines and the
#: machine stays on the v1 kernel.
MAX_DFA_CELLS = 1 << 20

#: Fixed DFA state ids: the sticky reject sink, the sticky accept
#: sink, and the start subset ``{s}``.
DEAD, ACCEPT, START = 0, 1, 2

#: Stash attribute for the per-instance determinization verdict.
_STASH = "_kernel_v2"
register_kernel_stash(_STASH)

#: Stash attribute for the per-instance fragment label (memoizing
#: :func:`classify_fragment`, which every kernel dispatch consults).
_FRAGMENT_STASH = "_fragment"
register_kernel_stash(_FRAGMENT_STASH)

#: Distinguishes "not classified yet" from the valid ``None`` verdict.
_UNCLASSIFIED = object()

#: Stash marker for "determinization declined" (out of fragment or
#: over the cell budget), so the verdict is computed once per machine.
_UNSUPPORTED = "unsupported"


def classify_fragment(fsa: FSA) -> str | None:
    """The Theorem 5.2 fragment label of ``fsa``, or ``None``.

    The verdict is *sound*: a non-``None`` label guarantees
    :func:`determinize`'s scan semantics are exact for the machine
    (every reachable configuration keeps all heads at one shared,
    never-decreasing position).  It is memoized on the instance —
    every kernel dispatch (:func:`repro.fsa.kernel.kernel_for`, the
    session kernel cache) consults it, and out-of-fragment machines
    would otherwise rescan their transition set on every lookup.
    Repeat lookups bump the ``kernel.classify.hits`` counter.

    Args:
        fsa: The machine to classify.

    Returns:
        :data:`UNIDIRECTIONAL` for one-tape stay/right machines,
        :data:`RIGHT_RESTRICTED` for multitape lockstep machines,
        ``None`` for everything else (including arity-0 machines,
        whose acceptance has no scan to speak of).
    """
    cached = fsa.__dict__.get(_FRAGMENT_STASH, _UNCLASSIFIED)
    if cached is not _UNCLASSIFIED:
        current_tracer().add("kernel.classify.hits")
        return cached
    verdict = _classify(fsa)
    object.__setattr__(fsa, _FRAGMENT_STASH, verdict)
    return verdict


def _classify(fsa: FSA) -> str | None:
    """The uncached fragment analysis behind :func:`classify_fragment`."""
    if fsa.arity == 0:
        return None
    lockstep = True
    for transition in fsa.transitions:
        moves = set(transition.moves)
        if LEFT_MOVE in moves:
            return None
        if len(moves) > 1:
            lockstep = False
    if fsa.arity == 1:
        return UNIDIRECTIONAL
    return RIGHT_RESTRICTED if lockstep else None


class DeterministicKernel:
    """An in-fragment :class:`~repro.fsa.machine.FSA` as a dense DFA.

    Built by :func:`determinize` (or the caching
    :func:`determinized_for`).  The whole machine is one flat
    ``array('l')`` of premultiplied targets: entry
    ``table[state·ncols + column]`` is ``next_state·ncols``, so a scan
    step is a single add and index.  State :data:`DEAD` (``0``) is the
    sticky reject sink, :data:`ACCEPT` (``1``) the sticky accept sink
    — a row's verdict is simply whether its scan ends in ``ACCEPT``.

    >>> from repro.core.alphabet import AB, LEFT_END, RIGHT_END
    >>> from repro.fsa.machine import make_fsa
    >>> contains_ab = make_fsa(1, AB, "s", ["f"], [
    ...     ("s", (LEFT_END,), "scan", (+1,)),
    ...     ("scan", ("a",), "scan", (+1,)),
    ...     ("scan", ("b",), "scan", (+1,)),
    ...     ("scan", ("a",), "saw_a", (+1,)),
    ...     ("saw_a", ("b",), "win", (+1,)),
    ...     ("win", (RIGHT_END,), "f", (0,)),
    ...     ("win", ("a",), "win", (+1,)),
    ...     ("win", ("b",), "win", (+1,)),
    ... ])
    >>> kernel = determinize(contains_ab)
    >>> kernel.fragment
    'unidirectional'
    >>> kernel.accepts_batch([("ab",), ("ba",), ("aab",), ("",)])
    (True, False, True, False)
    """

    __slots__ = (
        "fsa",
        "fragment",
        "arity",
        "dfa_states",
        "_ncols",
        "_symbol_count",
        "_char_ids",
        "_table",
    )

    def __init__(
        self,
        fsa: FSA,
        fragment: str,
        table: array,
        ncols: int,
        symbol_count: int,
        char_ids: dict[str, int],
        dfa_states: int,
    ) -> None:
        self.fsa = fsa
        self.fragment = fragment
        self.arity = fsa.arity
        self.dfa_states = dfa_states
        self._ncols = ncols
        self._symbol_count = symbol_count
        self._char_ids = char_ids
        self._table = table

    def __reduce__(self):
        """Pickle as the underlying machine; re-determinize on load.

        Mirrors :meth:`~repro.fsa.kernel.CompiledKernel.__reduce__`:
        the dense table is cheap to rebuild, so a kernel crossing a
        process boundary travels as its machine and re-enters the
        worker's instance stash on arrival.
        """
        return (_rebuild, (self.fsa,))

    # -- input interning -------------------------------------------------

    def _columns(self, inputs: Sequence[str]) -> list[int]:
        """The packed column word of an endmarked input tuple.

        Column ``n`` packs the symbols under the (synchronized) heads
        at position ``n``; the scan length is ``min |wᵢ| + 2`` — the
        lockstep heads can never pass the shortest tape's ``⊣``.
        Raises :class:`~repro.errors.AlphabetError` for characters
        outside Σ, exactly like the v1 interning pass.
        """
        char_ids = self._char_ids
        symbol_count = self._symbol_count
        left = symbol_count - 2
        right = symbol_count - 1
        rows = []
        for content in inputs:
            try:
                row = [left]
                row.extend(char_ids[char] for char in content)
                row.append(right)
            except KeyError:
                for char in content:
                    if char not in char_ids:
                        raise AlphabetError(
                            f"character {char!r} of {content!r} is not in "
                            f"alphabet {self.fsa.alphabet}"
                        ) from None
                raise  # pragma: no cover - unreachable
            rows.append(row)
        if self.arity == 1:
            return rows[0]
        length = min(len(row) for row in rows)
        columns = []
        for position in range(length):
            packed = 0
            for row in rows:
                packed = packed * symbol_count + row[position]
            columns.append(packed)
        return columns

    # -- acceptance entry points -----------------------------------------

    def accepts(self, inputs: Sequence[str]) -> bool:
        """One linear scan: does the machine accept ``inputs``?

        Exactly equivalent to
        :func:`~repro.fsa.simulate.reference_accepts` (and hence to
        the v1 kernel), including arity and alphabet validation.  The
        scan exits early once it hits a sticky sink.

        Args:
            inputs: One string per tape.

        Returns:
            The acceptance verdict.
        """
        inputs = tuple(inputs)
        if len(inputs) != self.arity:
            raise ArityError(
                f"{self.arity}-FSA fed {len(inputs)} input strings"
            )
        columns = self._columns(inputs)
        table = self._table
        ncols = self._ncols
        settled = 2 * ncols
        state = START * ncols
        scanned = 0
        for column in columns:
            state = table[state + column]
            scanned += 1
            if state < settled:
                break
        tracer = current_tracer()
        tracer.add("simulate.runs")
        tracer.add("simulate.scan_symbols", scanned)
        return state == ncols

    def accepts_batch(
        self, rows: Sequence[Sequence[str]]
    ) -> tuple[bool, ...]:
        """:meth:`accepts` over a batch of rows, column-wise.

        Rows are validated and interned in one pass, grouped by scan
        length, and each group is driven through the transition table
        **column by column**: one list pass per input position updates
        every row's DFA state with a single add-and-index into the
        flat ``array('l')`` table.  Rows that hit a sticky sink simply
        spin there for the remaining columns (one table read each), so
        the sweep needs no per-row control flow.

        Args:
            rows: The input tuples, each one string per tape.

        Returns:
            Per-row verdicts, positionally aligned with ``rows``.
        """
        arity = self.arity
        prepared = []
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise ArityError(
                    f"{arity}-FSA fed {len(row)} input strings"
                )
            prepared.append(self._columns(row))
        groups: dict[int, list[int]] = {}
        for index, columns in enumerate(prepared):
            groups.setdefault(len(columns), []).append(index)
        table = self._table
        ncols = self._ncols
        accept_code = ACCEPT * ncols
        start_code = START * ncols
        verdicts = [False] * len(prepared)
        scanned = 0
        for length, members in groups.items():
            states = [start_code] * len(members)
            for column in zip(*(prepared[index] for index in members)):
                states = [
                    table[state + symbol]
                    for state, symbol in zip(states, column)
                ]
            scanned += length * len(members)
            for index, state in zip(members, states):
                verdicts[index] = state == accept_code
        tracer = current_tracer()
        tracer.add("simulate.runs", len(prepared))
        tracer.add("simulate.scan_symbols", scanned)
        return tuple(verdicts)


def _rebuild(fsa: FSA) -> DeterministicKernel:
    """Unpickle hook: re-enter the worker's instance stash.

    The pickled kernel existed, so the machine is in fragment and
    within budget; the fresh process just pays one determinization.
    """
    kernel = determinized_for(fsa)
    if kernel is None:  # pragma: no cover - the machine was determinizable
        raise ArityError(
            f"machine {fsa} no longer determinizes after unpickling"
        )
    return kernel


def determinize(
    fsa: FSA, *, max_cells: int = MAX_DFA_CELLS
) -> DeterministicKernel | None:
    """Subset-construct the dense DFA of an in-fragment machine.

    On-the-fly construction: only subsets *reachable* from ``{start}``
    are built (never the ``2^Q`` powerset), and the table grows one
    row at a time until the frontier is exhausted or ``max_cells`` is
    hit.  Acceptance semantics are the paper's halting acceptance: the
    entry for (subset, column) is the sticky :data:`ACCEPT` state iff
    the stay-closure of the subset under that column contains a final
    state with no enabled transition.

    Args:
        fsa: The machine to determinize.
        max_cells: Budget on table cells (states × columns).

    Returns:
        The compiled :class:`DeterministicKernel`, or ``None`` when
        the machine is out of fragment or the construction would
        exceed ``max_cells`` — callers then fall back to the v1
        worklist kernel.
    """
    fragment = classify_fragment(fsa)
    if fragment is None:
        return None
    tape_syms = fsa.alphabet.tape_symbols()
    symbol_count = len(tape_syms)
    ncols = symbol_count**fsa.arity
    if 3 * ncols > max_cells:
        return None
    tracer = current_tracer()
    with tracer.span(
        "compile.determinize",
        stage="compile",
        states=len(fsa.states),
        transitions=fsa.size,
        fragment=fragment,
    ):
        sym_ids = {symbol: index for index, symbol in enumerate(tape_syms)}
        order = [fsa.start] + sorted(
            (state for state in fsa.states if state != fsa.start), key=repr
        )
        state_ids = {state: index for index, state in enumerate(order)}
        final = [state in fsa.finals for state in order]
        stay: dict[tuple[int, int], list[int]] = {}
        advance: dict[tuple[int, int], list[int]] = {}
        enabled: set[tuple[int, int]] = set()
        for transition in fsa.transitions:
            column = 0
            for symbol in transition.reads:
                column = column * symbol_count + sym_ids[symbol]
            key = (state_ids[transition.source], column)
            enabled.add(key)
            target = state_ids[transition.target]
            if transition.moves[0] == STAY:
                stay.setdefault(key, []).append(target)
            else:
                advance.setdefault(key, []).append(target)
        # Rows DEAD and ACCEPT are the sticky sinks; START is {start}.
        table = array("l", [DEAD * ncols] * ncols)
        table.extend([ACCEPT * ncols] * ncols)
        start_subset = frozenset([state_ids[fsa.start]])
        subset_ids: dict[frozenset[int], int] = {
            frozenset(): DEAD,
            start_subset: START,
        }
        table.extend([-1] * ncols)
        frontier = [start_subset]
        while frontier:
            subset = frontier.pop()
            base = subset_ids[subset] * ncols
            for column in range(ncols):
                closure = set(subset)
                stack = list(subset)
                while stack:
                    state = stack.pop()
                    for target in stay.get((state, column), ()):
                        if target not in closure:
                            closure.add(target)
                            stack.append(target)
                if any(
                    final[state] and (state, column) not in enabled
                    for state in closure
                ):
                    # A reachable halting-final configuration: the
                    # input is accepted no matter what follows.
                    table[base + column] = ACCEPT * ncols
                    continue
                successors: set[int] = set()
                for state in closure:
                    successors.update(advance.get((state, column), ()))
                successor = frozenset(successors)
                target_id = subset_ids.get(successor)
                if target_id is None:
                    target_id = len(subset_ids) + 1  # ACCEPT has no subset
                    if (target_id + 1) * ncols > max_cells:
                        return None
                    subset_ids[successor] = target_id
                    table.extend([-1] * ncols)
                    frontier.append(successor)
                table[base + column] = target_id * ncols
        char_ids = {
            symbol: sym_ids[symbol] for symbol in fsa.alphabet.symbols
        }
        dfa_states = len(subset_ids) + 1
    tracer.add("kernel.determinize")
    tracer.add("kernel.dfa_states", dfa_states)
    return DeterministicKernel(
        fsa, fragment, table, ncols, symbol_count, char_ids, dfa_states
    )


def determinized_for(fsa: FSA) -> DeterministicKernel | None:
    """The determinized kernel of ``fsa``, cached on the instance.

    Like :func:`~repro.fsa.kernel.kernel_for`, the kernel is stashed
    via ``object.__setattr__`` so repeat lookups are one attribute
    read; a "declined" verdict is stashed too, so out-of-fragment
    machines pay the fragment check once.  The stash is excluded from
    pickling (:meth:`~repro.fsa.machine.FSA.__getstate__`).

    Args:
        fsa: The machine whose determinized kernel is wanted.

    Returns:
        The cached (or freshly built) kernel, or ``None`` when the
        machine is out of fragment / over budget.
    """
    cached = fsa.__dict__.get(_STASH)
    if cached is not None:
        if cached == _UNSUPPORTED:
            return None
        current_tracer().add("kernel.v2_hits")
        return cached
    kernel = determinize(fsa)
    object.__setattr__(
        fsa, _STASH, kernel if kernel is not None else _UNSUPPORTED
    )
    return kernel


# -- decompiling tables back into machines ------------------------------


def _decode_column(
    column: int, arity: int, tape_syms: tuple[str, ...]
) -> tuple[str, ...]:
    """The read tuple a packed column id stands for."""
    symbol_count = len(tape_syms)
    reads = []
    for _ in range(arity):
        column, symbol = divmod(column, symbol_count)
        reads.append(tape_syms[symbol])
    reads.reverse()
    return tuple(reads)


def _table_to_fsa(
    table: array, ncols: int, arity: int, alphabet, explored: int
) -> FSA:
    """An :class:`~repro.fsa.machine.FSA` equivalent to a scan table.

    The encoding is exact under halting acceptance: advancing entries
    become all-right transitions, ``ACCEPT`` entries become all-stay
    transitions into a single final sink with no outgoing transitions
    (which therefore halts and accepts), and ``DEAD`` entries are
    simply omitted (the run halts in a non-final state).  Columns
    mixing ``⊢`` with other symbols are skipped — lockstep heads see
    ``⊢`` only at position 0, on every tape at once.
    """
    tape_syms = alphabet.tape_symbols()
    all_stay = (STAY,) * arity
    all_right = (RIGHT_MOVE,) * arity
    transitions: list[Transition] = []
    for state in range(START, explored):
        base = state * ncols
        for column in range(ncols):
            reads = _decode_column(column, arity, tape_syms)
            if LEFT_END in reads and any(
                symbol != LEFT_END for symbol in reads
            ):
                continue
            target = table[base + column] // ncols
            if target == DEAD:
                continue
            if target == ACCEPT:
                transitions.append(
                    Transition(state, reads, "accept", all_stay)
                )
            else:
                transitions.append(
                    Transition(state, reads, target, all_right)
                )
    return make_fsa(
        arity,
        alphabet,
        START,
        ["accept"],
        transitions,
        extra_states=range(START, explored),
    )


def dfa_to_fsa(kernel: DeterministicKernel) -> FSA:
    """Decompile a determinized kernel back into a one-way machine.

    The result accepts exactly the kernel's language under the paper's
    halting acceptance, is itself in fragment (all transitions are
    all-stay or all-right), and re-determinizes into singleton subsets
    — it is the DFA in machine clothing.  Used to materialize fused
    machines for the optimizer (:func:`lockstep_intersection`).

    Args:
        kernel: The determinized kernel to decompile.

    Returns:
        The equivalent machine, pruned and renumbered.
    """
    machine = _table_to_fsa(
        kernel._table,
        kernel._ncols,
        kernel.arity,
        kernel.fsa.alphabet,
        kernel.dfa_states,
    )
    return machine.pruned().renumbered()


def lockstep_intersection(
    first: FSA, second: FSA, *, max_cells: int = MAX_DFA_CELLS
) -> FSA | None:
    """One in-fragment machine accepting ``L(first) ∩ L(second)``.

    The fragment replacement for the two-way sequencing product
    (:func:`repro.fsa.product.sequence_machines`): both machines are
    determinized and their scan tables multiplied — pair state
    ``(a, b)`` steps both tables at once, dies when either side dies,
    and accepts when both sides have reached their sticky accept.
    Because each side's accept is sticky, the pair accepting state is
    reached exactly when both machines accept the input, even if they
    accept at different scan positions.  The product is decompiled
    back into a (one-way, lockstep) machine, so optimized plans fuse
    to **one machine, one pass** instead of a run–rewind–run chain.

    Args:
        first: One conjunct machine.
        second: The other conjunct machine.
        max_cells: Budget on product-table cells.

    Returns:
        The intersection machine, or ``None`` when the pair is not
        fusable this way (mismatched alphabets/arities, either machine
        out of fragment, or over budget) — callers then fall back to
        the sequencing product.
    """
    if (
        first.alphabet != second.alphabet
        or first.arity != second.arity
        or first.arity == 0
    ):
        return None
    left = determinized_for(first)
    right = determinized_for(second)
    if left is None or right is None:
        return None
    ncols = left._ncols
    table_a, table_b = left._table, right._table
    accept_a = ACCEPT * ncols
    accept_b = ACCEPT * ncols
    start = (START * ncols, START * ncols)
    pair_ids: dict[tuple[int, int], int] = {start: START}
    table = array("l", [DEAD * ncols] * ncols)
    table.extend([ACCEPT * ncols] * ncols)
    table.extend([-1] * ncols)
    frontier = [start]
    while frontier:
        pair = frontier.pop()
        state_a, state_b = pair
        base = pair_ids[pair] * ncols
        for column in range(ncols):
            next_a = table_a[state_a + column]
            next_b = table_b[state_b + column]
            if next_a == DEAD or next_b == DEAD:
                table[base + column] = DEAD * ncols
                continue
            if next_a == accept_a and next_b == accept_b:
                table[base + column] = ACCEPT * ncols
                continue
            successor = (next_a, next_b)
            target_id = pair_ids.get(successor)
            if target_id is None:
                target_id = len(pair_ids) + 2  # DEAD/ACCEPT have no pair
                if (target_id + 1) * ncols > max_cells:
                    return None
                pair_ids[successor] = target_id
                table.extend([-1] * ncols)
                frontier.append(successor)
            table[base + column] = target_id * ncols
    current_tracer().add("kernel.lockstep_fusions")
    machine = _table_to_fsa(
        table, ncols, first.arity, first.alphabet, len(pair_ids) + 2
    )
    return machine.pruned().renumbered()


__all__ = [
    "ACCEPT",
    "DEAD",
    "DeterministicKernel",
    "MAX_DFA_CELLS",
    "RIGHT_RESTRICTED",
    "START",
    "UNIDIRECTIONAL",
    "classify_fragment",
    "determinize",
    "determinized_for",
    "dfa_to_fsa",
    "lockstep_intersection",
]
