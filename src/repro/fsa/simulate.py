"""Simulation of k-FSAs — Theorem 3.3 made executable.

Acceptance follows the paper's definition exactly: a computation
accepts the input tuple ``W`` iff it starts in the initial
configuration ``(s, 0, …, 0)``, is finite, ends in a configuration
whose state is final *and which has no next configuration on W*.

The acceptance check builds the configuration graph (the 0-FSA of
Lemma 3.1 with ``l = 0``) and searches it — polynomial in
``Π(|uᵢ| + 2)`` for a fixed machine, which is the content of
Theorem 3.3.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass
from itertools import product

from repro.errors import ArityError
from repro.fsa.kernel import KERNEL_AUTO, kernel_for
from repro.fsa.machine import FSA, Transition, tape_symbol
from repro.observability import current_tracer


@dataclass(frozen=True)
class Configuration:
    """A configuration ``(p, n₁, …, n_k)`` of an FSA on an input tuple."""

    state: object
    positions: tuple[int, ...]


def initial_configuration(fsa: FSA) -> Configuration:
    """The initial configuration ``(s, 0, …, 0)``."""
    return Configuration(fsa.start, (0,) * fsa.arity)


def read_symbols(
    inputs: Sequence[str], positions: Sequence[int]
) -> tuple[str, ...]:
    """Symbols under the heads: ``(w₁[n₁], …, w_k[n_k])``."""
    return tuple(
        tape_symbol(content, position)
        for content, position in zip(inputs, positions)
    )


def enabled_transitions(
    fsa: FSA, configuration: Configuration, inputs: Sequence[str]
) -> list[Transition]:
    """Transitions applicable in ``configuration`` on ``inputs``."""
    heads = read_symbols(inputs, configuration.positions)
    return [
        transition
        for transition in fsa.outgoing(configuration.state)
        if transition.reads == heads
    ]


def step(configuration: Configuration, transition: Transition) -> Configuration:
    """The next configuration reached by firing ``transition``."""
    positions = tuple(
        position + move
        for position, move in zip(configuration.positions, transition.moves)
    )
    return Configuration(transition.target, positions)


def _check_arity(fsa: FSA, inputs: Sequence[str]) -> None:
    if len(inputs) != fsa.arity:
        raise ArityError(
            f"{fsa.arity}-FSA fed {len(inputs)} input strings"
        )
    for content in inputs:
        fsa.alphabet.validate_string(content)


def accepts(
    fsa: FSA, inputs: Sequence[str], *, kernel: str = KERNEL_AUTO
) -> bool:
    """Does ``fsa`` accept the input tuple?  (Theorem 3.3 algorithm.)

    Delegates to the machine's acceptance kernel
    (:mod:`repro.fsa.kernel`): either the compiled configuration-graph
    search (v1) or — for machines in the Theorem 5.2 fragment — the
    determinized linear scan (v2), selected by ``kernel``.  Exactly
    equivalent to :func:`reference_accepts` in every mode.
    """
    return kernel_for(fsa, kernel).accepts(inputs)


def reference_accepts(fsa: FSA, inputs: Sequence[str]) -> bool:
    """The uncompiled reference acceptance search (Theorem 3.3 verbatim).

    Worklist search of the configuration graph from the initial
    configuration, looking for a reachable *halting* configuration in
    a final state, one :class:`Configuration` dataclass per node.
    Kept as the executable specification the compiled kernel is
    differentially tested (and benchmarked) against.
    """
    _check_arity(fsa, inputs)
    start = initial_configuration(fsa)
    visited = {start}
    frontier = [start]
    accepted = False
    while frontier:
        configuration = frontier.pop()
        enabled = enabled_transitions(fsa, configuration, inputs)
        if not enabled and configuration.state in fsa.finals:
            accepted = True
            break
        for transition in enabled:
            nxt = step(configuration, transition)
            if nxt not in visited:
                visited.add(nxt)
                frontier.append(nxt)
    tracer = current_tracer()
    tracer.add("simulate.runs")
    tracer.add("simulate.configurations", len(visited))
    return accepted


def accepts_batch(
    fsa: FSA, rows: Sequence[Sequence[str]], *, kernel: str = KERNEL_AUTO
) -> tuple[bool, ...]:
    """:func:`accepts` over a batch of input tuples, in order.

    The shard entry point of :mod:`repro.parallel` for selection
    filtering: one pickled machine answers a whole slice of rows in
    the worker.  The kernel for ``kernel`` mode is compiled (or
    fetched) once for the whole batch and rows are validated in one
    pass; the v2 scan kernel additionally sweeps the batch
    column-wise through its dense transition table.
    """
    return kernel_for(fsa, kernel).accepts_batch(rows)


def accepting_run(
    fsa: FSA, inputs: Sequence[str]
) -> list[Configuration] | None:
    """A witness computation ``C₁ C₂ … C_m`` accepting ``inputs``.

    Returns ``None`` when the input is rejected.  Used by tests and by
    the examples to display accepting computations.
    """
    _check_arity(fsa, inputs)
    start = initial_configuration(fsa)
    parents: dict[Configuration, Configuration | None] = {start: None}
    frontier = deque([start])
    goal: Configuration | None = None
    while frontier:
        configuration = frontier.popleft()
        enabled = enabled_transitions(fsa, configuration, inputs)
        if not enabled and configuration.state in fsa.finals:
            goal = configuration
            break
        for transition in enabled:
            nxt = step(configuration, transition)
            if nxt not in parents:
                parents[nxt] = configuration
                frontier.append(nxt)
    if goal is None:
        return None
    path = [goal]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def reachable_configurations(
    fsa: FSA, inputs: Sequence[str]
) -> frozenset[Configuration]:
    """All configurations reachable from the initial one on ``inputs``.

    The node set of Lemma 3.1's 0-FSA; exposed for the Theorem 3.3
    benchmark, which measures how this set grows with input length.
    """
    _check_arity(fsa, inputs)
    start = initial_configuration(fsa)
    visited = {start}
    frontier = [start]
    while frontier:
        configuration = frontier.pop()
        for transition in enabled_transitions(fsa, configuration, inputs):
            nxt = step(configuration, transition)
            if nxt not in visited:
                visited.add(nxt)
                frontier.append(nxt)
    return frozenset(visited)


def language(
    fsa: FSA, max_length: int
) -> frozenset[tuple[str, ...]]:
    """``L(A)`` restricted to tuples of strings of length ≤ ``max_length``.

    Brute-force enumeration used as an oracle in tests; the smarter
    generation lives in :mod:`repro.fsa.generate`.
    """
    pool = list(fsa.alphabet.strings(max_length))
    return frozenset(
        candidate
        for candidate in product(pool, repeat=fsa.arity)
        if accepts(fsa, candidate)
    )
