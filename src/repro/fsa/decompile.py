"""Translating k-FSAs back into string formulae (Theorem 3.2).

Each transition ``t = ((p, c₁…c_k), (q, d₁…d_k))`` becomes the string
formula ``ψ_t = []_l (⋀ xᵢ = cᵢ') . τ_l ⊤ . τ_r ⊤`` where ``cᵢ'`` is
``cᵢ`` for alphabet characters and ``= ε`` for endmarkers, ``τ_l``
transposes the tapes moved right and ``τ_r`` the tapes moved left.
The full formula is then the regular expression of all transition
paths from the start to the final state, obtained with the classical
``E_ijk`` state-elimination recursion (Sippu & Soisalon-Soininen,
Theorem 3.17) and the paper's simplification rules for the
unsatisfiable formula ``[]_l ¬⊤``.

Because string formulae cannot distinguish the two ends of a string
while FSA tapes can, the machine is first *normalized* by indexing
every state with the endmarker status (⊢ / between / ⊣) of each head,
exactly as in the paper's proof.
"""

from __future__ import annotations

from repro.core.alphabet import LEFT_END, RIGHT_END
from repro.core.syntax import (
    IsChar,
    IsEmpty,
    SAtom,
    SStar,
    StringFormula,
    Transpose,
    Var,
    WNot,
    WTrue,
    atom,
    concat,
    left,
    right,
    union,
    w_and,
)
from repro.errors import ArityError
from repro.fsa.machine import FSA, STAY, Transition

#: Endmarker-status markers: on ⊢, strictly between, on ⊣.
_ON_LEFT, _BETWEEN, _ON_RIGHT = "L", "C", "R"


def unsatisfiable() -> SAtom:
    """The paper's ``[]_l ¬⊤``: an atomic formula true nowhere."""
    return SAtom(Transpose("l", ()), WNot(WTrue()))


def transition_formula(
    transition: Transition, variables: tuple[Var, ...]
) -> StringFormula:
    """The paper's ``ψ_t`` describing one transition."""
    tests = []
    for var, symbol in zip(variables, transition.reads):
        if symbol in (LEFT_END, RIGHT_END):
            tests.append(IsEmpty(var))
        else:
            tests.append(IsChar(var, symbol))
    parts: list[StringFormula] = [atom(left(), w_and(*tests))]
    lefts = tuple(
        var
        for var, move in zip(variables, transition.moves)
        if move == +1
    )
    rights = tuple(
        var
        for var, move in zip(variables, transition.moves)
        if move == -1
    )
    if lefts:
        parts.append(atom(left(*lefts), WTrue()))
    if rights:
        parts.append(atom(right(*rights), WTrue()))
    return concat(*parts)


def _status_of(symbol: str) -> str:
    if symbol == LEFT_END:
        return _ON_LEFT
    if symbol == RIGHT_END:
        return _ON_RIGHT
    return _BETWEEN


def _next_statuses(move: int, current: str) -> tuple[str, ...]:
    """Possible endmarker statuses after applying ``move``."""
    if move == STAY:
        return (current,)
    if move == +1:
        return (_BETWEEN, _ON_RIGHT)
    return (_ON_LEFT, _BETWEEN)


def normalize_endmarkers(fsa: FSA) -> FSA:
    """Index the state space by per-tape endmarker status.

    After normalization every state can only be exited on character
    combinations matching its index, so the naive per-transition test
    "endmarker ⇒ x = ε" becomes unambiguous.  Final states are merged
    into a single fresh final state (they have no outgoing transitions
    after halting-normalization, see :func:`normalize_for_decompile`).
    """
    from itertools import product as iproduct

    start = (fsa.start, (_ON_LEFT,) * fsa.arity)
    merged_final = "__final__"
    states = {start, merged_final}
    transitions: set[Transition] = set()
    frontier = [start]
    while frontier:
        state = frontier.pop()
        p, statuses = state
        for transition in fsa.outgoing(p):
            if any(
                _status_of(symbol) != status
                for symbol, status in zip(transition.reads, statuses)
            ):
                continue
            options = [
                _next_statuses(move, status)
                for move, status in zip(transition.moves, statuses)
            ]
            for choice in iproduct(*options):
                if transition.target in fsa.finals:
                    target = merged_final
                else:
                    target = (transition.target, choice)
                transitions.add(
                    Transition(state, transition.reads, target, transition.moves)
                )
                if target != merged_final and target not in states:
                    states.add(target)
                    frontier.append(target)
    return FSA(
        fsa.arity,
        frozenset(states),
        start,
        frozenset({merged_final}),
        frozenset(transitions),
        fsa.alphabet,
    ).pruned()


def normalize_for_decompile(fsa: FSA) -> FSA:
    """Give the machine a unique final state with no outgoing transitions.

    The paper's acceptance condition is *halting* in a final state.  We
    make that explicit: for every final state ``p`` and every character
    combination on which no transition of ``p`` fires, add a stationary
    transition into a fresh final sink.  Acceptance of the result (in
    the reach-the-sink sense and in the halting sense alike) coincides
    with halting acceptance of the original machine.
    """
    from itertools import product as iproduct

    sink = "__sink__"
    transitions = set(fsa.transitions)
    for state in fsa.finals:
        covered = {t.reads for t in fsa.outgoing(state)}
        for combo in iproduct(fsa.alphabet.tape_symbols(), repeat=fsa.arity):
            if combo not in covered:
                transitions.add(
                    Transition(state, combo, sink, (STAY,) * fsa.arity)
                )
    return FSA(
        fsa.arity,
        fsa.states | {sink},
        fsa.start,
        frozenset({sink}),
        frozenset(transitions),
        fsa.alphabet,
    ).pruned()


def _eliminate(
    numbered: list,
    edges: dict[tuple[int, int], StringFormula],
) -> StringFormula | None:
    """The ``E_ijk`` recursion with the paper's simplification rules.

    ``None`` plays the role of the unsatisfiable ``[]_l ¬⊤`` — the
    simplifications ``E . ∅ = ∅``, ``E + ∅ = E`` and ``∅* = λ`` are
    applied eagerly so unsatisfiable branches vanish.
    """
    n = len(numbered)
    # current[(i, j)] = E_ij(k) as k grows; missing key = unsatisfiable.
    current: dict[tuple[int, int], StringFormula] = dict(edges)
    for k in range(1, n - 1):  # eliminate intermediate states 2..n-1 (index k)
        loop = current.get((k, k))
        through = SStar(loop) if loop is not None else None
        updated = dict(current)
        for i in range(n):
            if (i, k) not in current or i == k:
                continue
            for j in range(n):
                if (k, j) not in current or j == k:
                    continue
                if through is not None:
                    detour = concat(current[(i, k)], through, current[(k, j)])
                else:
                    detour = concat(current[(i, k)], current[(k, j)])
                existing = updated.get((i, j))
                updated[(i, j)] = (
                    detour if existing is None else union(existing, detour)
                )
        for key in list(updated):
            if k in key:
                del updated[key]
        current = updated
    start_index, final_index = 0, n - 1
    direct = current.get((start_index, final_index))
    start_loop = current.get((start_index, start_index))
    final_loop = current.get((final_index, final_index))
    if direct is None:
        return None
    parts: list[StringFormula] = []
    if start_loop is not None:
        parts.append(SStar(start_loop))
    parts.append(direct)
    if final_loop is not None:
        parts.append(SStar(final_loop))
    return concat(*parts)


def decompile(
    fsa: FSA, variables: tuple[Var, ...] | None = None
) -> StringFormula:
    """Theorem 3.2: a string formula ``φ_A`` with ``⟦φ_A⟧ = L(A)``.

    ``variables`` names the tapes (default ``x1 … xk``).  Variable
    ``xᵢ`` of the result is bidirectional iff tape ``i`` is.
    """
    if variables is None:
        variables = tuple(f"x{i + 1}" for i in range(fsa.arity))
    if len(variables) != fsa.arity:
        raise ArityError(
            f"{fsa.arity}-FSA needs {fsa.arity} variable names, got {variables!r}"
        )
    normalized = normalize_endmarkers(normalize_for_decompile(fsa))
    if not normalized.finals:
        return unsatisfiable()
    (final,) = tuple(normalized.finals)
    if final == normalized.start:
        # Degenerate: the empty path is accepting.
        return concat()
    ordering = [normalized.start]
    ordering.extend(
        sorted(
            (
                s
                for s in normalized.states
                if s != normalized.start and s != final
            ),
            key=repr,
        )
    )
    ordering.append(final)
    index = {state: i for i, state in enumerate(ordering)}
    edges: dict[tuple[int, int], StringFormula] = {}
    for transition in normalized.transitions:
        key = (index[transition.source], index[transition.target])
        piece = transition_formula(transition, variables)
        existing = edges.get(key)
        edges[key] = piece if existing is None else union(existing, piece)
    result = _eliminate(ordering, edges)
    return result if result is not None else unsatisfiable()
