"""An ergonomic construction DSL for k-FSAs.

The Section 6 machines (QBF verifiers, LBA simulators) are far too
large to write as raw transition tuples.  :class:`MachineBuilder`
provides named states, per-tape read/move specifications with
wildcards, and small composable idioms (scan-until, copy-compare), all
compiling down to the plain :class:`repro.fsa.machine.FSA`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.alphabet import LEFT_END, RIGHT_END, Alphabet
from repro.errors import TransitionError
from repro.fsa.machine import FSA, Transition

#: Wildcard read specification: any symbol (endmarkers included).
ANY = "*"

#: Wildcard read specification: any alphabet character (no endmarkers).
ANY_CHAR = "**"


class MachineBuilder:
    """Accumulates transitions for a k-FSA under construction.

    Read specifications per tape may be a concrete symbol, the
    wildcard :data:`ANY`, the character wildcard :data:`ANY_CHAR`, or
    an iterable of symbols.  A wildcard expands to one transition per
    matching symbol; illegal endmarker/move combinations are silently
    skipped during expansion (e.g. ``ANY`` with move ``+1`` omits
    ``⊣``), which is what hand constructions invariably want.
    """

    def __init__(self, arity: int, alphabet: Alphabet, start: str) -> None:
        self.arity = arity
        self.alphabet = alphabet
        self.start = start
        self.finals: set[str] = set()
        self.transitions: set[Transition] = set()
        self.extra_states: set[str] = {start}

    # -- low-level -------------------------------------------------------

    def _expand(self, spec) -> list[str]:
        if spec == ANY:
            return list(self.alphabet.tape_symbols())
        if spec == ANY_CHAR:
            return list(self.alphabet.symbols)
        if isinstance(spec, str):
            return [spec]
        return list(spec)

    def add(
        self,
        source: str,
        reads,
        target: str,
        moves: Iterable[int],
    ) -> "MachineBuilder":
        """Add transitions for every combination matching ``reads``."""
        moves = tuple(moves)
        if len(reads) != self.arity or len(moves) != self.arity:
            raise TransitionError(
                f"specs must have arity {self.arity}: {reads!r} / {moves!r}"
            )
        from itertools import product

        for combo in product(*(self._expand(spec) for spec in reads)):
            legal = all(
                not (symbol == LEFT_END and move == -1)
                and not (symbol == RIGHT_END and move == +1)
                for symbol, move in zip(combo, moves)
            )
            if legal:
                self.transitions.add(
                    Transition(source, combo, target, moves)
                )
        self.extra_states.update((source, target))
        return self

    def final(self, *states: str) -> "MachineBuilder":
        self.finals.update(states)
        self.extra_states.update(states)
        return self

    # -- idioms ------------------------------------------------------------

    def scan_until(
        self,
        source: str,
        tape: int,
        stop_symbols,
        target: str,
        consume_stop: bool = True,
    ) -> "MachineBuilder":
        """Move ``tape`` rightward until one of ``stop_symbols``.

        Other tapes stay put; the stop symbol is stepped over when
        ``consume_stop`` (otherwise the head halts on it).
        """
        stops = set(self._expand(stop_symbols))
        movers = [
            s
            for s in self.alphabet.tape_symbols()
            if s not in stops and s != RIGHT_END
        ]
        reads: list = [ANY] * self.arity
        moves = [0] * self.arity
        reads[tape], moves[tape] = movers, +1
        self.add(source, reads, source, moves)
        stop_reads: list = [ANY] * self.arity
        stop_moves = [0] * self.arity
        stop_reads[tape] = [s for s in stops]
        stop_moves[tape] = +1 if consume_stop else 0
        if consume_stop:
            stop_reads[tape] = [s for s in stops if s != RIGHT_END]
        self.add(source, stop_reads, target, stop_moves)
        return self

    def rewind(self, source: str, tape: int, target: str) -> "MachineBuilder":
        """Move ``tape`` leftward to its ``⊢`` (making it bidirectional)."""
        reads: list = [ANY] * self.arity
        moves = [0] * self.arity
        reads[tape] = [
            s for s in self.alphabet.tape_symbols() if s != LEFT_END
        ]
        moves[tape] = -1
        self.add(source, reads, source, moves)
        stop_reads: list = [ANY] * self.arity
        stop_reads[tape] = LEFT_END
        self.add(source, stop_reads, target, [0] * self.arity)
        return self

    def build(self) -> FSA:
        """Produce the (pruned) machine."""
        return FSA(
            self.arity,
            frozenset(self.extra_states),
            self.start,
            frozenset(self.finals),
            frozenset(self.transitions),
            self.alphabet,
        ).pruned()
