"""Domain independence and limit functions for calculus queries.

Definition 3.2 calls a formula *domain independent* when its answer
stabilizes once strings up to some database-dependent length
``W_φ(db)`` are considered.  This module derives such limit functions
syntactically, in the spirit the paper sketches at the end of
Sections 3-5 (and attributes in detail to Escobar-Molano, Hull &
Jacobs [4]):

* a relational atom bounds each of its variables by ``max(R, db)``
  (Eq. 2);
* a string formula bounds its *output* variables once its *input*
  variables are bounded, by the certified limitation function of
  Theorem 5.2;
* conjunction propagates bounds to a fixed point; negation certifies
  nothing new but inherits the context's bounds; a quantifier is
  admissible only if its variable is bounded inside.

The analysis is sound but incomplete — inevitable, since safety is
undecidable in general (Section 5 opening).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.core.database import Database
from repro.core.syntax import (
    And,
    Exists,
    Formula,
    Not,
    RelAtom,
    StringAtom,
    Var,
    free_variables,
    string_variables,
)
from repro.errors import LimitationError
from repro.safety.limitation import LimitationReport, formula_limitation


class Bound:
    """A database-dependent upper bound on a variable's string length."""

    def evaluate(self, db: Database) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class RelBound(Bound):
    """``max(R, db)`` — the longest string stored in relation ``R``."""

    relation: str

    def evaluate(self, db: Database) -> int:
        return db.max_string_length(self.relation)

    def describe(self) -> str:
        return f"max({self.relation}, db)"


@dataclass(frozen=True)
class ConstBound(Bound):
    """A database-independent constant bound."""

    value: int

    def evaluate(self, db: Database) -> int:
        return self.value

    def describe(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class LimitBound(Bound):
    """A limitation-certified bound ``W_A(bounds of the inputs)``."""

    report: LimitationReport
    inputs: tuple[Bound, ...]

    def evaluate(self, db: Database) -> int:
        return self.report.bound(*(b.evaluate(db) for b in self.inputs))

    def describe(self) -> str:
        inner = ", ".join(b.describe() for b in self.inputs)
        return f"{self.report.limit.describe()}({inner})"


@dataclass(frozen=True)
class SafetyReport:
    """A certified limit function for a whole query formula."""

    variable_bounds: dict[Var, Bound]
    all_bounds: tuple[Bound, ...]

    def bound(self, db: Database) -> int:
        """``W_φ(db)``: a truncation length after which the answer is
        stable (covers free and quantified variables alike)."""
        return max(
            (b.evaluate(db) for b in self.all_bounds), default=0
        )

    def describe(self) -> str:
        return "max(" + ", ".join(b.describe() for b in self.all_bounds) + ")"


def _analyze(
    formula: Formula,
    ambient: dict[Var, Bound],
    alphabet: Alphabet,
    collected: list[Bound],
    compiler=None,
) -> dict[Var, Bound] | None:
    """Bounds certifiable for the free variables of ``formula``.

    ``ambient`` holds bounds already established by the surrounding
    conjunction (valid under negation too: the context fixes those
    variables' values).  Returns ``None`` when some quantified variable
    cannot be bounded — the formula is then not certifiably domain
    independent.  Every bound ever derived is appended to
    ``collected``, since quantifier domains must also be covered by the
    final truncation length.
    """
    if isinstance(formula, RelAtom):
        bounds = {arg: RelBound(formula.name) for arg in formula.args}
        collected.extend(bounds.values())
        return bounds
    if isinstance(formula, StringAtom):
        variables = sorted(string_variables(formula.formula))
        inputs = [v for v in variables if v in ambient]
        outputs = [v for v in variables if v not in ambient]
        if not outputs:
            return {}
        try:
            report = formula_limitation(
                formula.formula, inputs, outputs, alphabet, compiler=compiler
            )
        except LimitationError:
            return {}
        if not report.limited:
            return {}
        bound = LimitBound(report, tuple(ambient[v] for v in inputs))
        bounds = {v: bound for v in outputs}
        collected.extend(bounds.values())
        return bounds
    if isinstance(formula, And):
        # Propagate bounds between the conjuncts to a fixed point.
        established: dict[Var, Bound] = {}
        conjuncts = _flatten_and(formula)
        for _ in range(len(conjuncts) + 1):
            grew = False
            for conjunct in conjuncts:
                context = {**ambient, **established}
                result = _analyze(
                    conjunct, context, alphabet, collected, compiler
                )
                if result is None:
                    return None
                for var, bound in result.items():
                    if var not in established and var not in ambient:
                        established[var] = bound
                        grew = True
            if not grew:
                break
        return established
    if isinstance(formula, Not):
        result = _analyze(formula.inner, ambient, alphabet, collected, compiler)
        if result is None:
            return None
        # Negation certifies nothing about its variables.
        return {}
    if isinstance(formula, Exists):
        result = _analyze(formula.inner, ambient, alphabet, collected, compiler)
        if result is None:
            return None
        if formula.var in free_variables(formula.inner) and (
            formula.var not in result and formula.var not in ambient
        ):
            return None  # unbounded quantifier: not certifiable
        return {
            var: bound for var, bound in result.items() if var != formula.var
        }
    raise TypeError(f"not a calculus formula: {formula!r}")


def _flatten_and(formula: Formula) -> list[Formula]:
    if isinstance(formula, And):
        return _flatten_and(formula.left) + _flatten_and(formula.right)
    return [formula]


def limit_function(
    formula: Formula, alphabet: Alphabet, compiler=None
) -> SafetyReport | None:
    """A certified limit function ``W_φ`` or ``None``.

    Certification requires every free and quantified variable to be
    bounded — by database relations, by finite string formulae, or by
    limitation-certified generation from other bounded variables.
    ``compiler`` optionally replaces the Theorem 3.1 compiler used for
    the limitation analyses (engine sessions pass their cached one).
    """
    collected: list[Bound] = []
    bounds = _analyze(formula, {}, alphabet, collected, compiler)
    if bounds is None:
        return None
    missing = free_variables(formula) - set(bounds)
    if missing:
        return None
    return SafetyReport(dict(bounds), tuple(collected))


def expression_limit(expression, db: Database) -> int | None:
    """A limit ``W_E(db)`` for a finitely evaluable algebra expression.

    Follows the compositional rules of Theorem 4.1's second claim; for
    the generative pattern ``σ_A(F × (Σ*)^n)`` the Theorem 5.2
    limitation function of ``A`` is applied to the bound of ``F``.
    Returns ``None`` when ``Σ*`` occurs outside a certifiable pattern.
    """
    from repro.algebra.expressions import (
        Diff,
        Product,
        Project,
        Rel,
        Select,
        SigmaL,
        SigmaStar,
        Union,
    )
    from repro.algebra.evaluate import _flatten_product
    from repro.safety.limitation import decide_limitation

    if isinstance(expression, Rel):
        return db.max_string_length(expression.name)
    if isinstance(expression, SigmaL):
        return expression.bound
    if isinstance(expression, SigmaStar):
        return None
    if isinstance(expression, (Union, Diff, Product)):
        left = expression_limit(expression.left, db)
        right = expression_limit(expression.right, db)
        if left is None or right is None:
            return None
        return max(left, right)
    if isinstance(expression, Project):
        return expression_limit(expression.inner, db)
    if isinstance(expression, Select):
        factors = _flatten_product(expression.inner)
        sigma_tapes: list[int] = []
        concrete_bounds: list[int] = []
        column = 0
        for factor in factors:
            span = list(range(column, column + factor.arity))
            if isinstance(factor, SigmaStar):
                sigma_tapes.extend(span)
            else:
                inner = expression_limit(factor, db)
                if inner is None:
                    return None
                concrete_bounds.append(inner)
            column += factor.arity
        if not sigma_tapes:
            return max(concrete_bounds, default=0)
        fixed_tapes = [
            i for i in range(expression.arity) if i not in sigma_tapes
        ]
        try:
            report = decide_limitation(
                expression.machine, fixed_tapes, sigma_tapes
            )
        except LimitationError:
            return None
        if not report.limited:
            return None
        base = max(concrete_bounds, default=0)
        return max(base, report.bound(*(base for _ in fixed_tapes)))
    raise TypeError(f"not an algebra expression: {expression!r}")
