"""Safety analysis: limitation, domain independence, undecidability."""

from repro.safety.crossing import (
    CrossingAutomaton,
    build_crossing_automaton,
)
from repro.safety.domain_independence import (
    SafetyReport,
    expression_limit,
    limit_function,
)
from repro.safety.limitation import (
    LimitFunction,
    LimitationReport,
    decide_limitation,
    formula_limitation,
)
from repro.safety.reductions import derivation_encoding, phi_g

__all__ = [
    "CrossingAutomaton",
    "build_crossing_automaton",
    "SafetyReport",
    "expression_limit",
    "limit_function",
    "LimitFunction",
    "LimitationReport",
    "decide_limitation",
    "formula_limitation",
    "derivation_encoding",
    "phi_g",
]
