"""The undecidability constructions of Theorem 5.1.

``phi_g(grammar)`` builds the string formula ``φ_G`` whose satisfying
tuples are exactly ``(u, C, C)`` where ``C = u > v₂ > … > S`` encodes
a derivation of ``u`` in the unrestricted grammar ``G`` (written
backwards, from the derived word to the start symbol).  Composed with
the backward Turing machine simulation of
:func:`repro.expressive.grammars.backward_grammar`, the question
"does x₁ limit x₂, x₃ in φ_G?" becomes TM totality — the proof that
the limitation problem is undecidable once two bidirectional
variables are allowed.
"""

from __future__ import annotations

from repro.core.alphabet import Alphabet
from repro.core.syntax import (
    IsChar,
    IsEmpty,
    SameChar,
    SStar,
    StringFormula,
    Var,
    atom,
    concat,
    eq_chain,
    left,
    right,
    union,
    w_and,
)
from repro.expressive.grammars import Grammar
from repro.errors import ReproError

#: The derivation-chain separator of Theorem 5.1.
SEPARATOR = ">"


def derivation_encoding(chain: list[str], separator: str = SEPARATOR) -> str:
    """Encode a derivation chain as Theorem 5.1's ``u > v₂ > … > S``.

    ``chain`` is given derivation-first (``[S, …, u]``, as produced by
    :meth:`Grammar.derivation`); the encoding reverses it, per the
    paper's convention (1) + (2): ``v₁ = u`` and ``v_n = S``.
    """
    return separator.join(reversed(chain))


def grammar_alphabet(
    grammar: Grammar, separator: str = SEPARATOR
) -> Alphabet:
    """``Σ_G``: every grammar symbol plus the separator."""
    if separator in grammar.symbols:
        raise ReproError(f"separator {separator!r} clashes with the grammar")
    return Alphabet(sorted(grammar.symbols) + [separator])


def _is_sep(var: Var, separator: str) -> IsChar:
    return IsChar(var, separator)


def phi_1(
    x1: Var, x2: Var, x3: Var, start: str, separator: str = SEPARATOR
) -> StringFormula:
    """Condition (1): ``x₂ = x₃ = x₁ > … > S`` with ``x₁`` separator-free.

    Checks that the chains start with a copy of ``x₁``, agree
    everywhere, and end with a final segment holding exactly the start
    symbol.  The paper's printed tail requires a second separator and
    so misses the minimal two-segment chain ``u > S``; the first union
    branch below restores that case (see EXPERIMENTS.md, item T51).
    """
    last_segment_is_start = concat(
        atom(left(x2, x3), w_and(IsChar(x2, start), SameChar(x2, x3))),
        atom(left(x2, x3), w_and(IsEmpty(x2), IsEmpty(x3))),
    )
    return concat(
        SStar(
            atom(
                left(x1, x2, x3),
                w_and(eq_chain(x1, x2, x3), ~_is_sep(x2, separator)),
            )
        ),
        atom(
            left(x1, x2, x3),
            w_and(
                IsEmpty(x1),
                _is_sep(x2, separator),
                SameChar(x2, x3),
            ),
        ),
        union(
            last_segment_is_start,  # the chain is exactly  u > S
            concat(
                SStar(atom(left(x2, x3), SameChar(x2, x3))),
                atom(
                    left(x2, x3),
                    w_and(_is_sep(x2, separator), SameChar(x2, x3)),
                ),
                last_segment_is_start,
            ),
        ),
    )


def chi_rule(
    x2: Var, x3: Var, lhs: str, rhs: str
) -> StringFormula:
    """``χ_r``: consume the rule's sides from the offset chains.

    With ``x₂`` inside segment ``v_{i+1}`` and ``x₃`` inside ``w_i``,
    verifies that ``v_{i+1}`` continues with the left-hand side where
    ``w_i`` continues with the right-hand side.
    """
    parts: list[StringFormula] = []
    for char in lhs:
        parts.append(atom(left(x2), IsChar(x2, char)))
    for char in rhs:
        parts.append(atom(left(x3), IsChar(x3, char)))
    if not parts:
        return concat()
    return concat(*parts)


def chi_grammar(
    x2: Var, x3: Var, grammar: Grammar, separator: str = SEPARATOR
) -> StringFormula:
    """``χ_G``: one rule application between offset segments.

    Common context before and after, one rule's sides in the middle —
    exactly the paper's ``([x₂,x₃]_l x₂=x₃≠>)* . (χ₁+…+χ_m) .
    ([x₂,x₃]_l x₂=x₃≠>)*``.
    """
    context = SStar(
        atom(
            left(x2, x3),
            w_and(SameChar(x2, x3), ~_is_sep(x2, separator)),
        )
    )
    rules = union(
        *(chi_rule(x2, x3, lhs, rhs) for lhs, rhs in grammar.rules)
    )
    return concat(context, rules, context)


def phi_2(
    x2: Var, x3: Var, grammar: Grammar, separator: str = SEPARATOR
) -> StringFormula:
    """Condition (2): every adjacent segment pair is one rule apart.

    ``x₂`` runs one segment ahead of ``x₃`` throughout, so comparing
    them checks ``v_{i+1} ⇒_G w_i``.
    """
    step = chi_grammar(x2, x3, grammar, separator)
    return concat(
        SStar(atom(left(x2), ~_is_sep(x2, separator))),
        atom(left(x2), _is_sep(x2, separator)),
        SStar(
            concat(
                step,
                atom(
                    left(x2, x3),
                    w_and(_is_sep(x2, separator), SameChar(x2, x3)),
                ),
            )
        ),
        step,
        atom(left(x2, x3), w_and(IsEmpty(x2), _is_sep(x3, separator))),
    )


def rewind_x2_x3(x2: Var, x3: Var) -> StringFormula:
    """Subformula (C): reset both chains to their initial alignment.

    The only right transposes of ``φ_G`` — ``x₂`` and ``x₃`` are its
    two bidirectional variables, which is exactly what places the
    construction beyond the decidable right-restricted class.
    """
    from repro.core.syntax import not_empty

    return concat(
        SStar(
            atom(right(x2, x3), w_and(SameChar(x2, x3), not_empty(x2)))
        ),
        atom(right(x2, x3), w_and(IsEmpty(x2), IsEmpty(x3))),
    )


def phi_g(
    grammar: Grammar,
    x1: Var = "x1",
    x2: Var = "x2",
    x3: Var = "x3",
    separator: str = SEPARATOR,
) -> StringFormula:
    """Theorem 5.1's ``φ_G``: derivation chains as satisfying tuples.

    ``⟦φ_G⟧`` is the set of tuples ``(u, C, C)`` where ``C`` encodes a
    derivation of ``u`` in ``grammar`` — so ``x₁`` limits ``x₂, x₃``
    iff no word has unboundedly long derivations.
    """
    return concat(
        phi_1(x1, x2, x3, grammar.start, separator),
        rewind_x2_x3(x2, x3),
        phi_2(x2, x3, grammar, separator),
    )
