"""The crossing-sequence construction of Theorem 5.2.

For a right-restricted machine — one bidirectional tape ``b``, all
other tapes unidirectional — this module builds the one-way automaton
``A″`` whose states are *valid direct crossing sequences* of the
behaviour on tape ``b`` and whose arcs carry abstracted *matching
labels* (which kinds of original transition the head used on one tape
square).

Pipeline, following the paper's proof:

1. **Projection** — view the machine through tape ``b``, tagging each
   transition *reading* (advances a unidirectional input tape) and/or
   *writing* (advances a unidirectional output tape).
2. **Cleanup normalization** — accepting transitions are replaced by
   entries into a winding loop that drives ``b``'s head rightward past
   ``⊣`` (a virtual crossing into the exit state), so every accepting
   computation crosses every boundary of tape ``b``.
3. **Dancing normalization** — transitions that leave ``b``'s head in
   place are replaced by a step-off-and-return dance, so every
   transition crosses a boundary.
4. **A″ construction** — breadth-first generation of reachable valid
   crossing sequences; arcs between two sequences on a character exist
   exactly when the paper's match relation ``m(Q; P; c; T)`` holds
   (realized here as a direct simulation of the head's visits to one
   square, Figures 7-8).

The paper builds ``A″`` over *almost direct* sequences (each pair at
most twice) and then shows (Figures 9-12) that its three limitation
questions — unfinished unidirectional outputs, an unscanned
bidirectional output, and pumping the bidirectional output without
reading — are already answered by the *direct* computations, which is
the variant constructed here; the fourth question (case 4 of the
proof) is handled separately in :mod:`repro.safety.limitation` by a
bounded configuration-cycle search.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count

from repro.core.alphabet import LEFT_END, RIGHT_END
from repro.errors import LimitationError
from repro.fsa.machine import FSA

#: Crossing directions.
RIGHTWARD, LEFTWARD = +1, -1

#: Label kinds.
READING, WRITING, DANCING, CLEANUP = "reading", "writing", "dancing", "cleanup"

#: Kind marking a cleanup entry that genuinely read tape b's ``⊣`` —
#: the original accepting transition scanned the right end, so it does
#: not count as overhead for the "unscanned output" check.
SCANS_END = "scans_end"

#: Synthetic states added by the normalizations.
_WIND = "__wind__"
_EXIT = "__exit__"


@dataclass(frozen=True)
class BTransition:
    """A machine transition projected onto the bidirectional tape.

    ``move`` may be ``+1`` even when ``read`` is ``⊣`` — that single
    *virtual* exit move implements the paper's "finally passes over the
    endmarker" and only ever occurs on cleanup transitions.
    """

    source: object
    read: str
    target: object
    move: int
    kinds: frozenset[str]
    easy_outputs: frozenset[int] = frozenset()

    def is_reading(self) -> bool:
        return READING in self.kinds

    def is_overhead(self) -> bool:
        """Dancing/cleanup bookkeeping rather than original behaviour.

        A cleanup entry that read ``⊣`` on tape b is a genuine scan of
        the right end and therefore not overhead.
        """
        return bool(self.kinds & {DANCING, CLEANUP}) and not (
            self.kinds & {READING, WRITING, SCANS_END}
        )


@dataclass(frozen=True)
class MatchSummary:
    """Abstracted matching label of one ``A″`` arc variant.

    Retains exactly what the Theorem 5.2 questions inspect: whether the
    square's visits read input, whether they were pure
    dancing/cleanup overhead, and which unfinished outputs a cleanup
    entry recorded.
    """

    has_reading: bool
    all_overhead: bool
    easy_outputs: frozenset[int]

    @staticmethod
    def of(transitions: tuple[BTransition, ...]) -> "MatchSummary":
        easy: set[int] = set()
        for t in transitions:
            easy |= t.easy_outputs
        return MatchSummary(
            any(t.is_reading() for t in transitions),
            all(t.is_overhead() for t in transitions),
            frozenset(easy),
        )


#: A crossing-sequence pair and sequence.
Pair = tuple[object, int]
Sequence_ = tuple[Pair, ...]


@dataclass(frozen=True)
class Arc:
    """One arc of ``A″`` with all its matching-label summaries."""

    source: Sequence_
    read: str
    target: Sequence_
    summaries: frozenset[MatchSummary]


@dataclass
class CrossingAutomaton:
    """The one-way automaton ``A″`` over ``Σ ∪ {⊢, ⊣}``."""

    start: Sequence_
    final: Sequence_
    arcs: list[Arc]
    alphabet: object

    def states(self) -> frozenset[Sequence_]:
        found = {self.start, self.final}
        for arc in self.arcs:
            found.add(arc.source)
            found.add(arc.target)
        return frozenset(found)

    def accepts(self, content: str) -> bool:
        """Does some accepting computation have ``content`` on tape ``b``
        (for suitable contents of the other tapes)?"""
        word = [LEFT_END, *content, RIGHT_END]
        current = {self.start}
        for char in word:
            current = {
                arc.target
                for arc in self.arcs
                if arc.source in current and arc.read == char
            }
            if not current:
                return False
        return self.final in current

    def size(self) -> int:
        """Number of arcs (the paper's bound parameter ``|A″|``)."""
        return len(self.arcs)


# ---------------------------------------------------------------------------
# Projection and normalizations
# ---------------------------------------------------------------------------


def project_transitions(
    fsa: FSA,
    tape_b: int,
    input_tapes: frozenset[int],
    output_tapes: frozenset[int],
) -> list[BTransition]:
    """Steps 1-3: project, cleanup-normalize and dance-normalize.

    Requires every final state of ``fsa`` to lack outgoing transitions
    (machines from the Theorem 3.1 compiler comply; use
    :func:`repro.fsa.decompile.normalize_for_decompile` otherwise).
    """
    for state in fsa.finals:
        if fsa.outgoing(state):
            raise LimitationError(
                "crossing construction needs halting-normalized finals; "
                "apply normalize_for_decompile first"
            )
    unidirectional = fsa.unidirectional_tapes()
    projected: list[BTransition] = []
    fresh = count()
    for t in fsa.transitions:
        kinds = set()
        if any(t.moves[i] == +1 for i in input_tapes & unidirectional):
            kinds.add(READING)
        if any(t.moves[i] == +1 for i in output_tapes & unidirectional):
            kinds.add(WRITING)
        read = t.reads[tape_b]
        move = t.moves[tape_b]
        if t.target in fsa.finals:
            # Cleanup normalization: wind b to (and past) ⊣ instead of
            # halting here.  The original accepting combination's
            # unfinished outputs are remembered for the "easy" check.
            easy = frozenset(
                o
                for o in output_tapes & unidirectional
                if t.reads[o] != RIGHT_END
            )
            if read == RIGHT_END:
                projected.append(
                    BTransition(
                        t.source,
                        read,
                        _EXIT,
                        +1,
                        frozenset({CLEANUP, SCANS_END}),
                        easy,
                    )
                )
            else:
                projected.append(
                    BTransition(
                        t.source, read, _WIND, +1, frozenset({CLEANUP}), easy
                    )
                )
            continue
        if move == 0:
            # Dancing normalization: step off and come back so every
            # transition crosses a boundary.  The detour state is shared
            # per (source, character, direction): the nondeterministic
            # choice among same-source same-character transitions is
            # unaffected by joining their dances.
            step = LEFTWARD if read != LEFT_END else RIGHTWARD
            aux = ("__dance__", t.source, read, step)
            projected.append(
                BTransition(t.source, read, aux, step, frozenset({DANCING}))
            )
            neighbour_chars = (
                (*fsa.alphabet.symbols, LEFT_END)
                if step == LEFTWARD
                else (*fsa.alphabet.symbols, RIGHT_END)
            )
            for char in neighbour_chars:
                projected.append(
                    BTransition(
                        aux,
                        char,
                        t.target,
                        -step,
                        frozenset({DANCING}) | frozenset(kinds),
                    )
                )
            continue
        projected.append(
            BTransition(t.source, read, t.target, move, frozenset(kinds))
        )
    # Winding loop for the cleanup phase.
    for char in fsa.alphabet.symbols:
        projected.append(
            BTransition(_WIND, char, _WIND, +1, frozenset({CLEANUP}))
        )
    projected.append(
        BTransition(_WIND, RIGHT_END, _EXIT, +1, frozenset({CLEANUP}))
    )
    return _quotient(projected, fsa.start)


def _quotient(
    projected: list[BTransition], start: object
) -> list[BTransition]:
    """Merge forward-bisimilar states of the projected one-tape system.

    The merge respects the label information (kinds, recorded easy
    outputs), so matching-label summaries computed on the quotient
    coincide with those of the original.  This is the preprocessing
    that keeps the exponential crossing construction tractable on
    compiled machines, whose intermediate states are massively
    redundant after projection.
    """
    states: set = {start, _EXIT}
    outgoing: dict = {}
    for transition in projected:
        states.add(transition.source)
        states.add(transition.target)
        outgoing.setdefault(transition.source, []).append(transition)
    # _EXIT and the start are kept distinguishable from ordinary states.
    block: dict = {
        state: (state == _EXIT, state == start) for state in states
    }
    while True:
        signatures = {
            state: (
                block[state],
                frozenset(
                    (t.read, t.move, t.kinds, t.easy_outputs, block[t.target])
                    for t in outgoing.get(state, ())
                ),
            )
            for state in states
        }
        renumber: dict = {}
        for state in sorted(states, key=repr):
            renumber.setdefault(signatures[state], len(renumber))
        new_block = {state: renumber[signatures[state]] for state in states}
        if len(set(new_block.values())) == len(set(block.values())):
            block = new_block
            break
        block = new_block
    representative: dict = {}
    for state in sorted(states, key=repr):
        representative.setdefault(block[state], state)
    mapping = {state: representative[block[state]] for state in states}
    merged = {
        BTransition(
            mapping[t.source],
            t.read,
            mapping[t.target],
            t.move,
            t.kinds,
            t.easy_outputs,
        )
        for t in projected
    }
    return sorted(merged, key=repr)


# ---------------------------------------------------------------------------
# Match generation (Figures 7-8 as a visit simulation)
# ---------------------------------------------------------------------------


class _Matcher:
    """Generates all right sequences matching a left sequence on a char.

    Simulates the visits to one square holding ``char``: the head
    arrives from the left by consuming a ``(q, +1)`` pair of ``Q``,
    arrives from the right by emitting a ``(p, -1)`` pair into ``P``,
    and between arrivals takes transitions on ``char`` — leaving
    leftward consumes the matching ``(q', -1)`` pair of ``Q``, leaving
    rightward emits ``(p', +1)``.  Emitted sequences are kept valid and
    *direct* (no repeated pair); the cutting arguments of Figures 9-12
    justify restricting to direct sequences for the limitation
    questions.
    """

    def __init__(self, projected: list[BTransition]) -> None:
        self.by_source: dict = {}
        leftward_targets: set = set()
        for transition in projected:
            self.by_source.setdefault(
                (transition.source, transition.read), []
            ).append(transition)
            if transition.move == LEFTWARD:
                leftward_targets.add(transition.target)
        # States the head can be in when arriving on a square from the
        # right: targets of leftward transitions only.
        self.arrivals_by_char: dict[str, tuple] = {}
        chars = {t.read for t in projected}
        for char in chars:
            self.arrivals_by_char[char] = tuple(
                state
                for state in leftward_targets
                if (state, char) in self.by_source
            )

    def matches(
        self, left_sequence: Sequence_, char: str
    ) -> dict[Sequence_, set[MatchSummary]]:
        results: dict[Sequence_, set[MatchSummary]] = {}
        if not left_sequence:
            results[()] = {MatchSummary(False, True, frozenset())}
            return results
        arrivals = self.arrivals_by_char.get(char, ())
        q_pairs = left_sequence

        def record(emitted: tuple[Pair, ...], used: tuple[BTransition, ...]):
            results.setdefault(emitted, set()).add(MatchSummary.of(used))

        def explore(side, q_index, emitted, emitted_set, used):
            if side == "right" and q_index == len(q_pairs):
                record(emitted, used)
            if side == "left":
                if q_index < len(q_pairs) and q_pairs[q_index][1] == RIGHTWARD:
                    explore(
                        q_pairs[q_index][0],
                        q_index + 1,
                        emitted,
                        emitted_set,
                        used,
                    )
                return
            if side == "right":
                for state in arrivals:
                    pair = (state, LEFTWARD)
                    if pair in emitted_set:
                        continue  # direct sequences only
                    explore(
                        state,
                        q_index,
                        emitted + (pair,),
                        emitted_set | {pair},
                        used,
                    )
                return
            # side is a machine state: the head sits on this square.
            for transition in self.by_source.get((side, char), ()):
                if transition.move == LEFTWARD:
                    if (
                        q_index < len(q_pairs)
                        and q_pairs[q_index] == (transition.target, LEFTWARD)
                    ):
                        explore(
                            "left",
                            q_index + 1,
                            emitted,
                            emitted_set,
                            used + (transition,),
                        )
                else:
                    pair = (transition.target, RIGHTWARD)
                    if pair in emitted_set:
                        continue  # direct sequences only
                    explore(
                        "right",
                        q_index,
                        emitted + (pair,),
                        emitted_set | {pair},
                        used + (transition,),
                    )

        explore("left", 0, (), frozenset(), ())
        return results


# ---------------------------------------------------------------------------
# Building A″
# ---------------------------------------------------------------------------


def build_crossing_automaton(
    fsa: FSA,
    tape_b: int,
    input_tapes: frozenset[int] | set[int],
    output_tapes: frozenset[int] | set[int],
    max_states: int = 20000,
) -> CrossingAutomaton:
    """Construct ``A″`` for the designated bidirectional tape.

    ``max_states`` bounds the construction (the paper notes ``|A″|``
    can be exponential in ``|A|``); exceeding it raises
    :class:`LimitationError` rather than running away.
    """
    projected = project_transitions(
        fsa, tape_b, frozenset(input_tapes), frozenset(output_tapes)
    )
    matcher = _Matcher(projected)
    start: Sequence_ = ((fsa.start, RIGHTWARD),)
    final: Sequence_ = ((_EXIT, RIGHTWARD),)
    arcs: list[Arc] = []
    seen = {start}
    frontier = [start]
    symbols = (*fsa.alphabet.symbols, LEFT_END, RIGHT_END)
    while frontier:
        source = frontier.pop()
        for char in symbols:
            for target, summaries in matcher.matches(source, char).items():
                arcs.append(Arc(source, char, target, frozenset(summaries)))
                if target not in seen:
                    if len(seen) >= max_states:
                        raise LimitationError(
                            f"crossing automaton exceeded {max_states} states"
                        )
                    seen.add(target)
                    frontier.append(target)
    automaton = CrossingAutomaton(start, final, arcs, fsa.alphabet)
    return _pruned(automaton)


def _pruned(automaton: CrossingAutomaton) -> CrossingAutomaton:
    """Keep only arcs on a start→final path."""
    adjacency: dict = {}
    entering: dict = {}
    for arc in automaton.arcs:
        adjacency.setdefault(arc.source, []).append(arc)
        entering.setdefault(arc.target, []).append(arc)
    forward = {automaton.start}
    frontier = [automaton.start]
    while frontier:
        state = frontier.pop()
        for arc in adjacency.get(state, ()):
            if arc.target not in forward:
                forward.add(arc.target)
                frontier.append(arc.target)
    backward = {automaton.final} if automaton.final in forward else set()
    frontier = list(backward)
    while frontier:
        state = frontier.pop()
        for arc in entering.get(state, ()):
            if arc.source in forward and arc.source not in backward:
                backward.add(arc.source)
                frontier.append(arc.source)
    arcs = [
        arc
        for arc in automaton.arcs
        if arc.source in backward and arc.target in backward
    ]
    return CrossingAutomaton(
        automaton.start, automaton.final, arcs, automaton.alphabet
    )


# ---------------------------------------------------------------------------
# Graph analyses used by Theorem 5.2
# ---------------------------------------------------------------------------


def has_unread_cycle(automaton: CrossingAutomaton) -> bool:
    """Is there a cycle in ``A″`` with no reading operation in any label?

    Such a cycle pumps tape ``b``'s content without consuming input —
    the "hard bidirectional output" violation.
    """
    arcs = [
        arc
        for arc in automaton.arcs
        if any(not summary.has_reading for summary in arc.summaries)
    ]
    return _has_cycle(arcs)


def has_unfinished_output_accept(
    automaton: CrossingAutomaton,
) -> frozenset[int]:
    """Unidirectional output tapes with an "easy" violation.

    Some accepting path contains a cleanup entry recorded with an
    unfinished output tape — the machine halted before printing that
    tape's ``⊣``.
    """
    easy: set[int] = set()
    for arc in automaton.arcs:
        for summary in arc.summaries:
            easy |= summary.easy_outputs
    return frozenset(easy)


def accepts_without_scanning_b(automaton: CrossingAutomaton) -> bool:
    """The "easy bidirectional output" check.

    Does some accepting path's last square (the arc entering the final
    state, reading ``⊣``) use only dancing/cleanup transitions?  Then
    ``b``'s right end was never truly inspected and longer contents are
    also accepted.
    """
    for arc in automaton.arcs:
        if arc.target == automaton.final and arc.read == RIGHT_END:
            if any(summary.all_overhead for summary in arc.summaries):
                return True
    return False


def _has_cycle(arcs: list[Arc]) -> bool:
    adjacency: dict = {}
    for arc in arcs:
        adjacency.setdefault(arc.source, set()).add(arc.target)
    visiting: set = set()
    done: set = set()

    def dfs(node) -> bool:
        stack = [(node, iter(adjacency.get(node, ())))]
        visiting.add(node)
        while stack:
            current, children = stack[-1]
            advanced = False
            for child in children:
                if child in visiting:
                    return True
                if child not in done:
                    visiting.add(child)
                    stack.append((child, iter(adjacency.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                visiting.discard(current)
                done.add(current)
                stack.pop()
        return False

    return any(node not in done and dfs(node) for node in list(adjacency))
