"""Bound-attainment witness machines from Theorem 5.2.

The theorem's limit functions are tight up to constants; the proof
exhibits:

* ``B_s`` (Eq. 8) — a unidirectional ``(k+1)``-FSA with an ``s``-state
  ring recognizing ``(w₁, …, w_k, a^{s(|w₁|+…+|w_k|+k)})``: the output
  attains the **linear** bound coefficient ``s``;
* ``B'_s`` — the variant whose odd ring states wind a bidirectional
  tape from ``⊢`` to ``⊣`` and whose even states rewind it,
  recognizing ``(w₁, …, w_k, a^{s(|w_k|+1)(|w₁|+…+|w_{k-1}|+k-1)})``:
  the output attains the **quadratic** bound.

Both are used by the limitation benchmark to reproduce the paper's
claimed bound shapes empirically.
"""

from __future__ import annotations

from repro.core.alphabet import LEFT_END, RIGHT_END, Alphabet
from repro.errors import ArityError
from repro.fsa.builder import MachineBuilder
from repro.fsa.machine import FSA


def linear_bound_witness(s: int, k: int, alphabet: Alphabet) -> FSA:
    """``B_s``: every transition of the ``s``-ring writes one ``a``.

    Tapes ``0 … k-1`` are inputs, tape ``k`` the output.  Only the
    ring-closing transitions read input, one tape at a time, so the
    output length is exactly ``s`` per possible reading move —
    ``s · Σ(nᵢ + 1)`` in total.
    """
    if s < 1 or k < 1:
        raise ArityError("B_s needs s >= 1 ring states and k >= 1 inputs")
    if "a" not in alphabet:
        raise ArityError("the witness writes 'a'; alphabet must contain it")
    arity = k + 1
    b = MachineBuilder(arity, alphabet, "start")

    def spec(value_at: dict[int, object], default) -> list:
        out = [default] * arity
        for tape, value in value_at.items():
            out[tape] = value
        return out

    # Step the output head off its ⊢ so each ring transition reads the
    # 'a' it accounts for; inputs stay — their ⊢-moves are the counted
    # reading operations (ρ = Σ(nᵢ+1) includes them).  Entering at the
    # ring-closing state makes the number of ring passes equal the
    # number of reading moves, i.e. exactly ρ.
    b.add("start", [LEFT_END] * arity, "close", spec({k: +1}, 0))
    for i in range(s):
        target = ("ring", i + 1) if i < s - 1 else "close"
        # every ring step writes one 'a' on the output tape
        b.add(
            ("ring", i),
            spec({k: "a"}, "*"),
            target,
            spec({k: +1}, 0),
        )
    # The ring-closing state consumes one input move (a single tape,
    # reading whatever is under its head, ⊢ included) and restarts.
    for tape in range(k):
        b.add(
            "close",
            spec({tape: [*alphabet.symbols, LEFT_END]}, "*"),
            ("ring", 0),
            spec({tape: +1}, 0),
        )
    # Accept once every input stands on ⊣ and the output is finished.
    b.add(
        "close",
        spec({k: RIGHT_END}, RIGHT_END),
        "accept",
        spec({}, 0),
    )
    b.final("accept")
    return b.build()


def quadratic_bound_witness(s: int, k: int, alphabet: Alphabet) -> FSA:
    """``B'_s``: odd ring states wind tape ``k-1`` across, even rewind.

    Tape ``k-1`` becomes bidirectional; each full wind/rewind multiplies
    the written output by ``|w_{k}|+2`` head movements, which is what
    pushes the attained bound from linear to quadratic (``s`` must be
    even, as in the paper).
    """
    if s < 2 or s % 2:
        raise ArityError("B'_s needs an even s >= 2")
    if k < 2:
        raise ArityError("B'_s needs at least two input tapes")
    base = linear_bound_witness(s, k, alphabet)
    b = MachineBuilder(base.arity, alphabet, base.start)
    b.finals.update(base.finals)
    wind_tape = k - 1
    for transition in base.transitions:
        if (
            transition.source == "close"
            and transition.moves[wind_tape] == +1
        ):
            # The wound tape is no longer a counted input: the ring
            # must not consume it (that is exactly what turns the
            # attained bound quadratic instead of keeping it linear).
            continue
        b.transitions.add(transition)
        b.extra_states.add(transition.source)
        b.extra_states.add(transition.target)

    def spec(value_at: dict[int, object], default) -> list:
        out = [default] * base.arity
        for tape, value in value_at.items():
            out[tape] = value
        return out

    for i in range(s):
        state = ("ring", i)
        if i % 2:
            # wind the tape rightward while writing
            b.add(
                state,
                spec({wind_tape: [*alphabet.symbols, LEFT_END], k: "a"}, "*"),
                state,
                spec({wind_tape: +1, k: +1}, 0),
            )
        else:
            # rewind it leftward while writing
            b.add(
                state,
                spec({wind_tape: [*alphabet.symbols, RIGHT_END], k: "a"}, "*"),
                state,
                spec({wind_tape: -1, k: +1}, 0),
            )
    return b.build()
