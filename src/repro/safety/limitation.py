"""The limitation problem (Definition 3.1) and its decision procedure.

``limits(A, inputs, outputs)`` decides whether bounding the input
tapes bounds the output tapes — the key to using an acceptor safely as
a string *production* device.  Following Theorem 5.2:

* **Unidirectional machines** — decidable by inspecting transition
  labels: the *easy* violation accepts without printing some output's
  trailing ``⊣``; the *hard* violation is a loop of non-reading
  transitions containing a writing transition.  Certified machines get
  a **linear** limit function ``|A| · Σ(nᵢ + 1)``.
* **Right-restricted machines** (one bidirectional tape ``b``) — the
  same questions are answered on the crossing automaton ``A″``
  (:mod:`repro.safety.crossing`); certified machines get a
  **quadratic** limit function ``|A″| · (n_b + 2) · Σ(nᵢ + 1)``.
* **Two or more bidirectional tapes** — undecidable in general
  (Theorem 5.1): :class:`LimitationError` is raised.

Machines produced by the Theorem 3.1 compiler satisfy properties 1-5,
which is what makes the transition-label inspection sound (every path
is realizable on the unidirectional tapes).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core.alphabet import RIGHT_END
from repro.errors import LimitationError
from repro.fsa.machine import FSA, Transition
from repro.safety.crossing import (
    CrossingAutomaton,
    accepts_without_scanning_b,
    build_crossing_automaton,
    has_unfinished_output_accept,
    has_unread_cycle,
)


@dataclass(frozen=True)
class LimitFunction:
    """A certified limit function ``W_A`` (Definition 3.1).

    ``W(n₁,…,n_k) = coefficient · ρ(n₁,…,n_k)`` where ``ρ`` is
    ``Σ(nᵢ+1)`` in the linear case and ``(max(n)+2) · Σ(nᵢ+1)`` in the
    quadratic (right-restricted) case, matching the shapes proved in
    Theorem 5.2.
    """

    coefficient: int
    quadratic: bool

    def __call__(self, *input_lengths: int) -> int:
        rho = sum(n + 1 for n in input_lengths) if input_lengths else 1
        if self.quadratic:
            rho *= max(input_lengths, default=0) + 2
        return self.coefficient * rho

    def describe(self) -> str:
        shape = "quadratic" if self.quadratic else "linear"
        return f"{self.coefficient}·ρ(n) ({shape})"


@dataclass(frozen=True)
class LimitationReport:
    """Outcome of a limitation decision."""

    limited: bool
    reason: str
    limit: LimitFunction | None = None
    crossing_size: int | None = None

    def bound(self, *input_lengths: int) -> int:
        if not self.limited or self.limit is None:
            raise LimitationError(f"no limit function: {self.reason}")
        return self.limit(*input_lengths)


# ---------------------------------------------------------------------------
# Unidirectional case
# ---------------------------------------------------------------------------


def _is_reading(transition: Transition, tapes: frozenset[int]) -> bool:
    return any(transition.moves[i] == +1 for i in tapes)


def _easy_unidirectional(
    fsa: FSA, output_tapes: frozenset[int]
) -> frozenset[int]:
    """Outputs whose trailing ``⊣`` some accepting transition skips.

    By properties 3-5 the transitions entering the final state are
    exactly the character combinations of accepting computations.
    """
    pruned = fsa.pruned()
    unfinished: set[int] = set()
    for final in pruned.finals:
        for transition in pruned.incoming(final):
            for tape in output_tapes:
                if transition.reads[tape] != RIGHT_END:
                    unfinished.add(tape)
    return frozenset(unfinished)


def _hard_unidirectional(
    fsa: FSA, input_tapes: frozenset[int], output_tapes: frozenset[int]
) -> bool:
    """A loop of non-reading transitions containing a writing one?"""
    pruned = fsa.pruned()
    non_reading = [
        t for t in pruned.transitions if not _is_reading(t, input_tapes)
    ]
    # Tarjan-free SCC via iterative Kosaraju on the non-reading subgraph.
    components = _strongly_connected(non_reading)
    for component in components:
        internal = [
            t
            for t in non_reading
            if t.source in component and t.target in component
        ]
        if len(component) > 1 or any(t.source == t.target for t in internal):
            if any(_is_reading(t, output_tapes) for t in internal):
                return True
    return False


def _strongly_connected(transitions: list[Transition]) -> list[set]:
    nodes: set = set()
    forward: dict = {}
    backward: dict = {}
    for t in transitions:
        nodes.add(t.source)
        nodes.add(t.target)
        forward.setdefault(t.source, []).append(t.target)
        backward.setdefault(t.target, []).append(t.source)
    order: list = []
    seen: set = set()
    for node in nodes:
        if node in seen:
            continue
        stack = [(node, iter(forward.get(node, ())))]
        seen.add(node)
        while stack:
            current, children = stack[-1]
            advanced = False
            for child in children:
                if child not in seen:
                    seen.add(child)
                    stack.append((child, iter(forward.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()
    components: list[set] = []
    assigned: set = set()
    for node in reversed(order):
        if node in assigned:
            continue
        component = {node}
        frontier = [node]
        assigned.add(node)
        while frontier:
            current = frontier.pop()
            for previous in backward.get(current, ()):
                if previous not in assigned:
                    assigned.add(previous)
                    component.add(previous)
                    frontier.append(previous)
        components.append(component)
    return components


def _decide_unidirectional(
    fsa: FSA, input_tapes: frozenset[int], output_tapes: frozenset[int]
) -> LimitationReport:
    unfinished = _easy_unidirectional(fsa, output_tapes)
    if unfinished:
        return LimitationReport(
            False,
            f"easy violation: outputs {sorted(unfinished)} can accept "
            "without reaching their right endmarker",
        )
    if _hard_unidirectional(fsa, input_tapes, output_tapes):
        return LimitationReport(
            False,
            "hard violation: a non-reading loop writes output",
        )
    return LimitationReport(
        True,
        "unidirectional machine with finished outputs and no writing "
        "non-reading loops",
        LimitFunction(max(fsa.size, 1), quadratic=False),
    )


# ---------------------------------------------------------------------------
# Right-restricted case
# ---------------------------------------------------------------------------


def _decide_right_restricted(
    fsa: FSA,
    tape_b: int,
    input_tapes: frozenset[int],
    output_tapes: frozenset[int],
    max_states: int,
) -> LimitationReport:
    crossing = build_crossing_automaton(
        fsa, tape_b, input_tapes, output_tapes, max_states=max_states
    )
    unfinished = has_unfinished_output_accept(crossing)
    if unfinished:
        return LimitationReport(
            False,
            f"easy violation: outputs {sorted(unfinished)} can accept "
            "without reaching their right endmarker",
            crossing_size=crossing.size(),
        )
    if tape_b in output_tapes:
        if accepts_without_scanning_b(crossing):
            return LimitationReport(
                False,
                "easy violation: the bidirectional output is accepted "
                "without its right end being scanned",
                crossing_size=crossing.size(),
            )
        if has_unread_cycle(crossing):
            return LimitationReport(
                False,
                "hard violation: the bidirectional output can be pumped "
                "without reading input",
                crossing_size=crossing.size(),
            )
    if output_tapes - {tape_b}:
        if _hard_with_bounded_b(
            fsa, tape_b, input_tapes, output_tapes - {tape_b}, crossing
        ):
            return LimitationReport(
                False,
                "hard violation: a unidirectional output is pumped while "
                "the bidirectional tape oscillates",
                crossing_size=crossing.size(),
            )
    coefficient = max(crossing.size(), fsa.size, 1)
    return LimitationReport(
        True,
        "right-restricted machine certified via the crossing automaton",
        LimitFunction(coefficient, quadratic=True),
        crossing_size=crossing.size(),
    )


def _hard_with_bounded_b(
    fsa: FSA,
    tape_b: int,
    input_tapes: frozenset[int],
    unidirectional_outputs: frozenset[int],
    crossing: CrossingAutomaton,
) -> bool:
    """The paper's case 4: b oscillates over a bounded segment while a
    unidirectional output grows.

    Searched as a configuration-space cycle containing a writing
    transition: tape ``b``'s content is enumerated up to the paper's
    bound (``|v|`` at most twice the arcs of ``A″``, capped for
    practicality), unidirectional inputs are folded into nondeterminism
    (a cycle cannot advance them), and outputs are free choices.
    """
    bound = min(2 * max(crossing.size(), 1), 6)
    for length in range(bound + 1):
        for content in product(fsa.alphabet.symbols, repeat=length):
            if _has_writing_cycle_on(
                fsa, tape_b, "".join(content), input_tapes, unidirectional_outputs
            ):
                return True
    return False


def _has_writing_cycle_on(
    fsa: FSA,
    tape_b: int,
    b_content: str,
    input_tapes: frozenset[int],
    output_tapes: frozenset[int],
) -> bool:
    """Cycle over (state, b-position) writing output, reading no input.

    Unidirectional tapes other than ``b`` cannot change position inside
    a cycle, so their squares' characters are free nondeterministic
    choices for non-advancing reads; any transition advancing an input
    breaks the cycle and is excluded.
    """
    from repro.fsa.machine import tape_symbol

    other = [
        i
        for i in range(fsa.arity)
        if i != tape_b
    ]
    edges: dict = {}
    writing_edges: set = set()
    for t in fsa.transitions:
        if any(t.moves[i] == +1 for i in input_tapes if i != tape_b):
            continue  # reading: cannot be part of an input-free cycle
        for position in range(len(b_content) + 2):
            if t.reads[tape_b] != tape_symbol(b_content, position):
                continue
            source = (t.source, position)
            target = (t.target, position + t.moves[tape_b])
            edges.setdefault(source, []).append(target)
            if any(t.moves[o] == +1 for o in output_tapes):
                writing_edges.add((source, target))
    # A writing edge inside a strongly connected component = pump.
    nodes = set(edges)
    for targets in edges.values():
        nodes.update(targets)
    index: dict = {}
    for source, targets in edges.items():
        for target in targets:
            index.setdefault(source, set()).add(target)

    def reachable(origin, goal) -> bool:
        seen = {origin}
        frontier = [origin]
        while frontier:
            node = frontier.pop()
            for nxt in index.get(node, ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    return any(
        reachable(target, source) or source == target
        for source, target in writing_edges
    )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def decide_limitation(
    fsa: FSA,
    input_tapes,
    output_tapes,
    max_states: int = 20000,
) -> LimitationReport:
    """Decide ``[inputs] ↝ [outputs]`` for ``fsa`` (Theorem 5.2).

    Raises :class:`LimitationError` when more than one tape is
    bidirectional — the undecidable territory of Theorem 5.1.
    """
    inputs = frozenset(input_tapes)
    outputs = frozenset(output_tapes)
    for tape in inputs | outputs:
        if not 0 <= tape < fsa.arity:
            raise LimitationError(f"tape {tape} outside 0..{fsa.arity - 1}")
    if inputs & outputs:
        raise LimitationError("input and output tapes must be disjoint")
    bidirectional = fsa.bidirectional_tapes()
    relevant_bidirectional = bidirectional & (inputs | outputs)
    if len(bidirectional) > 1:
        raise LimitationError(
            "limitation is undecidable beyond right-restricted machines "
            f"(bidirectional tapes: {sorted(bidirectional)}; Theorem 5.1)"
        )
    if not bidirectional:
        return _decide_unidirectional(fsa.pruned(), inputs, outputs)
    (tape_b,) = tuple(bidirectional)
    return _decide_right_restricted(
        fsa.pruned(), tape_b, inputs, outputs, max_states
    )


def formula_limitation(
    formula,
    input_variables,
    output_variables,
    alphabet,
    max_states: int = 20000,
    compiler=None,
) -> LimitationReport:
    """Limitation of a string formula: ``φ: [inputs] ↝ [outputs]``.

    Compiles the formula (Theorem 3.1) and decides on the machine; by
    property 1, variable directionality transfers to the tapes.
    ``compiler`` optionally replaces the default compiler — engine
    sessions pass their cached compile so limitation analysis and
    evaluation share machines.
    """
    from repro.fsa.compile import compile_string_formula

    compile_ = compiler if compiler is not None else compile_string_formula
    compiled = compile_(formula, alphabet)
    inputs = frozenset(
        compiled.tape_of(v) for v in input_variables
    )
    outputs = frozenset(
        compiled.tape_of(v) for v in output_variables
    )
    return decide_limitation(compiled.fsa, inputs, outputs, max_states)
