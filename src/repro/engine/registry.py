"""The engine registry: named evaluation strategies behind one protocol.

Historically ``Query.evaluate`` dispatched on the string literals
``"naive" | "planner" | "algebra"`` hardcoded in :mod:`repro.core.query`.
The registry replaces that with first-class :class:`Engine` objects:
the built-in strategies register themselves under their traditional
names (so every existing call site keeps working), and callers may
register their own engines or pass an engine object directly to
``Query.evaluate`` / ``QueryEngine.evaluate``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import EvaluationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import Database
    from repro.core.query import Query
    from repro.engine.session import QueryEngine


@runtime_checkable
class Engine(Protocol):
    """An evaluation strategy for alignment calculus queries.

    ``evaluate`` receives the session (:class:`QueryEngine`) that
    invoked it; strategies route all compilation, specialization,
    safety analysis and domain enumeration through the session's cached
    primitives so that repeated traffic shares work.
    """

    name: str

    def evaluate(
        self,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        *,
        length: int | None = None,
        domain: tuple[str, ...] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """Evaluate ``query`` on ``db``, returning the answer set."""
        ...  # pragma: no cover - protocol


_REGISTRY: dict[str, Engine] = {}


def register_engine(
    engine: Engine, *, name: str | None = None, replace: bool = False
) -> Engine:
    """Register ``engine`` under ``name`` (default: ``engine.name``).

    Raises :class:`EvaluationError` on a name collision unless
    ``replace=True``.  Returns the engine so the call can be used as a
    decorator-style one-liner on instances.
    """
    key = name if name is not None else getattr(engine, "name", None)
    if not key or not isinstance(key, str):
        raise EvaluationError(
            "an engine needs a non-empty string name to be registered"
        )
    if not callable(getattr(engine, "evaluate", None)):
        raise EvaluationError(
            f"engine {key!r} does not implement evaluate(query, db, session)"
        )
    if key in _REGISTRY and not replace:
        raise EvaluationError(
            f"engine {key!r} is already registered; pass replace=True "
            "to override it"
        )
    _REGISTRY[key] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove a registered engine (no-op for unknown names)."""
    _REGISTRY.pop(name, None)


def get_engine(spec: "str | Engine") -> Engine:
    """Resolve an engine name or pass an engine object through.

    Accepts the registered string names (``"naive"``, ``"planner"``,
    ``"algebra"``, ``"auto"``, plus anything added via
    :func:`register_engine`) or any object implementing the
    :class:`Engine` protocol.
    """
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]
        except KeyError:
            known = ", ".join(sorted(_REGISTRY)) or "none registered"
            raise EvaluationError(
                f"unknown engine {spec!r} (available: {known})"
            ) from None
    if callable(getattr(spec, "evaluate", None)) and getattr(
        spec, "name", None
    ):
        return spec
    raise EvaluationError(
        f"{spec!r} is neither a registered engine name nor an Engine object"
    )


def available_engines() -> tuple[str, ...]:
    """The registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))
