"""The built-in evaluation strategies, registered under their names.

Each strategy implements the :class:`~repro.engine.registry.Engine`
protocol and routes its machinery through the invoking session so that
compiled machines, specializations, limit reports and ``Σ^{<=l}``
enumerations are shared across calls:

Every strategy consumes the session's normalized
:class:`~repro.ir.plan.QueryPlan` (``session.query_plan``):

* ``naive``    — the reference model checker over an explicit domain,
  evaluating the plan's *simplified* formula;
* ``planner``  — executes the plan's conjunctive branches (join steps
  probe the relation storage's n-gram index for pushed-down selection
  factors when one is available); raises when the plan degraded to a
  naive fallback;
* ``algebra``  — Theorem 4.2 translation rewritten by the
  :mod:`repro.ir.rewrite` passes, then expression evaluation
  (sharding its selections across workers when configured);
* ``parallel`` — the process-pool layer of :mod:`repro.parallel`:
  plannable queries shard their generator runs branch-by-branch,
  everything else shards the naive candidate space — the answer set
  is identical to the sequential engines for every worker and shard
  count;
* ``auto``     — plan-first with per-branch strategy choice: branches
  whose cost estimate clears :data:`AUTO_PARALLEL_THRESHOLD` run on
  the worker pool, cheap branches stay in-process.

When a plan's root is a :class:`~repro.ir.plan.NaivePlan`, the engine
that actually performs the fallback work calls
``session.note_rejection`` — exactly once per evaluation — so silent
naive fallbacks are observable in ``--stats`` and as
``plan.reject.<reason>`` counters.

Sharding-capable strategies expose ``configured(workers=…, shards=…)``
returning a parameterized copy; ``QueryEngine.evaluate(workers=…)``
uses that hook, so unconfigured strategies keep working untouched.

Orthogonally to the strategy choice,
``QueryEngine.evaluate(materialize=True)`` keeps a
:class:`~repro.delta.MaterializedAnswer` per (query, database
version): re-evaluation at an unchanged version bypasses every
strategy with a version-vector lookup, and
``QueryEngine.apply_delta`` maintains the stored answer branch by
branch.  The answer set never depends on the flag — queries whose
plan degrades to a naive root simply fall through to the strategy
path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.semantics import evaluate_naive
from repro.core.syntax import free_variables
from repro.engine.registry import register_engine
from repro.errors import AssignmentError, EvaluationError
from repro.ir.execute import execute_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import Database
    from repro.core.query import Query
    from repro.engine.session import QueryEngine
    from repro.parallel.executor import ParallelExecutor
    from repro.parallel.tasks import ChaosPolicy

#: Estimated branch cost (and, for explicit truncations, candidate-
#: space size ``|domain|^k``) above which the ``auto`` strategy routes
#: work to the ``parallel`` engine, provided more than one worker is
#: available.
AUTO_PARALLEL_THRESHOLD = 2048


class NaiveEngine:
    """Brute-force evaluation over ``Σ^{<=l}`` or an explicit domain."""

    name = "naive"

    def evaluate(
        self,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        *,
        length: int | None = None,
        domain: tuple[str, ...] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """Check every candidate head tuple against the reference semantics.

        Args:
            query: The calculus query to evaluate.
            db: The database instance.
            session: The invoking session (supplies the certified
                length and the memoized domain).
            length: Optional explicit truncation bound.
            domain: Optional explicit candidate domain (overrides
                ``length``).

        Returns:
            The answer set as a frozenset of head tuples.
        """
        tracer = session.tracer
        if domain is None:
            if length is None:
                length = session.certified_length(query, db)
            domain = session.domain_for(query.alphabet, length)
        cap = (
            length
            if length is not None
            else max((len(s) for s in domain), default=0)
        )
        plan = session.query_plan(query, db, cap)
        session.note_rejection(plan)
        tracer.gauge(
            "naive.candidate_space", len(domain) ** len(query.head)
        )
        with tracer.span(
            "execute.naive", stage="execute", domain=len(domain)
        ):
            return evaluate_naive(plan.simplified, query.head, db, domain)


class PlannerEngine:
    """The plan executor; raises for shapes the normalizer rejects."""

    name = "planner"

    def evaluate(
        self,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        *,
        length: int | None = None,
        domain: tuple[str, ...] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """Execute the normalized plan against the session's caches.

        Args:
            query: The calculus query to evaluate.
            db: The database instance.
            session: The invoking session (plan/compile/generate caches).
            length: Optional explicit generation cap.
            domain: Optional explicit domain; only its maximum string
                length is used (as the cap).

        Returns:
            The answer set as a frozenset of head tuples.

        Raises:
            EvaluationError: If the plan degraded to a naive fallback
                (the rejection reason is noted and included).
        """
        cap = length
        if cap is None:
            if domain is not None:
                cap = max((len(s) for s in domain), default=0)
            else:
                cap = session.certified_length(query, db)
        plan = session.query_plan(query, db, cap)
        reason = plan.fallback_reason
        if reason is not None:
            session.note_rejection(plan)
            raise EvaluationError(
                "query shape not supported by the conjunctive planner "
                f"({reason})"
            )
        return execute_plan(
            plan, db, query.alphabet, cap, session=session, domain=domain
        )


class AlgebraEngine:
    """Theorem 4.2: translate once (cached), evaluate the expression.

    When configured with ``workers > 1`` the expression's selections —
    both generative ``σ_A(F × (Σ*)^n)`` row loops and plain acceptance
    filters — are sharded across the process pool; the relational
    operators stay in-process (they are unions/products over already
    materialized sets).
    """

    name = "algebra"

    def __init__(
        self, workers: int | None = None, shards: int | None = None
    ) -> None:
        self.workers = workers
        self.shards = shards
        self.last_report = None

    def configured(
        self, workers: int | None = None, shards: int | None = None
    ) -> "AlgebraEngine":
        """Return a copy parameterized with worker/shard counts.

        Args:
            workers: Worker-process count, or ``None`` to keep the
                current setting.
            shards: Shard-count override, or ``None`` to keep the
                current setting.

        Returns:
            A new :class:`AlgebraEngine` with the merged settings.
        """
        return AlgebraEngine(
            workers if workers is not None else self.workers,
            shards if shards is not None else self.shards,
        )

    def _executor(self, session: "QueryEngine") -> "ParallelExecutor | None":
        if self.workers is None and self.shards is None:
            return None
        from repro.parallel.executor import ParallelExecutor
        from repro.parallel.sharding import ShardPlanner

        return ParallelExecutor(
            self.workers,
            planner=ShardPlanner(self.shards),
            tracer=session.tracer,
        )

    def evaluate(
        self,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        *,
        length: int | None = None,
        domain: tuple[str, ...] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """Translate + optimize the query (cached), then evaluate.

        Args:
            query: The calculus query to evaluate.
            db: The database instance.
            session: The invoking session (translation and rewrite
                caches, tracer).
            length: Optional explicit evaluation bound.
            domain: Optional explicit domain; only its maximum string
                length is used (as the bound).

        Returns:
            The answer set as a frozenset of head tuples.
        """
        from repro.algebra.evaluate import evaluate_expression

        expression, _ = session.optimized_translation(query)
        bound = length
        if bound is None:
            if domain is not None:
                bound = max((len(s) for s in domain), default=0)
            else:
                bound = session.certified_length(query, db)
        executor = self._executor(session)
        try:
            return evaluate_expression(
                expression, db, length=bound, session=session,
                executor=executor,
            )
        finally:
            if executor is not None:
                self.last_report = executor.report
                session.stats.record_parallel(executor.report)


class ParallelEngine:
    """Process-pool sharded evaluation (:mod:`repro.parallel`).

    Mirrors the ``auto`` selection policy so its answers line up with
    the sequential engines tuple-for-tuple:

    * planner-shaped queries (no explicit ``domain``) run through the
      conjunctive planner with the per-binding generator runs sharded
      across workers;
    * everything else shards the naive candidate space ``domain^k``
      into deterministic ranges, each worker filtering its slice
      through the reference semantics.

    Worker/shard counts never change the answer set: shards partition
    the candidate space, and the union of the partial answers is the
    sequential answer by construction.  Every evaluation leaves an
    :class:`~repro.parallel.executor.ExecutionReport` on
    ``last_report`` and in ``session.stats``.
    """

    name = "parallel"

    def __init__(
        self,
        workers: int | None = None,
        shards: int | None = None,
        *,
        timeout: float | None = None,
        max_retries: int = 2,
        chaos: "ChaosPolicy | None" = None,
        min_parallel_items: int | None = None,
    ) -> None:
        self.workers = workers
        self.shards = shards
        self.timeout = timeout
        self.max_retries = max_retries
        self.chaos = chaos
        self.min_parallel_items = min_parallel_items
        self.last_report = None

    def configured(
        self,
        workers: int | None = None,
        shards: int | None = None,
        **overrides,
    ) -> "ParallelEngine":
        """Return a copy parameterized with worker/shard/robustness settings.

        Args:
            workers: Worker-process count, or ``None`` to keep the
                current setting.
            shards: Shard-count override, or ``None`` to keep the
                current setting.
            **overrides: Optional ``timeout``, ``max_retries``,
                ``chaos``, ``min_parallel_items`` replacements.

        Returns:
            A new :class:`ParallelEngine` with the merged settings.
        """
        return ParallelEngine(
            workers if workers is not None else self.workers,
            shards if shards is not None else self.shards,
            timeout=overrides.get("timeout", self.timeout),
            max_retries=overrides.get("max_retries", self.max_retries),
            chaos=overrides.get("chaos", self.chaos),
            min_parallel_items=overrides.get(
                "min_parallel_items", self.min_parallel_items
            ),
        )

    def _executor(self, session: "QueryEngine") -> "ParallelExecutor":
        from repro.parallel.executor import (
            DEFAULT_MIN_PARALLEL_ITEMS,
            ParallelExecutor,
        )
        from repro.parallel.sharding import ShardPlanner

        return ParallelExecutor(
            self.workers,
            timeout=self.timeout,
            max_retries=self.max_retries,
            chaos=self.chaos,
            min_parallel_items=(
                self.min_parallel_items
                if self.min_parallel_items is not None
                else DEFAULT_MIN_PARALLEL_ITEMS
            ),
            planner=ShardPlanner(self.shards),
            tracer=session.tracer,
        )

    def evaluate(
        self,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        *,
        length: int | None = None,
        domain: tuple[str, ...] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """Evaluate with sharded workers, planner-first then naive.

        Args:
            query: The calculus query to evaluate.
            db: The database instance.
            session: The invoking session (caches, stats, tracer).
            length: Optional explicit truncation bound.
            domain: Optional explicit candidate domain.

        Returns:
            The answer set — identical to the sequential engines for
            every worker and shard count.
        """
        executor = self._executor(session)
        explicit_domain = domain is not None
        if length is None and domain is None:
            length = session.certified_length(query, db)
        try:
            result = None
            formula = query.formula
            if not explicit_domain:
                # Explicit domains carry their own semantics; the plan
                # route's padding assumes Σ^{<=l} truncation, so only
                # the length-bounded regime goes through it.
                plan = session.query_plan(query, db, length)
                if plan.fallback_reason is None:
                    result = execute_plan(
                        plan,
                        db,
                        query.alphabet,
                        length,
                        session=session,
                        executor=executor,
                    )
                else:
                    session.note_rejection(plan)
                    formula = plan.simplified
            if result is None:
                if domain is None:
                    # Only the naive fallback materializes Σ^{<=l};
                    # plannable queries never pay for it.
                    domain = session.domain_for(query.alphabet, length)
                result = self._naive_sharded(
                    query, db, domain, executor, formula
                )
        finally:
            self.last_report = executor.report
            session.stats.record_parallel(executor.report)
        return result

    def _naive_sharded(
        self,
        query: "Query",
        db: "Database",
        domain: tuple[str, ...],
        executor: "ParallelExecutor",
        formula=None,
    ) -> frozenset[tuple[str, ...]]:
        """Shard the candidate space ``domain^k`` across the pool.

        Args:
            query: The calculus query (its head fixes the tuple width).
            db: The database instance.
            domain: The explicit candidate domain.
            executor: The executor sharding and running the tasks.
            formula: The formula each shard checks; defaults to the
                query's own (the plan route passes its simplified
                form, which has the same answers).

        Returns:
            The union of the per-shard answer sets.

        Raises:
            AssignmentError: If the formula has free variables missing
                from the head (the candidate space cannot cover them).
        """
        from repro.parallel.tasks import NaiveShardTask

        if formula is None:
            formula = query.formula
        missing = free_variables(formula) - set(query.head)
        if missing:
            raise AssignmentError(
                f"free variables {sorted(missing)} are not in the query head"
            )
        width = len(query.head)
        total = len(domain) ** width if width else 1
        executor.tracer.gauge("naive.candidate_space", total)
        shards = executor.plan(total)
        tasks = [
            NaiveShardTask(shard, formula, query.head, db, domain)
            for shard in shards
        ]
        shard_results = executor.run(tasks)
        answers: set[tuple[str, ...]] = set()
        with executor.tracer.span(
            "fold.naive", stage="fold", shards=len(shard_results)
        ):
            for partial in shard_results:
                answers.update(partial)
        return frozenset(answers)


class AutoEngine:
    """Plan-first selection with per-branch strategy choice.

    With no explicit ``length``/``domain`` the certified limit function
    is derived and the normalized plan executed — certified bounds are
    sound but loose, and only generation-based evaluation stays
    practical under them.  When more than one worker is available each
    conjunctive branch picks its own executor: branches whose cost
    estimate clears :data:`AUTO_PARALLEL_THRESHOLD` shard their
    generator runs across the pool, cheap branches stay in-process.
    Plans that degraded to a naive fallback delegate to the
    ``parallel`` or ``naive`` strategy (which note the rejection); with
    an explicit truncation the naive reference semantics is used
    directly, upgraded to ``parallel`` when the candidate space clears
    the same threshold — so ``auto`` never changes an answer, only
    where it is computed.
    """

    name = "auto"

    def __init__(
        self, workers: int | None = None, shards: int | None = None
    ) -> None:
        self.workers = workers
        self.shards = shards

    def configured(
        self, workers: int | None = None, shards: int | None = None
    ) -> "AutoEngine":
        """Return a copy parameterized with worker/shard counts.

        Args:
            workers: Worker-process count, or ``None`` to keep the
                current setting.
            shards: Shard-count override, or ``None`` to keep the
                current setting.

        Returns:
            A new :class:`AutoEngine` with the merged settings.
        """
        return AutoEngine(
            workers if workers is not None else self.workers,
            shards if shards is not None else self.shards,
        )

    def _effective_workers(self) -> int:
        if self.workers is not None:
            return self.workers
        from repro.parallel.executor import default_worker_count

        return default_worker_count()

    def _parallel(self) -> ParallelEngine:
        return PARALLEL.configured(
            workers=self._effective_workers(), shards=self.shards
        )

    def _execute_plan(
        self,
        plan,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        cap: int,
    ) -> frozenset[tuple[str, ...]]:
        """Run a conjunctive plan, choosing an executor per branch.

        Branches whose cost estimate clears
        :data:`AUTO_PARALLEL_THRESHOLD` shard their generator runs
        across the worker pool; the rest run in-process.  The pool is
        created only when some branch actually qualifies.

        Args:
            plan: The normalized plan (conjunctive root).
            query: The calculus query being evaluated.
            db: The database instance.
            session: The invoking session.
            cap: The certified generation bound.

        Returns:
            The answer set.
        """
        workers = self._effective_workers()
        expensive = workers > 1 and any(
            branch.est_cost >= AUTO_PARALLEL_THRESHOLD
            for branch in plan.branches()
        )
        if not expensive:
            return execute_plan(
                plan, db, query.alphabet, cap, session=session
            )
        from repro.parallel.executor import ParallelExecutor
        from repro.parallel.sharding import ShardPlanner

        executor = ParallelExecutor(
            workers, planner=ShardPlanner(self.shards), tracer=session.tracer
        )
        try:
            return execute_plan(
                plan,
                db,
                query.alphabet,
                cap,
                session=session,
                executor_for=lambda branch: (
                    executor
                    if branch.est_cost >= AUTO_PARALLEL_THRESHOLD
                    else None
                ),
            )
        finally:
            session.stats.record_parallel(executor.report)

    def evaluate(
        self,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        *,
        length: int | None = None,
        domain: tuple[str, ...] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """Route the query to the cheapest equivalent strategy.

        Args:
            query: The calculus query to evaluate.
            db: The database instance.
            session: The invoking session.
            length: Optional explicit truncation bound.
            domain: Optional explicit candidate domain.

        Returns:
            The answer set — the same set every routing choice yields.
        """
        if domain is None and length is None:
            cap = session.certified_length(query, db)
            plan = session.query_plan(query, db, cap)
            if plan.fallback_reason is None:
                return self._execute_plan(plan, query, db, session, cap)
            if self._effective_workers() > 1:
                # The parallel strategy notes the rejection itself.
                return self._parallel().evaluate(query, db, session)
            length = cap
        if self._effective_workers() > 1:
            pool = (
                domain
                if domain is not None
                else session.domain_for(query.alphabet, length)
            )
            total = (
                len(pool) ** len(query.head) if query.head else 1
            )
            session.tracer.gauge("auto.candidate_space", total)
            if total >= AUTO_PARALLEL_THRESHOLD:
                return self._parallel().evaluate(
                    query, db, session, length=length, domain=domain
                )
        return NAIVE.evaluate(
            query, db, session, length=length, domain=domain
        )


NAIVE = NaiveEngine()
PLANNER = PlannerEngine()
ALGEBRA = AlgebraEngine()
PARALLEL = ParallelEngine()
AUTO = AutoEngine()


def register_default_engines() -> None:
    """(Re-)register the built-in strategies under their names."""
    for engine in (NAIVE, PLANNER, ALGEBRA, PARALLEL, AUTO):
        register_engine(engine, replace=True)


register_default_engines()
