"""The built-in evaluation strategies, registered under their names.

Each strategy implements the :class:`~repro.engine.registry.Engine`
protocol and routes its machinery through the invoking session so that
compiled machines, specializations, limit reports and ``Σ^{<=l}``
enumerations are shared across calls:

* ``naive``   — the reference model checker over an explicit domain;
* ``planner`` — the conjunctive planner (joins, then generation);
* ``algebra`` — Theorem 4.2 translation, then expression evaluation;
* ``auto``    — planner-first with naive fallback when no explicit
  truncation length is given (the selection policy previously
  hardcoded inside ``Query.evaluate``), plain naive otherwise so the
  answer is always the truncation semantics ``⟦φ⟧^l_db`` verbatim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.planner import evaluate_conjunctive
from repro.core.semantics import evaluate_naive
from repro.engine.registry import register_engine
from repro.errors import EvaluationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import Database
    from repro.core.query import Query
    from repro.engine.session import QueryEngine


class NaiveEngine:
    """Brute-force evaluation over ``Σ^{<=l}`` or an explicit domain."""

    name = "naive"

    def evaluate(
        self,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        *,
        length: int | None = None,
        domain: tuple[str, ...] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        if domain is None:
            if length is None:
                length = session.certified_length(query, db)
            domain = session.domain_for(query.alphabet, length)
        return evaluate_naive(query.formula, query.head, db, domain)


class PlannerEngine:
    """The conjunctive planner; raises for unsupported query shapes."""

    name = "planner"

    def evaluate(
        self,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        *,
        length: int | None = None,
        domain: tuple[str, ...] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        cap = length
        if cap is None:
            if domain is not None:
                cap = max((len(s) for s in domain), default=0)
            else:
                cap = session.certified_length(query, db)
        planned = evaluate_conjunctive(
            query.formula, query.head, db, query.alphabet, cap, session=session
        )
        if planned is None:
            raise EvaluationError(
                "query shape not supported by the conjunctive planner"
            )
        return planned


class AlgebraEngine:
    """Theorem 4.2: translate once (cached), evaluate the expression."""

    name = "algebra"

    def evaluate(
        self,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        *,
        length: int | None = None,
        domain: tuple[str, ...] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        from repro.algebra.evaluate import evaluate_expression

        expression = session.translation(query)
        bound = length
        if bound is None:
            if domain is not None:
                bound = max((len(s) for s in domain), default=0)
            else:
                bound = session.certified_length(query, db)
        return evaluate_expression(
            expression, db, length=bound, session=session
        )


class AutoEngine:
    """Planner-first selection with naive fallback.

    With no explicit ``length``/``domain`` the certified limit function
    is derived and the planner tried first — certified bounds are sound
    but loose, and only generation-based evaluation stays practical
    under them.  With an explicit truncation the naive reference
    semantics is used directly, so ``auto`` never changes an answer.
    """

    name = "auto"

    def evaluate(
        self,
        query: "Query",
        db: "Database",
        session: "QueryEngine",
        *,
        length: int | None = None,
        domain: tuple[str, ...] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        if domain is None and length is None:
            cap = session.certified_length(query, db)
            planned = evaluate_conjunctive(
                query.formula,
                query.head,
                db,
                query.alphabet,
                cap,
                session=session,
            )
            if planned is not None:
                return planned
            length = cap
        return NAIVE.evaluate(
            query, db, session, length=length, domain=domain
        )


NAIVE = NaiveEngine()
PLANNER = PlannerEngine()
ALGEBRA = AlgebraEngine()
AUTO = AutoEngine()


def register_default_engines() -> None:
    """(Re-)register the built-in strategies under their names."""
    for engine in (NAIVE, PLANNER, ALGEBRA, AUTO):
        register_engine(engine, replace=True)


register_default_engines()
