"""The query engine layer: sessions, strategies, and the registry.

This package makes repeated and batched query traffic the fast path:

* :class:`QueryEngine` — a session object owning per-artifact caches
  (compiled k-FSAs, specializations, generated answer sets, algebra
  translations, limit reports) keyed by structural formula identity,
  with hit/miss instrumentation, plus ``evaluate`` / ``evaluate_many``
  entry points.
* The **engine registry** — :func:`register_engine` /
  :func:`get_engine` over the :class:`Engine` protocol, replacing the
  stringly-typed dispatch that used to live inside ``Query.evaluate``.
  The built-ins ``naive``, ``planner``, ``algebra``, ``parallel``
  and ``auto`` are registered on import.

``Query.evaluate`` routes through :func:`default_engine`, the lazily
created process-wide session, so plain library use gets artifact reuse
for free; heavy workloads should hold their own sessions.
"""

from repro.engine.caches import CacheStats, EngineStats, KeyedCache
from repro.engine.registry import (
    Engine,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.engine.strategies import (
    AlgebraEngine,
    AutoEngine,
    NaiveEngine,
    ParallelEngine,
    PlannerEngine,
    register_default_engines,
)
from repro.engine.session import (
    QueryEngine,
    default_engine,
    set_default_engine,
)

__all__ = [
    "AlgebraEngine",
    "AutoEngine",
    "CacheStats",
    "Engine",
    "EngineStats",
    "KeyedCache",
    "NaiveEngine",
    "ParallelEngine",
    "PlannerEngine",
    "QueryEngine",
    "available_engines",
    "default_engine",
    "get_engine",
    "register_default_engines",
    "register_engine",
    "set_default_engine",
    "unregister_engine",
]
