"""Instrumented caches backing a :class:`~repro.engine.QueryEngine`.

Every compiled artifact the engine reuses — Theorem 3.1 machines,
compiled simulation kernels (:mod:`repro.fsa.kernel`), Lemma 3.1
specializations, generated answer sets, Theorem 4.2 algebra
translations, Section 5 limit reports — lives in a :class:`KeyedCache`
keyed by *structural* identity: formulae, alphabets and machines are
frozen values, so two independently constructed but equal formulae
share one cache entry.  Each cache counts hits and misses and accounts
the wall-clock time spent computing misses, so benchmarks can assert
reuse instead of guessing at it.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss counters plus time spent computing misses."""

    hits: int = 0
    misses: int = 0
    seconds: float = 0.0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float | int]:
        """A plain-dict view: hits, misses, hit_rate, miss seconds.

        Returns:
            A JSON-friendly dict with the counter values (``hit_rate``
            rounded to four decimals) plus the invalidation count.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "seconds": self.seconds,
            "invalidated": self.invalidated,
        }


class KeyedCache:
    """A memo table with hit/miss instrumentation and optional bounding.

    ``max_entries`` bounds memory for caches whose values can be large
    (generated answer sets); eviction is oldest-first, which is enough
    for the repeated-query traffic the engine targets.  ``None`` values
    are cached like any other result (limit reports legitimately derive
    to "no bound certifiable").

    Entries may carry *relation dependencies* — the ``(name, version)``
    pairs of the database relations they were computed against — via
    the ``depends`` argument of :meth:`get_or_compute` / :meth:`store`.
    :meth:`invalidate_relations` then evicts exactly the entries whose
    dependencies intersect an updated relation set, so a delta to one
    relation leaves entries for every other relation warm.  Entries
    stored without dependencies (compiled machines, specializations —
    pure functions of the formula) are never invalidated.
    """

    __slots__ = ("name", "stats", "_store", "_max_entries", "_depends")

    def __init__(self, name: str, max_entries: int | None = None) -> None:
        self.name = name
        self.stats = CacheStats()
        self._store: dict[Hashable, Any] = {}
        self._max_entries = max_entries
        self._depends: dict[Hashable, tuple[tuple[str, int], ...]] = {}

    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        depends: tuple[tuple[str, int], ...] | None = None,
    ) -> Any:
        """Return the cached value for ``key``, computing it on a miss.

        Args:
            key: The (hashable, structural) cache key.
            compute: Zero-argument callable producing the value; its
                wall-clock time is accounted as miss seconds.
            depends: Optional ``(relation, version)`` dependencies
                recorded on a miss, consumed by
                :meth:`invalidate_relations`.

        Returns:
            The cached or freshly computed value.
        """
        value = self._store.get(key, _MISSING)
        if value is not _MISSING:
            self.stats.hits += 1
            return value
        started = perf_counter()
        value = compute()
        self.stats.seconds += perf_counter() - started
        self.stats.misses += 1
        self._insert(key, value, depends)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` without computing on a miss.

        A present key counts as a hit; an absent key counts nothing —
        the caller is expected to come back through
        :meth:`get_or_compute` or :meth:`store` with the real value.
        Used by the parallel layer to split "served from cache" from
        "dispatched to a worker" before any work is shipped.
        """
        value = self._store.get(key, _MISSING)
        if value is _MISSING:
            return default
        self.stats.hits += 1
        return value

    def store(
        self,
        key: Hashable,
        value: Any,
        seconds: float = 0.0,
        depends: tuple[tuple[str, int], ...] | None = None,
    ) -> Any:
        """Insert an externally computed value (a worker's result).

        Accounted as a miss — the value *was* computed, just not by
        this process — with ``seconds`` of compute time attributed.
        Re-storing an existing key refreshes the value (and its
        recorded dependencies).
        """
        if key not in self._store:
            self.stats.misses += 1
            self.stats.seconds += seconds
        self._insert(key, value, depends)
        return value

    def _insert(
        self,
        key: Hashable,
        value: Any,
        depends: tuple[tuple[str, int], ...] | None,
    ) -> None:
        if (
            self._max_entries is not None
            and key not in self._store
            and len(self._store) >= self._max_entries
        ):
            evicted = next(iter(self._store))
            self._store.pop(evicted)
            self._depends.pop(evicted, None)
        self._store[key] = value
        if depends:
            self._depends[key] = depends
        else:
            self._depends.pop(key, None)

    def invalidate_relations(self, names: Iterable[str]) -> int:
        """Evict every entry depending on any relation in ``names``.

        Args:
            names: The updated relation symbols.

        Returns:
            The number of entries evicted (also accumulated onto
            ``stats.invalidated``).
        """
        updated = set(names)
        if not updated or not self._depends:
            return 0
        doomed = [
            key
            for key, depends in self._depends.items()
            if any(name in updated for name, _ in depends)
        ]
        for key in doomed:
            self._store.pop(key, None)
            self._depends.pop(key, None)
        self.stats.invalidated += len(doomed)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def clear(self) -> None:
        """Drop every entry (the stats are deliberately kept)."""
        self._store.clear()
        self._depends.clear()


@dataclass
class EngineStats:
    """Aggregated instrumentation for one :class:`QueryEngine` session."""

    caches: dict[str, CacheStats] = field(default_factory=dict)
    evaluations: dict[str, int] = field(default_factory=dict)
    engine_seconds: dict[str, float] = field(default_factory=dict)
    parallel: dict[str, float | int] = field(default_factory=dict)
    rejects: dict[str, int] = field(default_factory=dict)

    def register_cache(self, cache: KeyedCache) -> KeyedCache:
        """Adopt ``cache``'s stats into this session's accounting.

        Args:
            cache: The cache whose :class:`CacheStats` to track.

        Returns:
            The cache itself, for chaining at construction sites.
        """
        self.caches[cache.name] = cache.stats
        return cache

    def record_evaluation(self, engine_name: str, seconds: float) -> None:
        """Count one engine evaluation and its wall-clock time.

        Args:
            engine_name: The registry name of the strategy that ran.
            seconds: The evaluation's wall-clock duration.
        """
        self.evaluations[engine_name] = self.evaluations.get(engine_name, 0) + 1
        self.engine_seconds[engine_name] = (
            self.engine_seconds.get(engine_name, 0.0) + seconds
        )

    def record_reject(self, reason: str) -> None:
        """Count one planner rejection (fallback to naive evaluation).

        Args:
            reason: The stable rejection reason from the plan's
                :class:`~repro.ir.plan.NaivePlan` root.
        """
        self.rejects[reason] = self.rejects.get(reason, 0) + 1

    def record_parallel(self, report: Any) -> None:
        """Fold one execution report into the parallel accounting.

        Args:
            report: An :class:`~repro.parallel.executor
                .ExecutionReport` (anything with its ``snapshot()``).
        """
        snapshot = report.snapshot()
        totals = self.parallel
        totals["runs"] = totals.get("runs", 0) + 1
        if snapshot.get("mode") == "parallel":
            totals["pooled_runs"] = totals.get("pooled_runs", 0) + 1
        totals["workers"] = max(
            totals.get("workers", 1), snapshot.get("workers", 1)
        )
        for key in (
            "shards_planned",
            "shards_completed",
            "retries",
            "resplits",
            "timeouts",
            "failures",
            "wall_seconds",
            "task_seconds",
            "cache_hits",
        ):
            totals[key] = totals.get(key, 0) + snapshot.get(key, 0)

    def snapshot(self) -> dict[str, Any]:
        """A plain-data view, stable enough for tests and CLI output."""
        return {
            "caches": {
                name: stats.snapshot() for name, stats in self.caches.items()
            },
            "evaluations": dict(self.evaluations),
            "engine_seconds": dict(self.engine_seconds),
            "parallel": dict(self.parallel),
            "rejects": dict(self.rejects),
        }

    def describe(self) -> str:
        """The human-readable cache/engine/parallel lines of ``--stats``.

        Returns:
            One line per cache, per engine, and (when any parallel run
            happened) one parallel-totals line.
        """
        lines = []
        for name in sorted(self.caches):
            stats = self.caches[name]
            line = (
                f"cache {name:<10} hits={stats.hits:<6} "
                f"misses={stats.misses:<6} hit_rate={stats.hit_rate:.0%} "
                f"miss_seconds={stats.seconds:.4f}"
            )
            if stats.invalidated:
                line += f" invalidated={stats.invalidated}"
            lines.append(line)
        for name in sorted(self.evaluations):
            lines.append(
                f"engine {name:<9} runs={self.evaluations[name]:<6} "
                f"seconds={self.engine_seconds.get(name, 0.0):.4f}"
            )
        for reason in sorted(self.rejects):
            lines.append(
                f"reject {reason:<20} count={self.rejects[reason]}"
            )
        if self.parallel.get("runs"):
            totals = self.parallel
            lines.append(
                "parallel runs={runs} shards={done}/{planned} "
                "retries={retries} resplits={resplits} timeouts={timeouts} "
                "cache_hits={cache_hits} wall={wall:.4f}s cpu={cpu:.4f}s".format(
                    runs=totals.get("runs", 0),
                    done=totals.get("shards_completed", 0),
                    planned=totals.get("shards_planned", 0),
                    retries=totals.get("retries", 0),
                    resplits=totals.get("resplits", 0),
                    timeouts=totals.get("timeouts", 0),
                    cache_hits=totals.get("cache_hits", 0),
                    wall=totals.get("wall_seconds", 0.0),
                    cpu=totals.get("task_seconds", 0.0),
                )
            )
        return "\n".join(lines)
