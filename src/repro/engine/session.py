"""The :class:`QueryEngine` session: compiled-artifact reuse + batching.

Every evaluation route in the library bottoms out in a handful of
expensive, *pure* derivations — the Theorem 3.1 compiler, Lemma 3.1
specialization, machine generation (Definition 3.1), the Theorem 4.2
algebra translation, and the Section 5 limit-report analysis.  All of
them are functions of immutable values (formulae, alphabets,
machines), so a session that has answered a query once can answer the
same — or a structurally overlapping — query again from its caches.

A ``QueryEngine`` owns one instrumented cache per artifact kind, keyed
by structural identity, plus a shared ``Σ^{<=l}`` domain pool whose
by-length enumeration order makes every shorter domain a prefix of a
longer one.  ``evaluate`` routes a single query through a registered
strategy; ``evaluate_many`` evaluates a batch against one database,
sharing limit reports, generator machines and the domain enumeration
across the whole batch.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from time import perf_counter
from typing import TYPE_CHECKING

from repro.core.alphabet import Alphabet
from repro.core.database import Database
from repro.engine.caches import EngineStats, KeyedCache
from repro.engine.registry import Engine, get_engine
from repro.errors import SafetyError
from repro.observability import (
    NULL_TRACER,
    TraceReport,
    activate,
    current_tracer,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.expressions import Expression
    from repro.core.query import Query
    from repro.core.syntax import Formula, StringFormula, Var
    from repro.fsa.compile import CompiledFormula
    from repro.fsa.machine import FSA
    from repro.observability import NullTracer, Tracer
    from repro.safety.domain_independence import SafetyReport


class QueryEngine:
    """A query-evaluation session with per-artifact caches.

    >>> from repro.core.alphabet import AB
    >>> from repro.core.syntax import rel
    >>> from repro.core.query import Query
    >>> from repro.core.database import Database
    >>> engine = QueryEngine()
    >>> db = Database(AB, {"R2": [("ab",), ("b",)]})
    >>> sorted(engine.evaluate(Query(("x",), rel("R2", "x"), AB), db))
    [('ab',), ('b',)]

    Sessions are cheap to create; keep one per long-lived workload so
    repeated and batched queries share compiled artifacts.  All cached
    derivations are pure, so a session may be shared freely within a
    process (CPython's GIL makes individual cache operations atomic;
    redundant recomputation under races is harmless).
    """

    def __init__(
        self,
        *,
        max_generated_entries: int | None = 4096,
        tracer: "Tracer | NullTracer | None" = None,
        kernel_mode: str = "auto",
    ) -> None:
        from repro.fsa.kernel import KERNEL_MODES

        if kernel_mode not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernel mode {kernel_mode!r}; "
                f"expected one of {KERNEL_MODES}"
            )
        #: The session-wide acceptance-kernel mode (``"v1"``, ``"v2"``,
        #: ``"v3"`` or ``"auto"``); see :func:`repro.fsa.kernel.kernel_for`.
        self.kernel_mode = kernel_mode
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = EngineStats()
        register = self.stats.register_cache
        self._compile = register(KeyedCache("compile"))
        self._kernel = register(KeyedCache("kernel"))
        self._minimize = register(KeyedCache("minimize"))
        self._specialize = register(KeyedCache("specialize"))
        self._generate = register(
            KeyedCache("generate", max_entries=max_generated_entries)
        )
        self._limit = register(KeyedCache("limit"))
        self._translate = register(KeyedCache("translate"))
        self._plan = register(KeyedCache("plan"))
        self._ir = register(KeyedCache("ir"))
        self._optimize = register(KeyedCache("optimize"))
        self._domain_stats = register(KeyedCache("domain")).stats
        # alphabet -> (enumerated_length, tuple_of_strings); plus
        # reserved enumeration floors so batches enumerate once.
        self._domains: dict[Alphabet, tuple[int, tuple[str, ...]]] = {}
        self._domain_floor: dict[Alphabet, int] = {}
        from repro.delta.materialize import MaterializedStore

        #: Materialized answers maintained under deltas (repro.delta).
        self._materialized = register(MaterializedStore())
        # The (relation, version) dependencies of the evaluation in
        # flight; cache writes made while it is set are tagged so
        # invalidate_relations can evict exactly the dependent entries.
        self._dep_context: tuple[tuple[str, int], ...] | None = None
        # alphabet -> relation names whose databases fed domain sizing.
        self._domain_deps: dict[Alphabet, set[str]] = {}

    # -- tracing helpers -------------------------------------------------

    def _activated(self, compute):
        """Wrap a cache-miss thunk so it runs under this session's tracer.

        Lower layers (the Theorem 3.1 compiler, Lemma 3.1
        specialization, the algebra translator, the planner) open their
        own stage-tagged spans through the ambient
        :func:`~repro.observability.current_tracer`; activation routes
        those spans into this session's tracer.  With tracing disabled
        the thunk is returned untouched, so cache misses pay nothing.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return compute

        def wrapped():
            with activate(tracer):
                return compute()

        return wrapped

    def _staged(self, stage: str, name: str, compute):
        """Like :meth:`_activated`, adding an explicit stage span.

        Used for computations whose implementing layer is not itself
        instrumented (e.g. the Section 5 safety analysis behind the
        ``plan`` stage).
        """
        tracer = self.tracer
        if not tracer.enabled:
            return compute

        def wrapped():
            with activate(tracer), tracer.span(name, stage=stage):
                return compute()

        return wrapped

    def trace_report(self) -> TraceReport:
        """The unified :class:`~repro.observability.TraceReport`.

        Merges this session's tracer data (spans per pipeline stage,
        counters, gauges — including worker-side spans folded back by
        the parallel executor) with the cache/engine/parallel
        accounting of :attr:`stats`.

        Returns:
            A schema-stable report; with tracing disabled the span
            sections are empty but every section is still present.
        """
        return TraceReport.build(self.tracer, self.stats)

    # -- cached compiled artifacts --------------------------------------

    def compile(
        self,
        formula: "StringFormula",
        alphabet: Alphabet,
        variables: "tuple[Var, ...] | None" = None,
    ) -> "CompiledFormula":
        """The Theorem 3.1 machine for ``formula``, cached structurally."""
        from repro.fsa.compile import build_string_formula, resolve_layout

        layout = resolve_layout(formula, variables)
        return self._compile.get_or_compute(
            (formula, alphabet, layout),
            self._activated(
                lambda: build_string_formula(formula, alphabet, layout)
            ),
        )

    def minimized(
        self,
        formula: "StringFormula",
        alphabet: Alphabet,
        variables: "tuple[Var, ...] | None" = None,
    ) -> "CompiledFormula":
        """The compiled machine, quotiented by bisimulation (cached)."""
        from repro.fsa.compile import CompiledFormula, resolve_layout
        from repro.fsa.minimize import bisimulation_quotient

        layout = resolve_layout(formula, variables)

        def build() -> "CompiledFormula":
            compiled = self.compile(formula, alphabet, layout)
            return CompiledFormula(
                bisimulation_quotient(compiled.fsa), compiled.variables
            )

        return self._minimize.get_or_compute(
            (formula, alphabet, layout), self._activated(build)
        )

    def kernel(self, fsa: "FSA", mode: str | None = None):
        """The acceptance kernel for ``fsa``, cached structurally.

        Two independently built but equal machines share one kernel
        per session *and per kernel tier*: cache keys are
        ``(tier, machine)`` where the tier is ``"v1"`` for the
        worklist :class:`~repro.fsa.kernel.CompiledKernel`, ``"v2"``
        for the determinized
        :class:`~repro.fsa.determinize.DeterministicKernel` and
        ``"v3"`` for the grammar-compositional
        :class:`~repro.slp.kernel.SLPKernel`, so a forced-v1 lookup
        can never collide with a v2 or v3 one.  The kernel is
        additionally stashed on the machine instance by
        :func:`~repro.fsa.kernel.kernel_for`, so the acceptance hot
        paths (the algebra's non-generative selection, the planner's
        row filters) never recompile — and since a v3 kernel carries
        its per-rule summary memo, compressed-input summaries are
        shared across every query and batch of the session.

        Args:
            fsa: The machine to compile.
            mode: Kernel mode override; defaults to the session's
                :attr:`kernel_mode`.

        Returns:
            The session-cached kernel for the resolved mode.
        """
        from repro.fsa.determinize import classify_fragment
        from repro.fsa.kernel import KERNEL_V1, KERNEL_V2, KERNEL_V3, kernel_for

        resolved = self.kernel_mode if mode is None else mode
        if resolved == KERNEL_V1 or classify_fragment(fsa) is None:
            tier = KERNEL_V1
        elif resolved == KERNEL_V3:
            tier = KERNEL_V3
        else:
            tier = KERNEL_V2
        return self._kernel.get_or_compute(
            (tier, fsa), self._activated(lambda: kernel_for(fsa, resolved))
        )

    def specialized(
        self, fsa: "FSA", fixed: Mapping[int, str], prune: bool = True
    ) -> "FSA":
        """Lemma 3.1 specialization on constant inputs, cached."""
        from repro.fsa.specialize import specialize

        key = (fsa, tuple(sorted(fixed.items())), prune)
        return self._specialize.get_or_compute(
            key,
            self._activated(lambda: specialize(fsa, dict(fixed), prune=prune)),
        )

    def generated(
        self,
        fsa: "FSA",
        max_length: int,
        fixed: Mapping[int, str] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """``accepted_tuples`` with specialization and answers cached.

        The generator-machine fast path behind the planner and the
        algebra's ``σ_A(F × (Σ*)^n)``.
        """
        from repro.fsa.generate import accepted_tuples

        fixed_key = tuple(sorted(fixed.items())) if fixed else ()
        machine = self.specialized(fsa, fixed) if fixed else fsa
        return self._generate.get_or_compute(
            (fsa, max_length, fixed_key),
            self._staged(
                "execute",
                "execute.generate",
                lambda: accepted_tuples(machine, max_length=max_length),
            ),
            depends=self._dep_context,
        )

    def peek_generated(
        self,
        fsa: "FSA",
        max_length: int,
        fixed_key: tuple[tuple[int, str], ...],
    ) -> frozenset[tuple[str, ...]] | None:
        """The cached :meth:`generated` answer set, or ``None``.

        ``fixed_key`` is the canonical sorted-items form of the fixed
        map.  The parallel layer uses this to count cache hits *before*
        dispatching work to workers (which cannot see these caches).
        """
        return self._generate.peek((fsa, max_length, fixed_key))

    def store_generated(
        self,
        fsa: "FSA",
        max_length: int,
        fixed_key: tuple[tuple[int, str], ...],
        answers: frozenset[tuple[str, ...]],
    ) -> None:
        """Fold a worker-computed answer set back into the cache."""
        self._generate.store(
            (fsa, max_length, fixed_key), answers, depends=self._dep_context
        )

    def limit_report(
        self, formula: "Formula", alphabet: Alphabet
    ) -> "SafetyReport | None":
        """The certified limit function of ``formula``, cached.

        ``None`` — the "no bound certifiable" outcome — is cached too.
        """
        from repro.safety.domain_independence import limit_function

        return self._limit.get_or_compute(
            (formula, alphabet),
            self._staged(
                "plan",
                "plan.limit",
                lambda: limit_function(
                    formula, alphabet, compiler=self.compile
                ),
            ),
        )

    def translation(self, query: "Query") -> "Expression":
        """The Theorem 4.2 algebra expression for ``query``, cached."""
        from repro.algebra.translate import calculus_to_algebra

        return self._translate.get_or_compute(
            (query.formula, query.head, query.alphabet),
            self._activated(
                lambda: calculus_to_algebra(
                    query.formula,
                    query.head,
                    query.alphabet,
                    compiler=self.compile,
                )
            ),
            depends=self._dep_context,
        )

    def plan(self, formula: "Formula"):
        """The planner's conjunctive decomposition of ``formula``, cached.

        Returns the quantifier prefix plus literal list, cached per
        formula.
        """
        from repro.core.planner import decompose_conjunctive

        return self._plan.get_or_compute(
            formula, self._activated(lambda: decompose_conjunctive(formula))
        )

    def query_plan(self, query: "Query", db: Database, cap: int):
        """The normalized :class:`~repro.ir.plan.QueryPlan`, cached.

        Keyed by the formula, head, alphabet, the database's relation
        *statistics signature* (per-column distinct counts and length
        histograms, from each storage backend's ``stats()``) and the
        cap — statistically identical databases share one cost-ranked
        plan, and a database whose contents shift enough to change its
        statistics gets replanned.  After normalization the
        index-prefilter pushdown pass
        (:func:`repro.ir.rewrite.attach_index_prefilters`) derives
        mandatory substring factors from the branch's selection
        machines — compiled through this session's cache — and attaches
        them to the join steps.  Recorded under the ``normalize``
        stage.

        Args:
            query: The query to normalize.
            db: The database feeding the cost model.
            cap: The truncation / generation bound.

        Returns:
            The cached :class:`~repro.ir.plan.QueryPlan`.
        """
        from repro.ir.cost import CostModel
        from repro.ir.normalize import build_query_plan
        from repro.ir.rewrite import attach_index_prefilters

        model = CostModel.for_database(db, query.alphabet, cap)
        key = (
            query.formula,
            query.head,
            query.alphabet,
            model.signature,
            cap,
        )
        def compute():
            tracer = self.tracer
            with activate(tracer), tracer.span(
                "normalize.plan", stage="normalize"
            ) as span:
                plan = build_query_plan(query.formula, query.head, model)
                plan = attach_index_prefilters(
                    plan,
                    query.alphabet,
                    compiler=self.compile,
                    model=model,
                )
                if plan.fallback_reason is not None:
                    span.set(fallback=plan.fallback_reason)
                return plan

        return self._ir.get_or_compute(key, compute, depends=self._dep_context)

    def optimized_translation(self, query: "Query"):
        """The rewritten algebra expression plus fired rules, cached.

        Simplifies the formula, translates it branch-by-branch when it
        splits into disjuncts (plain Theorem 4.2 translation
        otherwise), then runs the :mod:`repro.ir.rewrite` passes with
        fused and minimized machines served from this session's
        caches.  Recorded under the ``optimize`` stage.

        Args:
            query: The query to translate and optimize.

        Returns:
            The ``(expression, rules)`` pair where ``rules`` lists the
            fired rewrite rules as sorted ``(name, count)`` entries.

        Raises:
            EvaluationError: If the head does not match the formula's
                free variables (the algebra route's precondition).
        """
        from repro.algebra.translate import calculus_to_algebra
        from repro.ir.normalize import simplify
        from repro.ir.rewrite import optimize_expression, translate_branches

        key = ("expr", query.formula, query.head, query.alphabet)

        def build():
            simplified = simplify(query.formula)
            expression = translate_branches(
                simplified, query.head, query.alphabet, compiler=self.compile
            )
            if expression is None:
                expression = calculus_to_algebra(
                    simplified, query.head, query.alphabet,
                    compiler=self.compile,
                )
            return optimize_expression(expression, session=self)

        return self._optimize.get_or_compute(
            key, self._staged("optimize", "optimize.translate", build)
        )

    def fused_select(self, first: "FSA", second: "FSA") -> "FSA":
        """One machine accepting ``L(first) ∩ L(second)``, cached.

        The optimizer's selection-fusion rule bottoms out here, so
        repeated queries fusing the same machine pair build the
        product once per session.  When both conjuncts sit inside the
        Theorem 5.2 fragment (and the session is not pinned to kernel
        v1) the intersection is built as a determinized scan-table
        product (:func:`repro.fsa.determinize.lockstep_intersection`)
        — the fused machine is then itself in fragment, so the whole
        optimized selection runs as **one linear v2 pass**; otherwise
        the two-way sequencing product of
        :func:`repro.fsa.product.sequence_machines` is used.
        """
        from repro.fsa.determinize import lockstep_intersection
        from repro.fsa.kernel import KERNEL_V1
        from repro.fsa.product import sequence_machines

        def build() -> "FSA":
            if self.kernel_mode != KERNEL_V1:
                fused = lockstep_intersection(first, second)
                if fused is not None:
                    return fused
            return sequence_machines(first, second)

        return self._optimize.get_or_compute(
            ("fuse", self.kernel_mode == KERNEL_V1, first, second),
            self._staged("optimize", "optimize.fuse", build),
        )

    def minimized_machine(self, fsa: "FSA") -> "FSA":
        """The bisimulation quotient of a bare machine, cached.

        The machine-level sibling of :meth:`minimized` (which is keyed
        by formula); the algebra evaluation route minimizes selection
        machines through this entry.
        """
        from repro.fsa.minimize import bisimulation_quotient

        return self._minimize.get_or_compute(
            ("machine", fsa),
            self._activated(lambda: bisimulation_quotient(fsa)),
        )

    def note_rejection(self, plan) -> None:
        """Record an *actually taken* naive fallback, exactly once.

        Engines call this only when they are the one doing the
        fallback work (``auto`` delegates, so it never notes).  The
        reason lands in :attr:`stats` (visible in ``--stats`` without
        tracing) and — when tracing is enabled — as a
        ``plan.reject.<reason>`` counter.

        Args:
            plan: The :class:`~repro.ir.plan.QueryPlan` whose root was
                rejected; no-op for plans with conjunctive roots.
        """
        reason = plan.fallback_reason
        if reason is None:
            return
        self.stats.record_reject(reason)
        self.tracer.add(f"plan.reject.{reason}")

    def certified_length(self, query: "Query", db: Database) -> int:
        """``W_φ(db)`` from the cached safety analysis.

        Raises :class:`SafetyError` when no limit function can be
        certified for the query.
        """
        report = self.limit_report(query.formula, query.alphabet)
        if report is None:
            raise SafetyError(
                "no limit function could be certified for this query; "
                "pass an explicit length"
            )
        return report.bound(db)

    # -- deltas and materialized answers (repro.delta) ------------------

    def _relation_deps(
        self, query: "Query", db: Database
    ) -> tuple[tuple[str, int], ...]:
        """The ``(relation, version)`` pairs ``query`` depends on in ``db``."""
        from repro.core.syntax import relation_names

        return tuple(
            (name, db.relation_version(name))
            for name in sorted(relation_names(query.formula))
        )

    def invalidate_relations(self, names: Sequence[str]) -> int:
        """Evict cache entries that depended on the named relations.

        Only the relation-dependent caches are touched — generated
        answer sets, normalized query plans, algebra translations and
        the domain pool; compiled machines, kernels, specializations
        and limit reports are pure functions of formulae and survive
        every update.  Each eviction batch is recorded as a
        ``cache.invalidate.<cache>`` counter.

        Args:
            names: The updated relation symbols.

        Returns:
            The total number of evicted entries.
        """
        tracer = self.tracer if self.tracer.enabled else current_tracer()
        evicted = 0
        for cache in (self._generate, self._ir, self._translate):
            count = cache.invalidate_relations(names)
            if count:
                tracer.add(f"cache.invalidate.{cache.name}", count)
            evicted += count
        updated = set(names)
        for alphabet in [
            alphabet
            for alphabet, deps in self._domain_deps.items()
            if deps & updated
        ]:
            del self._domain_deps[alphabet]
            if alphabet in self._domains:
                del self._domains[alphabet]
                self._domain_stats.invalidated += 1
                tracer.add("cache.invalidate.domain")
                evicted += 1
        return evicted

    def apply_delta(self, db: Database, delta) -> Database:
        """Apply ``delta`` to ``db`` and keep this session consistent.

        One call does the whole mutation path: derives the new
        database version, evicts exactly the cache entries that
        depended on the touched relations, and incrementally maintains
        the materialized answers.  Recorded under the ``delta`` stage.

        Args:
            db: The database version to update.
            delta: The :class:`repro.delta.Delta` to apply.

        Returns:
            The new database version (``db`` itself for a no-op).
        """
        if delta.is_empty:
            return db
        # An ambient tracer (e.g. the service's per-request tracer)
        # records the update when the session itself has none.
        tracer = self.tracer if self.tracer.enabled else current_tracer()
        if not tracer.enabled:
            return self._apply_delta(db, delta)
        with activate(tracer), tracer.span(
            "delta.apply", stage="delta", operations=delta.size
        ):
            return self._apply_delta(db, delta)

    def _apply_delta(self, db: Database, delta) -> Database:
        updated = db.apply(delta)
        if updated is db:
            return db
        touched = delta.relations()
        tracer = current_tracer()
        tracer.add("delta.applied")
        self.invalidate_relations(touched)
        with tracer.span(
            "delta.maintain", stage="delta", relations=len(touched)
        ):
            self._materialized.maintain(db, updated, delta, self)
        return updated

    def _materialized_key(self, query: "Query", length: int | None):
        return (query.formula, query.head, query.alphabet, length)

    def _materialize_miss(
        self, query: "Query", db: Database, length: int | None
    ) -> frozenset[tuple[str, ...]] | None:
        """Materialize ``query`` at ``db``'s version, if its plan allows.

        Returns ``None`` when the plan degrades to a naive root — the
        caller falls through to a normal (unmaterialized) evaluation,
        which is the documented fallback rule.
        """
        from repro.core.syntax import RelAtom, relation_names
        from repro.delta.materialize import MaterializedAnswer
        from repro.ir.execute import execute_branch

        explicit = length is not None
        cap = length if explicit else self.certified_length(query, db)
        plan = self.query_plan(query, db, cap)
        if plan.fallback_reason is not None:
            self.note_rejection(plan)
            self.tracer.add("delta.materialize.naive_fallback")
            return None
        branch_rows = tuple(
            execute_branch(
                branch, plan.head, db, query.alphabet, cap, self
            )
            for branch in plan.branches()
        )
        answer = (
            frozenset().union(*branch_rows) if branch_rows else frozenset()
        )
        names = set(relation_names(query.formula))
        for branch in plan.branches():
            for step in branch.steps:
                if isinstance(step.atom, RelAtom):
                    names.add(step.atom.name)
        relations = tuple(sorted(names))
        self._materialized.put(
            MaterializedAnswer(
                key=self._materialized_key(query, length),
                plan=plan,
                alphabet=query.alphabet,
                cap=cap,
                explicit=explicit,
                lineage=db.lineage,
                versions=tuple(
                    (name, db.relation_version(name)) for name in relations
                ),
                relations=relations,
                max_lengths={
                    name: db.max_string_length(name) for name in relations
                },
                branch_rows=branch_rows,
                answer=answer,
            )
        )
        return answer

    # -- the shared Σ^{<=l} domain pool ---------------------------------

    def reserve_domain(self, alphabet: Alphabet, length: int) -> None:
        """Declare an upcoming need for ``Σ^{<=length}``.

        The pool then enumerates up to the largest reserved length on
        first use, instead of growing incrementally — ``evaluate_many``
        reserves the batch maximum so every member query's domain is a
        prefix slice of one enumeration.
        """
        if length > self._domain_floor.get(alphabet, -1):
            self._domain_floor[alphabet] = length

    def domain_for(self, alphabet: Alphabet, length: int) -> tuple[str, ...]:
        """``Σ^{<=length}`` as a tuple, served from the shared pool.

        Enumeration is by length then lexicographic, so the pool keeps
        only the longest enumeration per alphabet and answers shorter
        requests as prefixes of it.
        """
        if length < 0:
            return ()
        if self._dep_context:
            self._domain_deps.setdefault(alphabet, set()).update(
                name for name, _ in self._dep_context
            )
        cached = self._domains.get(alphabet)
        if cached is not None and cached[0] >= length:
            self._domain_stats.hits += 1
            full_length, pool = cached
            if full_length == length:
                return pool
            return pool[: alphabet.count_strings(length)]
        target = max(length, self._domain_floor.get(alphabet, -1))
        started = perf_counter()
        with self.tracer.span("plan.domain", stage="plan", length=target):
            pool = tuple(alphabet.strings(target))
        self._domain_stats.seconds += perf_counter() - started
        self._domain_stats.misses += 1
        self.tracer.gauge("domain.pool_size", len(pool))
        self._domains[alphabet] = (target, pool)
        if target == length:
            return pool
        return pool[: alphabet.count_strings(length)]

    # -- evaluation entry points ----------------------------------------

    def evaluate(
        self,
        query: "Query",
        db: Database,
        *,
        length: int | None = None,
        engine: "str | Engine" = "auto",
        domain: Sequence[str] | None = None,
        workers: int | None = None,
        shards: int | None = None,
        materialize: bool = False,
    ) -> frozenset[tuple[str, ...]]:
        """Evaluate one query through a registered strategy.

        ``engine`` is a registered name (``"naive"``, ``"planner"``,
        ``"algebra"``, ``"parallel"``, ``"auto"``) or an
        :class:`Engine` object.  ``workers``/``shards`` configure
        strategies that support sharded execution (``parallel``,
        ``algebra`` and ``auto``) via their ``configured`` hook; other
        strategies ignore the hint — the answer set never depends on
        it.  See :meth:`repro.core.query.Query.evaluate` for the
        semantics of ``length`` and ``domain``.

        With ``materialize=True`` the session keeps a
        :class:`~repro.delta.MaterializedAnswer` for the query:
        re-evaluating at the same database version is a pure
        lineage-and-versions lookup, and :meth:`apply_delta` maintains
        the stored answer incrementally.  Queries whose plan degrades
        to a naive root (and calls passing an explicit ``domain``)
        fall through to a normal evaluation — the answer never
        depends on the flag.
        """
        if materialize and domain is None:
            started = perf_counter()
            entry = self._materialized.lookup(
                self._materialized_key(query, length), db
            )
            if entry is not None:
                self.stats.record_evaluation(
                    "materialized", perf_counter() - started
                )
                return entry.answer
        previous = self._dep_context
        self._dep_context = self._relation_deps(query, db)
        try:
            if materialize and domain is None:
                started = perf_counter()
                answer = self._materialize_miss(query, db, length)
                if answer is not None:
                    self.stats.record_evaluation(
                        "materialized", perf_counter() - started
                    )
                    return answer
            strategy = get_engine(engine)
            if workers is not None or shards is not None:
                configured = getattr(strategy, "configured", None)
                if configured is not None:
                    strategy = configured(workers=workers, shards=shards)
            fixed_domain = tuple(domain) if domain is not None else None
            started = perf_counter()
            tracer = self.tracer
            if tracer.enabled:
                with activate(tracer), tracer.span(
                    "engine.evaluate",
                    engine=strategy.name,
                    head=len(query.head),
                ):
                    result = strategy.evaluate(
                        query, db, self, length=length, domain=fixed_domain
                    )
            else:
                result = strategy.evaluate(
                    query, db, self, length=length, domain=fixed_domain
                )
            self.stats.record_evaluation(
                strategy.name, perf_counter() - started
            )
            return result
        finally:
            self._dep_context = previous

    def evaluate_many(
        self,
        queries: "Sequence[Query]",
        db: Database,
        *,
        length: int | None = None,
        engine: "str | Engine" = "auto",
        workers: int | None = None,
        shards: int | None = None,
        materialize: bool = False,
    ) -> list[frozenset[tuple[str, ...]]]:
        """Evaluate a batch of queries against one database.

        The batch shares everything a session shares — compiled
        machines, specializations, limit reports — and additionally
        pre-resolves every member's truncation bound so the ``Σ^{<=l}``
        pool is enumerated at most once per alphabet, at the batch
        maximum, with each query's domain a prefix slice of it.
        ``workers``/``shards`` and ``materialize`` are forwarded to
        every member evaluation.  Results are returned in query order.
        """
        for query in queries:
            if length is not None:
                bound: int | None = length
            else:
                report = self.limit_report(query.formula, query.alphabet)
                bound = report.bound(db) if report is not None else None
            if bound is not None:
                self.reserve_domain(query.alphabet, bound)
        return [
            self.evaluate(
                query,
                db,
                length=length,
                engine=engine,
                workers=workers,
                shards=shards,
                materialize=materialize,
            )
            for query in queries
        ]


_DEFAULT: QueryEngine | None = None


def default_engine() -> QueryEngine:
    """The process-wide session behind ``Query.evaluate``.

    Created on first use; replace it with :func:`set_default_engine`
    (e.g. per test) or create dedicated :class:`QueryEngine` sessions
    for isolated workloads.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = QueryEngine()
    return _DEFAULT


def set_default_engine(engine: QueryEngine | None) -> QueryEngine | None:
    """Swap the process-wide session; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = engine
    return previous
