"""Synthetic workloads and classical baseline oracles."""

from repro.workloads import generators, oracles

__all__ = ["generators", "oracles"]
