"""Baseline string predicates (the classical-algorithm oracles).

Each function here decides, by direct classical means (DP, scanning,
splitting), the same property that one of the paper's alignment
calculus queries expresses.  They serve two roles:

* correctness oracles for the calculus/FSA engines in the test suite;
* the *baseline* side of the benchmark harness (e.g. Wagner-Fischer
  edit distance against the Example 8 formula).
"""

from __future__ import annotations

from functools import lru_cache


def equals(x: str, y: str) -> bool:
    """Oracle for Example 2's ``x =_s y``."""
    return x == y


def is_prefix(x: str, y: str) -> bool:
    """Oracle for the prefix predicate."""
    return y.startswith(x)


def is_proper_prefix(x: str, y: str) -> bool:
    """Oracle for the paper's unsafe ω example."""
    return y.startswith(x) and len(x) < len(y)


def is_concatenation(x: str, y: str, z: str) -> bool:
    """Oracle for Example 3's ``x = y·z``."""
    return x == y + z


def is_manifold(x: str, y: str) -> bool:
    """Oracle for Example 4's ``x ∈*_s y`` (x = y·y·…·y, at least one y).

    The empty string is a manifold of the empty string only.
    """
    if not y:
        return not x
    if len(x) < len(y) or len(x) % len(y):
        return False
    return x == y * (len(x) // len(y))


def is_shuffle(x: str, y: str, z: str) -> bool:
    """Oracle for Example 5: ``x`` interleaves ``y`` and ``z`` (DP)."""
    if len(x) != len(y) + len(z):
        return False

    @lru_cache(maxsize=None)
    def rest(i: int, j: int) -> bool:
        if i + j == len(x):
            return True
        char = x[i + j]
        if i < len(y) and y[i] == char and rest(i + 1, j):
            return True
        return j < len(z) and z[j] == char and rest(i, j + 1)

    result = rest(0, 0)
    rest.cache_clear()
    return result


def matches_gc_plus_a_star(y: str) -> bool:
    """Oracle for Example 6's pattern ``(gc + a)*`` (manual scan)."""
    i = 0
    while i < len(y):
        if y[i] == "a":
            i += 1
        elif y[i] == "g" and i + 1 < len(y) and y[i + 1] == "c":
            i += 2
        else:
            return False
    return True


def occurs_in(x: str, y: str) -> bool:
    """Oracle for Example 7: ``x`` occurs in ``y``."""
    return x in y


def is_suffix(x: str, y: str) -> bool:
    """Oracle for the suffix predicate."""
    return y.endswith(x)


def edit_distance(x: str, y: str) -> int:
    """Wagner-Fischer dynamic program — the classical Example 8 baseline.

    Unit costs for replace, insert and delete, as in the paper's
    definition following [24] (Sankoff & Kruskal).
    """
    previous = list(range(len(y) + 1))
    for i, cx in enumerate(x, start=1):
        current = [i]
        for j, cy in enumerate(y, start=1):
            cost = 0 if cx == cy else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[len(y)]


def edit_distance_at_most(x: str, y: str, k: int) -> bool:
    """Oracle for Example 8's bounded edit distance."""
    return edit_distance(x, y) <= k


def is_axbxa(x: str, first: str = "a", middle: str = "b") -> bool:
    """Oracle for Example 9: ``x = a·X·b·X·a`` for some ``X``."""
    if len(x) < 3 or x[0] != first or x[-1] != first:
        return False
    body = x[1:-1]
    if (len(body) - 1) % 2:
        return False
    half = (len(body) - 1) // 2
    return body[half] == middle and body[:half] == body[half + 1 :]


def has_equal_as_bs(x: str, char_a: str = "a", char_b: str = "b") -> bool:
    """Oracle for Example 10: equal numbers of a's and b's, nothing else."""
    return set(x) <= {char_a, char_b} and x.count(char_a) == x.count(char_b)


def is_anbncn(x: str) -> bool:
    """Oracle for Example 11: ``x ∈ {aⁿbⁿcⁿ : n ∈ N}``."""
    n = len(x) // 3
    if len(x) != 3 * n:
        return False
    return x == "a" * n + "b" * n + "c" * n


def translate_ab(x: str, char_a: str = "a", char_b: str = "b") -> str:
    """The a↔b translation of Example 12."""
    swap = {char_a: char_b, char_b: char_a}
    return "".join(swap.get(c, c) for c in x)


def is_copy_translation(x: str, char_a: str = "a", char_b: str = "b") -> bool:
    """Oracle for Example 12: second half is the translation of the first."""
    if len(x) % 2 or not set(x) <= {char_a, char_b}:
        return False
    half = len(x) // 2
    return x[half:] == translate_ab(x[:half], char_a, char_b)


def is_reverse(x: str, y: str) -> bool:
    """Oracle for the reversal predicate."""
    return x == y[::-1]
