"""Deterministic synthetic string workloads.

The paper motivates alignment calculus with genetic databases: strings
over the DNA alphabet carrying combinatorial (non-context-free)
structure such as repeated or translated segments.  These generators
produce such data synthetically with explicit seeds, substituting for
the proprietary sequence databases the paper alludes to (see
DESIGN.md, substitution table).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.alphabet import Alphabet
from repro.core.database import Database
from repro.workloads.oracles import translate_ab


def uniform_strings(
    alphabet: Alphabet,
    count: int,
    max_length: int,
    min_length: int = 0,
    seed: int = 0,
) -> list[str]:
    """``count`` uniform random strings with lengths in the given range."""
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        length = rng.randint(min_length, max_length)
        out.append("".join(rng.choice(alphabet.symbols) for _ in range(length)))
    return out


def with_planted_motif(
    alphabet: Alphabet,
    motif: str,
    count: int,
    max_length: int,
    fraction: float = 0.5,
    seed: int = 0,
) -> list[str]:
    """Random strings, a ``fraction`` of which contain ``motif``.

    Exercises the Example 6/7 selection queries: pattern membership and
    substring occurrence.
    """
    alphabet.validate_string(motif)
    rng = random.Random(seed)
    out = []
    for index in range(count):
        length = rng.randint(0, max_length)
        base = "".join(rng.choice(alphabet.symbols) for _ in range(length))
        if index < count * fraction:
            cut = rng.randint(0, len(base))
            base = base[:cut] + motif + base[cut:]
        out.append(base)
    rng.shuffle(out)
    return out


def near_duplicates(
    alphabet: Alphabet,
    base: str,
    count: int,
    max_edits: int,
    seed: int = 0,
) -> list[str]:
    """Strings within ``max_edits`` random edit operations of ``base``.

    The Example 8 similarity-search workload.
    """
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        word = list(base)
        for _ in range(rng.randint(0, max_edits)):
            op = rng.choice(("replace", "insert", "delete"))
            if op == "replace" and word:
                word[rng.randrange(len(word))] = rng.choice(alphabet.symbols)
            elif op == "insert":
                word.insert(rng.randint(0, len(word)), rng.choice(alphabet.symbols))
            elif op == "delete" and word:
                del word[rng.randrange(len(word))]
        out.append("".join(word))
    return out


def copy_language_strings(
    count: int,
    max_half_length: int,
    char_a: str = "a",
    char_b: str = "b",
    seed: int = 0,
) -> list[str]:
    """Strings ``w · translate(w)`` — the Example 12 / gene-regulation shape."""
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        length = rng.randint(0, max_half_length)
        half = "".join(rng.choice((char_a, char_b)) for _ in range(length))
        out.append(half + translate_ab(half, char_a, char_b))
    return out


def manifold_strings(
    alphabet: Alphabet,
    count: int,
    max_base_length: int,
    max_repeats: int,
    seed: int = 0,
) -> list[tuple[str, str]]:
    """Pairs ``(vⁿ, v)`` for the Example 4 manifold workload."""
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        length = rng.randint(1, max_base_length)
        base = "".join(rng.choice(alphabet.symbols) for _ in range(length))
        out.append((base * rng.randint(1, max_repeats), base))
    return out


def example_database(
    alphabet: Alphabet,
    pairs: Sequence[tuple[str, str]] | None = None,
    singles: Sequence[str] | None = None,
    seed: int = 0,
    size: int = 8,
    max_length: int = 4,
) -> Database:
    """A small two-relation database shaped like the paper's examples.

    ``R1`` is binary, ``R2`` unary — the relation symbols every worked
    example in Section 2 is phrased over.
    """
    if pairs is None:
        strings = uniform_strings(alphabet, 2 * size, max_length, seed=seed)
        pairs = list(zip(strings[:size], strings[size:]))
    if singles is None:
        singles = uniform_strings(alphabet, size, max_length, seed=seed + 1)
    return Database(
        alphabet,
        {"R1": [tuple(p) for p in pairs], "R2": [(s,) for s in singles]},
    )
