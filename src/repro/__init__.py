"""repro — Alignment calculus for reasoning about strings in databases.

A full reimplementation of Grahne, Nykänen & Ukkonen, *Reasoning about
Strings in Databases* (PODS 1994; JCSS 59, 1999):

* :mod:`repro.core` — alignment calculus: alignments, transposes,
  window/string/calculus formulae, direct semantics and queries.
* :mod:`repro.fsa` — multitape two-way finite automata (k-FSAs), the
  calculus' computational counterpart (Section 3).
* :mod:`repro.algebra` — alignment algebra and the calculus⇄algebra
  translations (Section 4).
* :mod:`repro.safety` — limitation analysis and domain independence
  (Section 5).
* :mod:`repro.expressive` — the expressive-power constructions of
  Section 6 (regular sets, r.e. sets, sequence logic, the polynomial
  hierarchy, PSPACE).
* :mod:`repro.engine` — the query engine layer: cached
  :class:`QueryEngine` sessions, batch evaluation, and the registry of
  evaluation strategies.
* :mod:`repro.workloads` — deterministic synthetic string workloads.
"""

__version__ = "1.0.0"

from repro.core import (  # noqa: F401  (re-exported convenience API)
    Alignment,
    Alphabet,
    Database,
    Query,
)
from repro.engine import (  # noqa: F401  (re-exported convenience API)
    QueryEngine,
    available_engines,
    get_engine,
    register_engine,
)
