"""Unified observability: hierarchical tracing, metrics, and reports.

This package is the instrumentation substrate for the whole pipeline —
dependency-free (stdlib only), negligible when disabled, and stable in
schema so perf work can report against it release after release.

Three layers:

* :mod:`repro.observability.tracer` — :class:`Tracer` (spans,
  counters, gauges), the ambient :func:`current_tracer` /
  :func:`activate` contextvar plumbing, and the canonical pipeline
  :data:`STAGES` (``compile → specialize → translate → plan → shard →
  execute → fold``);
* :mod:`repro.observability.sinks` — pluggable span sinks
  (:class:`RingBufferSink`, :class:`JsonLinesSink`,
  :class:`StderrSummarySink`);
* :mod:`repro.observability.report` — :class:`TraceReport`, the
  schema-stable JSON document unifying span data with the engine's
  cache/parallel accounting (the CLI's ``--trace`` / ``--profile`` /
  ``--metrics-out`` surface).

See ``docs/observability.md`` for naming conventions and walkthroughs,
and ``docs/architecture.md`` for where each stage lives in the
codebase.
"""

from repro.observability.report import TRACE_REPORT_SCHEMA, TraceReport
from repro.observability.sinks import (
    JsonLinesSink,
    RingBufferSink,
    StderrSummarySink,
)
from repro.observability.tracer import (
    DEFAULT_MAX_SPANS,
    NULL_TRACER,
    STAGES,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    activate,
    current_tracer,
)

__all__ = [
    "DEFAULT_MAX_SPANS",
    "JsonLinesSink",
    "NULL_TRACER",
    "NullTracer",
    "RingBufferSink",
    "STAGES",
    "Span",
    "SpanRecord",
    "StderrSummarySink",
    "TRACE_REPORT_SCHEMA",
    "TraceReport",
    "Tracer",
    "activate",
    "current_tracer",
]
