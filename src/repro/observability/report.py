"""The :class:`TraceReport`: one schema-stable view of a traced run.

Ad-hoc per-layer stat dicts (engine caches, parallel execution
reports) used to be the only instrumentation surface; the trace report
unifies them with the span/counter data of a
:class:`~repro.observability.tracer.Tracer` into a single JSON-stable
document.  The schema always contains a ``stages`` section keyed by
*exactly* the ten canonical pipeline stages
(:data:`~repro.observability.tracer.STAGES`), whether or not the run
exercised them, so downstream tooling can index stages
unconditionally.

Build one with :meth:`TraceReport.build` (or, more commonly,
``QueryEngine.trace_report()``), then render it:

* :meth:`TraceReport.to_dict` / :meth:`to_json` / :meth:`write` — the
  machine-readable document behind the CLI's ``--metrics-out``;
* :meth:`TraceReport.describe` — the per-stage profile table behind
  ``--profile``;
* :meth:`TraceReport.tree` — the indented span tree behind ``--trace``;
* :meth:`TraceReport.summary` — the legacy cache/engine/parallel lines
  previously printed by ``--stats``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.observability.tracer import STAGES, NullTracer, SpanRecord, Tracer

#: Version tag embedded in every serialized report; bump on any
#: backwards-incompatible layout change.  ``/2`` extends ``/1``
#: compatibly — two stages (``normalize``, ``optimize``) and a
#: ``rejects`` section were added; ``/3`` extends ``/2`` with the
#: ``delta`` stage (the update path) and per-cache ``invalidated``
#: counts.  Every earlier key is unchanged.
TRACE_REPORT_SCHEMA = "repro.trace-report/3"


def _empty_stages() -> dict[str, dict[str, float | int]]:
    return {stage: {"spans": 0, "seconds": 0.0} for stage in STAGES}


@dataclass
class TraceReport:
    """Aggregated tracing + engine instrumentation for one session.

    Attributes:
        enabled: Whether a real tracer produced the span data (a
            disabled session still reports caches and counters).
        stages: Per-stage span counts and seconds, keyed by exactly
            the ten canonical stages.  Seconds sum *stage-root*
            spans only: a span nested inside a same-stage parent is
            already covered by the parent's duration.
        counters: Accumulated typed counters (worker counters folded
            in), e.g. ``simulate.configurations``, ``executor.retries``.
        gauges: Last-value gauges, e.g. ``naive.candidate_space``.
        caches: Per-cache hit/miss/seconds snapshots from the session.
        engines: Per-engine evaluation counts and seconds.
        parallel: Session-wide parallel execution accounting.
        rejects: Planner rejection reasons with fallback counts.
        spans: Retained span records (completion order).
        dropped_spans: Spans beyond the tracer's retention cap.
    """

    enabled: bool = False
    stages: dict[str, dict[str, float | int]] = field(
        default_factory=_empty_stages
    )
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    caches: dict[str, dict[str, float | int]] = field(default_factory=dict)
    engines: dict[str, dict[str, float | int]] = field(default_factory=dict)
    parallel: dict[str, float | int] = field(default_factory=dict)
    rejects: dict[str, int] = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    dropped_spans: int = 0

    @classmethod
    def build(
        cls, tracer: "Tracer | NullTracer", stats: Any = None
    ) -> "TraceReport":
        """Assemble a report from a tracer and (optionally) engine stats.

        Args:
            tracer: The session's tracer; :data:`NULL_TRACER` yields a
                report with empty span data but ``stages`` still fully
                keyed.
            stats: An :class:`~repro.engine.caches.EngineStats` (or any
                object with a compatible ``snapshot()``) whose cache /
                engine / parallel sections are embedded.

        Returns:
            The populated :class:`TraceReport`.
        """
        report = cls(enabled=bool(getattr(tracer, "enabled", False)))
        records = tracer.records()
        stage_of = {record.span_id: record.stage for record in records}
        for record in records:
            report.spans.append(record)
            if record.stage in report.stages:
                bucket = report.stages[record.stage]
                bucket["spans"] += 1
                # A span nested inside a same-stage parent is part of
                # the parent's time; counting both would double-bill
                # the stage, so only stage-root spans contribute.
                if stage_of.get(record.parent_id) != record.stage:
                    bucket["seconds"] += record.duration
        report.counters = dict(getattr(tracer, "counters", {}) or {})
        report.gauges = dict(getattr(tracer, "gauges", {}) or {})
        report.dropped_spans = int(getattr(tracer, "dropped_spans", 0) or 0)
        if stats is not None:
            snapshot = stats.snapshot()
            report.caches = dict(snapshot.get("caches", {}))
            evaluations = snapshot.get("evaluations", {})
            seconds = snapshot.get("engine_seconds", {})
            report.engines = {
                name: {
                    "evaluations": evaluations.get(name, 0),
                    "seconds": seconds.get(name, 0.0),
                }
                for name in sorted(set(evaluations) | set(seconds))
            }
            report.parallel = dict(snapshot.get("parallel", {}))
            report.rejects = dict(snapshot.get("rejects", {}))
        return report

    # -- machine-readable renderings ------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The full schema-stable document (see :data:`TRACE_REPORT_SCHEMA`).

        Returns:
            A JSON-serializable dict whose top-level keys — ``schema``,
            ``enabled``, ``stages``, ``counters``, ``gauges``,
            ``caches``, ``engines``, ``parallel``, ``rejects``,
            ``spans``, ``dropped_spans`` — are always present, and
            whose ``stages`` section is keyed by exactly the ten
            canonical pipeline stages.
        """
        return {
            "schema": TRACE_REPORT_SCHEMA,
            "enabled": self.enabled,
            "stages": {
                stage: dict(self.stages.get(stage, {"spans": 0, "seconds": 0.0}))
                for stage in STAGES
            },
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "caches": {name: dict(data) for name, data in self.caches.items()},
            "engines": {name: dict(data) for name, data in self.engines.items()},
            "parallel": dict(self.parallel),
            "rejects": dict(self.rejects),
            "spans": [record.to_dict() for record in self.spans],
            "dropped_spans": self.dropped_spans,
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize :meth:`to_dict` as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the JSON document to ``path`` (the ``--metrics-out`` file)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    # -- human-readable renderings --------------------------------------

    def describe(self) -> str:
        """The per-stage profile table printed by the CLI's ``--profile``."""
        lines = ["stage        spans    seconds"]
        for stage in STAGES:
            bucket = self.stages[stage]
            lines.append(
                f"{stage:<12} {bucket['spans']:<8} {bucket['seconds']:.4f}"
            )
        if self.dropped_spans:
            lines.append(f"(+{self.dropped_spans} span(s) beyond retention cap)")
        for name in sorted(self.counters):
            lines.append(f"counter {name} = {self.counters[name]}")
        for name in sorted(self.gauges):
            lines.append(f"gauge   {name} = {self.gauges[name]}")
        return "\n".join(lines)

    def tree(self, max_spans: int = 200) -> str:
        """The indented span tree printed by the CLI's ``--trace``.

        Args:
            max_spans: Rendering cap; deeper traces are elided with a
                trailing note rather than flooding the terminal.

        Returns:
            One line per span — indentation shows nesting, each line
            giving the name, stage, duration and attributes.
        """
        children: dict[int | None, list[SpanRecord]] = {}
        for record in self.spans:
            children.setdefault(record.parent_id, []).append(record)
        for siblings in children.values():
            siblings.sort(key=lambda record: (record.worker or 0, record.start))
        lines: list[str] = []

        def render(record: SpanRecord, depth: int) -> None:
            if len(lines) >= max_spans:
                return
            stage = f" [{record.stage}]" if record.stage else ""
            worker = f" worker={record.worker}" if record.worker else ""
            attributes = dict(record.attributes)
            extras = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(attributes.items()))
                if attributes
                else ""
            )
            lines.append(
                f"{'  ' * depth}{record.name}{stage} "
                f"{record.duration * 1e3:.2f}ms{worker}{extras}"
            )
            for child in children.get(record.span_id, ()):
                render(child, depth + 1)

        for root in children.get(None, ()):
            render(root, 0)
        total = len(self.spans)
        if total > max_spans:
            lines.append(f"... ({total - max_spans} more span(s) not shown)")
        if not lines:
            lines.append("(no spans recorded — tracing disabled?)")
        return "\n".join(lines)

    def summary(self) -> str:
        """The legacy ``--stats`` lines: caches, engines, parallel, kernel.

        Format-compatible with ``EngineStats.describe()`` so existing
        consumers (and tests) keep parsing it, with a trailing stage
        line when span data is present.
        """
        lines = []
        for name in sorted(self.caches):
            data = self.caches[name]
            hits = data.get("hits", 0)
            misses = data.get("misses", 0)
            lines.append(
                f"cache {name:<10} hits={hits:<6} "
                f"misses={misses:<6} hit_rate={data.get('hit_rate', 0.0):.0%} "
                f"miss_seconds={data.get('seconds', 0.0):.4f}"
            )
        for name in sorted(self.engines):
            data = self.engines[name]
            lines.append(
                f"engine {name:<9} runs={data.get('evaluations', 0):<6} "
                f"seconds={data.get('seconds', 0.0):.4f}"
            )
        for reason in sorted(self.rejects):
            lines.append(
                f"reject {reason:<20} count={self.rejects[reason]}"
            )
        if self.parallel.get("runs"):
            totals = self.parallel
            lines.append(
                "parallel runs={runs} shards={done}/{planned} "
                "retries={retries} resplits={resplits} timeouts={timeouts} "
                "cache_hits={cache_hits} wall={wall:.4f}s cpu={cpu:.4f}s".format(
                    runs=totals.get("runs", 0),
                    done=totals.get("shards_completed", 0),
                    planned=totals.get("shards_planned", 0),
                    retries=totals.get("retries", 0),
                    resplits=totals.get("resplits", 0),
                    timeouts=totals.get("timeouts", 0),
                    cache_hits=totals.get("cache_hits", 0),
                    wall=totals.get("wall_seconds", 0.0),
                    cpu=totals.get("task_seconds", 0.0),
                )
            )
        counters = self.counters
        if any(
            name in counters
            for name in (
                "kernel.compile",
                "kernel.hits",
                "simulate.kernel_configurations",
            )
        ):
            lines.append(
                "kernel compiles={compiles} hits={hits} "
                "configurations={configurations}".format(
                    compiles=int(counters.get("kernel.compile", 0)),
                    hits=int(counters.get("kernel.hits", 0)),
                    configurations=int(
                        counters.get("simulate.kernel_configurations", 0)
                    ),
                )
            )
        if self.enabled:
            traced = sum(bucket["spans"] for bucket in self.stages.values())
            lines.append(
                f"trace spans={len(self.spans)} staged={traced} "
                f"dropped={self.dropped_spans}"
            )
        return "\n".join(lines)
