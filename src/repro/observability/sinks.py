"""Pluggable span sinks: ring buffer, JSON-lines file, stderr summary.

A sink is any object with an ``emit(record)`` method taking a
:class:`~repro.observability.tracer.SpanRecord`; an optional
``close()`` hook runs when the owning tracer is flushed.  Sinks see
every finished span *as it finishes* (including spans dropped from the
tracer's bounded in-memory list), which makes them the right place for
streaming export:

* :class:`RingBufferSink` — keeps the last ``capacity`` records in
  memory, for embedding dashboards and tests;
* :class:`JsonLinesSink` — appends one JSON object per span to a file,
  round-trippable via :meth:`JsonLinesSink.read`;
* :class:`StderrSummarySink` — aggregates per-stage span counts and
  seconds, printing a compact table on ``close()``.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from typing import IO, Any

from repro.observability.tracer import STAGES, SpanRecord


class RingBufferSink:
    """An in-memory sink retaining the most recent spans.

    Args:
        capacity: Maximum records retained; older records are evicted
            first once the buffer is full.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._buffer: deque[SpanRecord] = deque(maxlen=capacity)

    def emit(self, record: SpanRecord) -> None:
        """Append ``record``, evicting the oldest when full."""
        self._buffer.append(record)

    def records(self) -> tuple[SpanRecord, ...]:
        """The retained records, oldest first."""
        return tuple(self._buffer)

    def clear(self) -> None:
        """Drop every retained record."""
        self._buffer.clear()

    def __len__(self) -> int:
        """Number of records currently retained."""
        return len(self._buffer)


class JsonLinesSink:
    """Streams spans to a file as one JSON object per line.

    The file is opened lazily on the first emit and appended to, so a
    long-lived process can rotate the file externally.  Lines are the
    :meth:`~repro.observability.tracer.SpanRecord.to_dict` layout;
    :meth:`read` reverses it.

    Args:
        path: Target file path (created on first emit).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle: IO[str] | None = None

    def emit(self, record: SpanRecord) -> None:
        """Serialize ``record`` as one JSON line."""
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        json.dump(record.to_dict(), self._handle, sort_keys=True)
        self._handle.write("\n")

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def read(path: str) -> list[SpanRecord]:
        """Parse a JSON-lines span file back into records.

        Args:
            path: A file previously written by this sink.

        Returns:
            The records, in file (emission) order.

        Raises:
            OSError: If the file cannot be read.
            ValueError: If a line is not valid JSON.
        """
        records: list[SpanRecord] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(SpanRecord.from_dict(json.loads(line)))
        return records


class StderrSummarySink:
    """Aggregates spans per stage and prints a summary on close.

    Args:
        stream: Output stream; defaults to ``sys.stderr`` at close
            time (so pytest's capture sees it).
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream
        self._spans: dict[str, int] = {}
        self._seconds: dict[str, float] = {}
        self._total = 0

    def emit(self, record: SpanRecord) -> None:
        """Fold ``record`` into the per-stage aggregates."""
        self._total += 1
        stage = record.stage or "(untagged)"
        self._spans[stage] = self._spans.get(stage, 0) + 1
        self._seconds[stage] = self._seconds.get(stage, 0.0) + record.duration

    def summary(self) -> str:
        """The per-stage table this sink prints on :meth:`close`."""
        lines = [f"trace summary: {self._total} span(s)"]
        for stage in (*STAGES, "(untagged)"):
            if stage in self._spans:
                lines.append(
                    f"  stage {stage:<10} spans={self._spans[stage]:<6} "
                    f"seconds={self._seconds[stage]:.4f}"
                )
        return "\n".join(lines)

    def close(self) -> None:
        """Print the summary table to the configured stream."""
        stream: Any = self.stream if self.stream is not None else sys.stderr
        print(self.summary(), file=stream)
