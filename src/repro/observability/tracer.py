"""Hierarchical spans, counters and gauges — the tracing core.

A :class:`Tracer` records a tree of timed :class:`SpanRecord` values
(monotonic-clock durations via :func:`time.perf_counter`), typed
counters (monotonically accumulated integers/floats) and gauges
(last-value-wins measurements).  The library threads one tracer per
:class:`~repro.engine.session.QueryEngine` session; lower layers that
do not see the session — the FSA simulator, the Theorem 3.1 compiler,
worker processes — reach the active tracer through the ambient
:func:`current_tracer` contextvar, which defaults to the no-op
:data:`NULL_TRACER` so untraced runs pay (almost) nothing.

Every span carries an optional ``stage`` tag naming the pipeline stage
it belongs to; the canonical stages, in pipeline order, are
:data:`STAGES` — ``compile → specialize → normalize → translate →
optimize → plan → shard → execute → fold`` plus ``delta``, the
update path (:meth:`repro.engine.QueryEngine.apply_delta`) that runs
between pipelines.
:class:`~repro.observability.report.TraceReport` aggregates per-stage
span counts and seconds over exactly this set, so the report schema is
stable whether or not a given run exercised a stage.

Worker processes cannot write into the parent's tracer.  Instead the
worker entry point builds a private :class:`Tracer`, runs the shard
under it, and ships ``(records, counters, gauges)`` back with the
result (:meth:`Tracer.export`); the parent folds them in with
:meth:`Tracer.absorb`, re-parenting the worker's root spans under the
parent's current span and tagging each record with the worker's pid.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Any

#: The canonical pipeline stages, in pipeline order.  Every
#: :class:`TraceReport` aggregates spans over exactly these keys.
STAGES: tuple[str, ...] = (
    "compile",
    "specialize",
    "normalize",
    "translate",
    "optimize",
    "plan",
    "shard",
    "execute",
    "fold",
    "delta",
)

#: Default cap on retained span records per tracer; spans beyond the
#: cap are counted in ``dropped_spans`` instead of being stored.
DEFAULT_MAX_SPANS = 10_000

Attributes = tuple[tuple[str, Any], ...]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named, timed slice of the pipeline.

    ``start`` is the offset in seconds from the owning tracer's epoch
    (its construction time); for spans absorbed from a worker process
    the offset is relative to the *worker's* epoch and ``worker``
    carries that process's pid.  ``attributes`` is a tuple of
    ``(key, value)`` pairs so records stay hashable and picklable.
    """

    span_id: int
    parent_id: int | None
    name: str
    stage: str | None
    start: float
    duration: float
    attributes: Attributes = ()
    worker: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """A plain-dict view, suitable for JSON serialization.

        Returns:
            A dict with the record's fields; ``attributes`` becomes a
            mapping and ``worker`` is included only when set.
        """
        data: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "stage": self.stage,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }
        if self.worker is not None:
            data["worker"] = self.worker
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Args:
            data: A mapping with the fields emitted by :meth:`to_dict`.

        Returns:
            The reconstructed :class:`SpanRecord`.
        """
        return cls(
            span_id=int(data["span_id"]),
            parent_id=(
                None if data.get("parent_id") is None else int(data["parent_id"])
            ),
            name=str(data["name"]),
            stage=data.get("stage"),
            start=float(data["start"]),
            duration=float(data["duration"]),
            attributes=tuple(
                sorted((str(k), v) for k, v in dict(data.get("attributes", {})).items())
            ),
            worker=(
                None if data.get("worker") is None else int(data["worker"])
            ),
        )


class Span:
    """An open span: a context manager handle produced by :meth:`Tracer.span`.

    Entering starts the clock and pushes the span on the tracer's
    stack (so nested spans record it as their parent); exiting pops it
    and appends the finished :class:`SpanRecord`.  A span that exits
    through an exception records an ``error`` attribute with the
    exception type name before re-raising.
    """

    __slots__ = ("_tracer", "name", "stage", "_attributes", "_span_id", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, stage: str | None, attributes: dict
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.stage = stage
        self._attributes = attributes
        self._span_id = 0
        self._start = 0.0

    def set(self, **attributes: Any) -> "Span":
        """Attach or overwrite attributes on the open span.

        Args:
            **attributes: Key/value pairs recorded with the span.

        Returns:
            The span itself, for chaining.
        """
        self._attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self._span_id = tracer._new_span_id()
        tracer._stack.append(self._span_id)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = perf_counter() - self._start
        tracer = self._tracer
        stack = tracer._stack
        stack.pop()
        if exc_type is not None:
            self._attributes["error"] = exc_type.__name__
        tracer._finish(
            SpanRecord(
                span_id=self._span_id,
                parent_id=stack[-1] if stack else None,
                name=self.name,
                stage=self.stage,
                start=self._start - tracer._epoch,
                duration=duration,
                attributes=tuple(sorted(self._attributes.items())),
            )
        )
        return False


class _NullSpan:
    """The do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        """Ignore the attributes; return self for chaining."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a near-free no-op.

    Instrumented code never branches on "is tracing on?" — it calls
    the same methods on whatever tracer is active, and this class makes
    the disabled path cost one attribute lookup and one call per
    instrumentation point (no allocation, no clock reads).
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, stage: str | None = None, **attributes: Any):
        """Return the shared no-op span context manager."""
        return _NULL_SPAN

    def add(self, name: str, value: float = 1) -> None:
        """Discard a counter increment."""

    def gauge(self, name: str, value: float) -> None:
        """Discard a gauge observation."""

    def absorb(
        self,
        records: Iterable[SpanRecord],
        counters: Mapping[str, float] = (),
        gauges: Mapping[str, float] = (),
        worker: int | None = None,
    ) -> None:
        """Discard a worker's exported trace state."""

    def export(self) -> tuple[tuple, dict, dict]:
        """Return an empty export triple ``((), {}, {})``."""
        return ((), {}, {})

    def records(self) -> tuple[SpanRecord, ...]:
        """Return no records."""
        return ()

    def flush(self) -> None:
        """No sinks to flush."""


#: The process-wide disabled tracer; the default ambient tracer.
NULL_TRACER = NullTracer()


class Tracer:
    """Records hierarchical spans, counters and gauges for one session.

    Args:
        sinks: Objects with an ``emit(record)`` method (and optionally
            ``close()``) that receive every finished span record —
            see :mod:`repro.observability.sinks`.
        max_spans: Retained-record cap; further spans still update
            counters and sinks but are dropped from the in-memory list
            (the drop count is reported as ``dropped_spans``).

    The tracer is deliberately single-threaded per session, matching
    the engine's execution model; worker processes use their own
    tracers and fold back through :meth:`absorb`.
    """

    __slots__ = (
        "sinks",
        "counters",
        "gauges",
        "max_spans",
        "dropped_spans",
        "_epoch",
        "_records",
        "_stack",
        "_last_id",
    )

    enabled = True

    def __init__(
        self, *, sinks: Iterable[Any] = (), max_spans: int = DEFAULT_MAX_SPANS
    ) -> None:
        self.sinks = tuple(sinks)
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._epoch = perf_counter()
        self._records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._last_id = 0

    # -- span lifecycle -------------------------------------------------

    def _new_span_id(self) -> int:
        self._last_id += 1
        return self._last_id

    def span(self, name: str, stage: str | None = None, **attributes: Any) -> Span:
        """Open a span; use as a context manager.

        Args:
            name: Dotted span name, ``<module-area>.<operation>``.
            stage: Optional canonical pipeline stage from
                :data:`STAGES`; stage-tagged spans feed the per-stage
                aggregation of the trace report.
            **attributes: Initial attributes recorded with the span.

        Returns:
            An un-entered :class:`Span`; timing starts at ``__enter__``.
        """
        return Span(self, name, stage, dict(attributes))

    def _finish(self, record: SpanRecord) -> None:
        if len(self._records) < self.max_spans:
            self._records.append(record)
        else:
            self.dropped_spans += 1
        for sink in self.sinks:
            sink.emit(record)

    # -- counters and gauges --------------------------------------------

    def add(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` onto the named counter.

        Args:
            name: Dotted counter name, e.g. ``"simulate.configurations"``.
            value: Increment (defaults to 1); counters only grow.
        """
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest observation of the named gauge.

        Args:
            name: Dotted gauge name, e.g. ``"naive.candidate_space"``.
            value: The observed value; the last write wins.
        """
        self.gauges[name] = value

    # -- worker fold-back ------------------------------------------------

    def export(self) -> tuple[tuple[SpanRecord, ...], dict, dict]:
        """The picklable trace state shipped from a worker to the parent.

        Returns:
            ``(records, counters, gauges)`` — plain tuples/dicts that
            :meth:`absorb` on the parent's tracer accepts verbatim.
        """
        return tuple(self._records), dict(self.counters), dict(self.gauges)

    def absorb(
        self,
        records: Iterable[SpanRecord],
        counters: Mapping[str, float] = (),
        gauges: Mapping[str, float] = (),
        worker: int | None = None,
    ) -> None:
        """Fold a worker's exported trace state into this tracer.

        Span ids are re-issued to avoid collisions, the worker's root
        spans are re-parented under this tracer's current span, and
        every record is tagged with ``worker`` (the worker pid).  Span
        ``start`` offsets stay relative to the worker's own epoch.

        Args:
            records: :class:`SpanRecord` values from :meth:`export`.
            counters: Worker counters, accumulated via :meth:`add`.
            gauges: Worker gauges, recorded via :meth:`gauge`.
            worker: The worker's pid, stamped on absorbed records.
        """
        records = tuple(records)
        parent = self._stack[-1] if self._stack else None
        id_map = {record.span_id: self._new_span_id() for record in records}
        for record in records:
            remapped_parent = (
                id_map.get(record.parent_id, parent)
                if record.parent_id is not None
                else parent
            )
            self._finish(
                replace(
                    record,
                    span_id=id_map[record.span_id],
                    parent_id=remapped_parent,
                    worker=record.worker if record.worker is not None else worker,
                )
            )
        for name, value in dict(counters).items():
            self.add(name, value)
        for name, value in dict(gauges).items():
            self.gauge(name, value)

    # -- access ----------------------------------------------------------

    def records(self) -> tuple[SpanRecord, ...]:
        """All retained span records, in completion (exit) order."""
        return tuple(self._records)

    def flush(self) -> None:
        """Close every sink that exposes a ``close()`` hook."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


# -- the ambient tracer ------------------------------------------------

_ACTIVE: ContextVar["Tracer | NullTracer"] = ContextVar(
    "repro_active_tracer", default=NULL_TRACER
)


def current_tracer() -> "Tracer | NullTracer":
    """The tracer instrumentation should write to right now.

    Layers that receive no session/tracer argument (the FSA simulator,
    the compiler, worker shard runs) call this; it defaults to
    :data:`NULL_TRACER` so untraced code paths stay near-free.

    Returns:
        The active :class:`Tracer`, or :data:`NULL_TRACER`.
    """
    return _ACTIVE.get()


@contextmanager
def activate(tracer: "Tracer | NullTracer"):
    """Make ``tracer`` the ambient tracer for the enclosed block.

    Args:
        tracer: The tracer :func:`current_tracer` should return inside
            the ``with`` block.

    Yields:
        The activated tracer.
    """
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
