"""Executing normalized plans against a database.

A :class:`~repro.ir.plan.ConjunctivePlan` executes exactly like the
legacy conjunctive planner — bindings flow through join / generate /
filter steps — except the step *order* comes from the plan (the cost
model decided it at normalization time) instead of being re-derived
greedily per run.  A :class:`~repro.ir.plan.UnionPlan` executes each
branch independently and unions the answers; branch independence is
what lets the ``auto`` strategy parallelize expensive branches while
running cheap ones in-process.

Head variables a branch does not mention are padded with the full
truncation domain ``Σ^{≤cap}`` — the truncation semantics of a
disjunct that leaves an answer variable unconstrained.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.alphabet import Alphabet
from repro.core.database import Database
from repro.core.planner import (
    Binding,
    _filter_bound,
    _generate,
    _join_relational,
)
from repro.errors import EvaluationError
from repro.ir.plan import ConjunctivePlan, NaivePlan, QueryPlan


def execute_branch(
    branch: ConjunctivePlan,
    head: tuple,
    db: Database,
    alphabet: Alphabet,
    cap: int,
    session=None,
    executor=None,
    domain: tuple[str, ...] | None = None,
    restrict: "dict[int, frozenset[tuple[str, ...]]] | None" = None,
) -> frozenset[tuple[str, ...]]:
    """Run one conjunctive branch and project to the full head.

    Args:
        branch: The ordered branch to execute.
        head: The query's full answer-variable tuple, in order.
        db: The database.
        alphabet: The query alphabet.
        cap: The truncation / generation bound.
        session: An optional :class:`repro.engine.QueryEngine` backing
            compile / specialize / generate / domain caches.
        executor: An optional :class:`repro.parallel.ParallelExecutor`
            sharding the generate steps.
        domain: The padding domain for head variables the branch does
            not mention; defaults to ``Σ^{≤cap}``.
        restrict: Step-index → row-set overrides for positive
            relational steps — the semi-naive maintenance hook
            (:meth:`repro.delta.MaterializedStore.maintain`): the
            restricted step scans only the given rows while every
            other step runs against the full database.

    Returns:
        The branch's answer tuples in head order, with head variables
        the branch does not mention padded by the domain.
    """
    from repro.observability import current_tracer

    tracer = current_tracer()
    bindings: list[Binding] = [{}]
    for index, step in enumerate(branch.steps):
        restricted = restrict.get(index) if restrict else None
        with tracer.span(
            f"execute.{step.action}", stage="execute", bindings=len(bindings)
        ):
            if step.action == "filter":
                bindings = _filter_bound(
                    bindings, step, db, alphabet, session,
                    restrict_rows=restricted,
                )
            elif step.action == "join":
                bindings = _join_relational(
                    bindings, step, db, restrict_rows=restricted
                )
            else:
                bindings = _generate(
                    bindings, step, alphabet, cap, session, executor
                )
        if not bindings:
            return frozenset()
        unique = {tuple(sorted(b.items())): b for b in bindings}
        bindings = list(unique.values())
    projected = {
        tuple(binding[var] for var in branch.bound_head)
        for binding in bindings
    }
    if not branch.free_head:
        return frozenset(projected)
    if domain is None:
        if session is not None:
            domain = session.domain_for(alphabet, cap)
        else:
            domain = tuple(alphabet.strings(cap))
    padded_order = branch.bound_head + branch.free_head
    order = [padded_order.index(var) for var in head]
    answers = set()
    for row in projected:
        stack = [row]
        for _ in branch.free_head:
            stack = [base + (value,) for base in stack for value in domain]
        for padded in stack:
            answers.add(tuple(padded[i] for i in order))
    return frozenset(answers)


def execute_plan(
    plan: QueryPlan,
    db: Database,
    alphabet: Alphabet,
    cap: int,
    session=None,
    executor=None,
    executor_for: Callable[[ConjunctivePlan], object] | None = None,
    domain: tuple[str, ...] | None = None,
) -> frozenset[tuple[str, ...]]:
    """Execute a normalized plan and union the branch answers.

    Args:
        plan: The normalized plan; its root must not be a
            :class:`NaivePlan` (engines route those to the naive
            strategy themselves).
        db: The database.
        alphabet: The query alphabet.
        cap: The truncation / generation bound.
        session: An optional engine session backing the caches.
        executor: A parallel executor applied to every branch.
        executor_for: A per-branch executor chooser; overrides
            ``executor`` when given (return ``None`` for in-process).
        domain: The padding domain for unmentioned head variables;
            defaults to ``Σ^{≤cap}``.

    Returns:
        The union of branch answers in head order.

    Raises:
        EvaluationError: If the plan's root is a naive fallback.
    """
    from repro.observability import current_tracer

    if isinstance(plan.root, NaivePlan):
        raise EvaluationError(
            f"plan fell back to naive evaluation ({plan.root.reason}); "
            "route it to the naive strategy instead"
        )
    tracer = current_tracer()
    answers: set[tuple[str, ...]] = set()
    branches = plan.branches()
    for index, branch in enumerate(branches):
        chosen = executor_for(branch) if executor_for is not None else executor
        with tracer.span(
            "execute.branch",
            stage="execute",
            branch=index,
            steps=len(branch.steps),
        ):
            answers |= execute_branch(
                branch, plan.head, db, alphabet, cap, session, chosen, domain
            )
    return frozenset(answers)
