"""Deterministic plan rendering for the CLI's ``--explain`` flag.

Everything printed here is golden-tested, so the renderer avoids any
source of nondeterminism: formulae and algebra expressions render via
their (deterministic) ``__str__``, machines render as state/transition
*counts* (their reprs would expose hash ordering), and floats render
through :func:`_num` which never emits platform-dependent noise.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    Diff,
    Expression,
    Product,
    Project,
    Rel,
    Select,
    SigmaL,
    SigmaStar,
    Union,
)
from repro.errors import EvaluationError, SafetyError
from repro.fsa.machine import FSA
from repro.ir.plan import ConjunctivePlan, NaivePlan, QueryPlan, UnionPlan

#: Cost-model cap used for estimates when no bound is certifiable.
FALLBACK_EXPLAIN_CAP = 4


def _num(value: float) -> str:
    """Render an estimate compactly and platform-independently."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3g}"


def machine_label(machine: FSA) -> str:
    """A machine as counts, e.g. ``M(7s/12t)`` — stable across runs."""
    return f"M({len(machine.states)}s/{len(machine.transitions)}t)"


def _rules_line(rules: tuple[tuple[str, int], ...]) -> str:
    if not rules:
        return "(none)"
    return ", ".join(f"{name}×{count}" for name, count in rules)


def render_plan(plan: QueryPlan) -> str:
    """The normalized plan tree with per-node cost estimates.

    Args:
        plan: The plan to render.

    Returns:
        A multi-line string; deterministic for equal plans.
    """
    lines = [
        f"head: ({', '.join(str(v) for v in plan.head)})",
        f"source: {plan.source}",
        f"normalize rules: {_rules_line(plan.rules)}",
    ]
    root = plan.root
    if isinstance(root, NaivePlan):
        lines.append(f"plan: naive fallback [{root.reason}]")
        lines.append(f"  formula: {root.formula}")
        return "\n".join(lines)
    branches = plan.branches()
    if isinstance(root, UnionPlan):
        lines.append(
            f"plan: union of {len(branches)} branches "
            f"est_cost={_num(root.est_cost)}"
        )
    else:
        lines.append(f"plan: single branch est_cost={_num(root.est_cost)}")
    for index, branch in enumerate(branches):
        lines.extend(_render_branch(branch, index))
    return "\n".join(lines)


def _render_branch(branch: ConjunctivePlan, index: int) -> list[str]:
    lines = [
        f"  branch {index}: est_cost={_num(branch.est_cost)} "
        f"est_rows={_num(branch.est_rows)}"
    ]
    if branch.quantified:
        names = ", ".join(str(v) for v in branch.quantified)
        lines.append(f"    ∃ {names}")
    for step in branch.steps:
        binds = (
            f" binds=({', '.join(str(v) for v in step.binds)})"
            if step.binds
            else ""
        )
        prefilter = ""
        if step.prefilter:
            rendered = ", ".join(
                f"col{column}∋{'+'.join(repr(f) for f in factors)}"
                for column, factors in step.prefilter
            )
            prefilter = f" prefilter[{rendered}]"
        lines.append(
            f"    {step.describe()}{binds}{prefilter} "
            f"cost={_num(step.est_cost)} rows={_num(step.est_rows)}"
        )
    if branch.free_head:
        names = ", ".join(str(v) for v in branch.free_head)
        lines.append(f"    pad Σ^≤cap for ({names})")
    return lines


def render_expression(expression: Expression, indent: int = 0) -> str:
    """An algebra expression as an indented tree.

    Args:
        expression: The expression to render.
        indent: The starting indentation level.

    Returns:
        A multi-line string with machines shown as count labels.
    """
    pad = "  " * indent
    if isinstance(expression, Rel):
        return f"{pad}Rel {expression.name}/{expression.arity}"
    if isinstance(expression, SigmaStar):
        return f"{pad}Σ*"
    if isinstance(expression, SigmaL):
        return f"{pad}Σ^≤{expression.bound}"
    if isinstance(expression, Select):
        inner = render_expression(expression.inner, indent + 1)
        return f"{pad}Select {machine_label(expression.machine)}\n{inner}"
    if isinstance(expression, Project):
        columns = ",".join(map(str, expression.columns))
        inner = render_expression(expression.inner, indent + 1)
        return f"{pad}Project ({columns})\n{inner}"
    if isinstance(expression, (Union, Diff, Product)):
        name = type(expression).__name__
        left = render_expression(expression.left, indent + 1)
        right = render_expression(expression.right, indent + 1)
        return f"{pad}{name}\n{left}\n{right}"
    raise TypeError(f"not an algebra expression: {expression!r}")


def explain_query(session, query, db, length: int | None = None) -> str:
    """The full ``--explain`` text for one query against one database.

    Composes the normalized plan (with cost estimates from the
    database's relation sizes and the certified or explicit bound) and
    — when the query is algebra-translatable — the optimized algebra
    expression with its fired rewrite rules.

    Args:
        session: The :class:`repro.engine.QueryEngine` session.
        query: The query to explain.
        db: The database supplying relation sizes.
        length: An explicit truncation bound; ``None`` uses the
            certified limit when one exists.

    Returns:
        The deterministic multi-line explanation.
    """
    lines = []
    if length is not None:
        cap = length
        lines.append(f"length: {cap} (explicit)")
    else:
        try:
            cap = session.certified_length(query, db)
            lines.append(f"length: {cap} (certified)")
        except SafetyError:
            cap = FALLBACK_EXPLAIN_CAP
            lines.append(
                f"length: not certified (estimates assume {cap})"
            )
    plan = session.query_plan(query, db, cap)
    lines.append(render_plan(plan))
    try:
        expression, rules = session.optimized_translation(query)
    except EvaluationError:
        lines.append("algebra: not translatable (head ≠ free variables)")
    else:
        lines.append(f"optimize rules: {_rules_line(rules)}")
        lines.append("algebra:")
        lines.append(render_expression(expression, 1))
    return "\n".join(lines)
