"""The logical-plan IR and optimizer pass framework.

One normalized representation — :class:`QueryPlan` — that every
evaluation strategy consumes:

* :mod:`repro.ir.plan` — the IR nodes (conjunctive branches, unions,
  the observable naive fallback);
* :mod:`repro.ir.cost` — the cost model fed from per-column storage
  statistics (distinct counts, length histograms) and the certified
  truncation bound;
* :mod:`repro.ir.normalize` — calculus-level passes (simplify, De
  Morgan disjunct splitting, quantifier hoisting, cost-ranked conjunct
  ordering);
* :mod:`repro.ir.rewrite` — algebra-level passes (selection pushdown,
  selection fusion via the sequencing product, projection pushdown,
  machine minimization) plus the index-prefilter pushdown over
  normalized plans (mandatory selection factors pushed onto join
  steps for n-gram index probing);
* :mod:`repro.ir.execute` — plan execution shared by the planner,
  parallel and auto strategies;
* :mod:`repro.ir.explain` — the deterministic ``--explain`` renderer.
"""

from repro.ir.cost import CostModel
from repro.ir.execute import execute_branch, execute_plan
from repro.ir.explain import explain_query, render_expression, render_plan
from repro.ir.normalize import build_query_plan, simplify, split_disjuncts
from repro.ir.plan import (
    ConjunctivePlan,
    NaivePlan,
    PlanStep,
    QueryPlan,
    UnionPlan,
)
from repro.ir.rewrite import (
    attach_index_prefilters,
    optimize_expression,
    required_factors,
    translate_branches,
)

__all__ = [
    "ConjunctivePlan",
    "CostModel",
    "NaivePlan",
    "PlanStep",
    "QueryPlan",
    "UnionPlan",
    "attach_index_prefilters",
    "build_query_plan",
    "execute_branch",
    "execute_plan",
    "explain_query",
    "optimize_expression",
    "required_factors",
    "render_expression",
    "render_plan",
    "simplify",
    "split_disjuncts",
    "translate_branches",
]
