"""The algebra expression rewriter: optimization passes over plans.

Four passes run in a fixed order, each a bottom-up traversal applied
to its own fixpoint:

1. **select pushdown** — ``σ_A`` moves through ``Union`` always and
   through ``Product`` when the machine provably ignores one factor's
   tapes (every transition reads ``⊢`` and stays there — the shape
   :func:`~repro.fsa.ops.widen` produces), narrowing the machine with
   :func:`~repro.fsa.ops.drop_tape`.
2. **select fusion** — stacked ``σ_A(σ_B(E))`` fuses into one
   selection by the sequencing product ``seq(A, B)``
   (:mod:`repro.fsa.product`); *generative fusion* additionally lifts
   a ``σ_A((Σ*)^k)`` product factor into the enclosing selection so
   the generator explores one constrained language instead of a cross
   product.
3. **projection pass** — stacked projections fuse, identity
   projections vanish, projections push through ``Union`` and through
   ``Product`` factors that can never be empty.
4. **select minimization** — selection machines are replaced by their
   bisimulation quotients when strictly smaller (via the session's
   cache when one is attached).

Every rewrite preserves the truncation-evaluation answer set exactly;
the differential tests in ``tests/ir/`` hold the passes to that.

The module also hosts the *index-prefilter pushdown* pass over
normalized :class:`~repro.ir.plan.QueryPlan`\\ s:
:func:`required_factors` derives, from a selection machine's
transition graph, substrings every accepted value of one tape must
contain (its **mandatory factors**), and
:func:`attach_index_prefilters` pushes those factors down onto the
plan's join steps, where storage backends with positional n-gram
indexes (:mod:`repro.storage.ngram`) use them to shrink the scanned
row set before exact kernel acceptance.
"""

from __future__ import annotations

from dataclasses import replace

from repro.algebra.expressions import (
    Diff,
    Expression,
    Product,
    Project,
    Select,
    SigmaL,
    SigmaStar,
    Union,
)
from repro.core.alphabet import LEFT_END
from repro.core.syntax import RelAtom, StringAtom
from repro.fsa.machine import FSA, RIGHT_MOVE, STAY
from repro.fsa.ops import drop_tape, widen
from repro.fsa.product import fusion_supported, sequence_machines
from repro.ir.plan import ConjunctivePlan, QueryPlan, UnionPlan

#: Safety cap on whole-pass fixpoint iterations.
MAX_PASS_ROUNDS = 16


class RewriteContext:
    """Carries the optional engine session and the rule-fire counts."""

    def __init__(self, session=None) -> None:
        self.session = session
        self.counts: dict[str, int] = {}

    def fire(self, rule: str) -> None:
        """Record one firing of ``rule``."""
        self.counts[rule] = self.counts.get(rule, 0) + 1

    def fused(self, first: FSA, second: FSA) -> FSA:
        """``L(first) ∩ L(second)``, served from the session when present.

        Sessionless fusion mirrors
        :meth:`repro.engine.QueryEngine.fused_select`: in-fragment
        pairs fuse through the determinized scan-table product so the
        result stays a one-pass kernel-v2 machine, everything else
        through the two-way sequencing product.
        """
        if self.session is not None:
            return self.session.fused_select(first, second)
        from repro.fsa.determinize import lockstep_intersection

        fused = lockstep_intersection(first, second)
        if fused is not None:
            return fused
        return sequence_machines(first, second)

    def minimized(self, machine: FSA) -> FSA:
        """The bisimulation quotient, served from the session when present."""
        if self.session is not None:
            return self.session.minimized_machine(machine)
        from repro.fsa.minimize import bisimulation_quotient

        return bisimulation_quotient(machine)

    def snapshot(self) -> tuple[tuple[str, int], ...]:
        """The ``(rule, count)`` pairs, sorted by rule name."""
        return tuple(sorted(self.counts.items()))


# ---------------------------------------------------------------------------
# structural helpers
# ---------------------------------------------------------------------------


def _ignored_tapes(machine: FSA) -> frozenset[int]:
    """Tapes the machine never reads: always ``⊢`` with a stay move."""
    ignored = set(range(machine.arity))
    for transition in machine.transitions:
        for tape in tuple(ignored):
            if (
                transition.reads[tape] != LEFT_END
                or transition.moves[tape] != STAY
            ):
                ignored.discard(tape)
    return frozenset(ignored)


def _drop_tapes(machine: FSA, tapes: frozenset[int]) -> FSA:
    for tape in sorted(tapes, reverse=True):
        machine = drop_tape(machine, tape)
    return machine


def _all_sigma(expression: Expression) -> bool:
    """Is the expression a (product of) domain symbol(s) only?"""
    if isinstance(expression, (SigmaStar, SigmaL)):
        return True
    if isinstance(expression, Product):
        return _all_sigma(expression.left) and _all_sigma(expression.right)
    return False


def _never_empty(expression: Expression) -> bool:
    """Conservatively: can the expression never evaluate to ∅?

    Domain symbols always contain ``ε``; products of never-empty
    factors are never empty.  Everything else counts as possibly
    empty.
    """
    return _all_sigma(expression)


def _product_factors(expression: Expression) -> list[Expression]:
    if isinstance(expression, Product):
        return _product_factors(expression.left) + _product_factors(
            expression.right
        )
    return [expression]


def _reproduct(factors: list[Expression]) -> Expression:
    result = factors[0]
    for factor in factors[1:]:
        result = Product(result, factor)
    return result


def _map_children(expression: Expression, fn) -> Expression:
    if isinstance(expression, Union):
        return Union(fn(expression.left), fn(expression.right))
    if isinstance(expression, Diff):
        return Diff(fn(expression.left), fn(expression.right))
    if isinstance(expression, Product):
        return Product(fn(expression.left), fn(expression.right))
    if isinstance(expression, Project):
        return Project(fn(expression.inner), expression.columns)
    if isinstance(expression, Select):
        return Select(fn(expression.inner), expression.machine)
    return expression


def _bottom_up(expression: Expression, rule, context: RewriteContext):
    rewritten = _map_children(
        expression, lambda child: _bottom_up(child, rule, context)
    )
    for _ in range(MAX_PASS_ROUNDS):
        replacement = rule(rewritten, context)
        if replacement is None:
            return rewritten
        rewritten = _map_children(
            replacement, lambda child: _bottom_up(child, rule, context)
        )
    return rewritten


# ---------------------------------------------------------------------------
# pass 1: selection pushdown
# ---------------------------------------------------------------------------


def _select_pushdown(
    expression: Expression, context: RewriteContext
) -> Expression | None:
    if not isinstance(expression, Select):
        return None
    inner = expression.inner
    machine = expression.machine
    if isinstance(inner, Union):
        context.fire("select-pushdown-union")
        return Union(
            Select(inner.left, machine), Select(inner.right, machine)
        )
    if isinstance(inner, Product):
        ignored = _ignored_tapes(machine)
        left_span = frozenset(range(inner.left.arity))
        right_span = frozenset(range(inner.left.arity, inner.arity))
        if right_span and right_span <= ignored:
            context.fire("select-pushdown-product")
            return Product(
                Select(inner.left, _drop_tapes(machine, right_span)),
                inner.right,
            )
        if left_span and left_span <= ignored:
            context.fire("select-pushdown-product")
            return Product(
                inner.left,
                Select(inner.right, _drop_tapes(machine, left_span)),
            )
    return None


# ---------------------------------------------------------------------------
# pass 2: selection fusion
# ---------------------------------------------------------------------------


def _select_fuse(
    expression: Expression, context: RewriteContext
) -> Expression | None:
    if not isinstance(expression, Select):
        return None
    inner = expression.inner
    machine = expression.machine
    if isinstance(inner, Select) and fusion_supported(
        machine, inner.machine
    ):
        context.fire("select-fuse")
        return Select(inner.inner, context.fused(machine, inner.machine))
    if isinstance(inner, Product):
        factors = _product_factors(inner)
        offset = 0
        for index, factor in enumerate(factors):
            if (
                isinstance(factor, Select)
                and _all_sigma(factor.inner)
                and factor.machine.alphabet == machine.alphabet
            ):
                lifted = widen(
                    factor.machine,
                    inner.arity,
                    tuple(range(offset, offset + factor.arity)),
                )
                if fusion_supported(machine, lifted):
                    context.fire("generative-fuse")
                    replaced = list(factors)
                    replaced[index] = factor.inner
                    # The outer (constraining) machine runs first so
                    # generation explores its language, not the free
                    # product of the lifted factor's domains.
                    return Select(
                        Select(_reproduct(replaced), lifted), machine
                    )
            offset += factor.arity
    return None


# ---------------------------------------------------------------------------
# pass 3: projections
# ---------------------------------------------------------------------------


def _project_pass(
    expression: Expression, context: RewriteContext
) -> Expression | None:
    if not isinstance(expression, Project):
        return None
    inner = expression.inner
    columns = expression.columns
    if isinstance(inner, Project):
        context.fire("project-fuse")
        return Project(
            inner.inner, tuple(inner.columns[c] for c in columns)
        )
    if columns == tuple(range(inner.arity)):
        context.fire("project-identity")
        return inner
    if isinstance(inner, SigmaStar) and columns == ():
        context.fire("project-trivial")
        return Project(SigmaL(0), ())
    if isinstance(inner, Union):
        context.fire("project-pushdown-union")
        return Union(
            Project(inner.left, columns), Project(inner.right, columns)
        )
    if isinstance(inner, Product):
        left_arity = inner.left.arity
        if all(c < left_arity for c in columns) and _never_empty(
            inner.right
        ):
            context.fire("project-pushdown-product")
            return Project(inner.left, columns)
        if all(c >= left_arity for c in columns) and _never_empty(
            inner.left
        ):
            context.fire("project-pushdown-product")
            return Project(
                inner.right, tuple(c - left_arity for c in columns)
            )
    return None


# ---------------------------------------------------------------------------
# pass 4: machine minimization
# ---------------------------------------------------------------------------


def _select_minimize(
    expression: Expression, context: RewriteContext
) -> Expression | None:
    if not isinstance(expression, Select):
        return None
    smaller = context.minimized(expression.machine)
    if len(smaller.states) < len(expression.machine.states):
        context.fire("select-minimize")
        return Select(expression.inner, smaller)
    return None


_PASSES = (_select_pushdown, _select_fuse, _project_pass, _select_minimize)


def optimize_expression(
    expression: Expression, session=None
) -> tuple[Expression, tuple[tuple[str, int], ...]]:
    """Run all rewrite passes over an algebra expression.

    Args:
        expression: The translated expression to optimize.
        session: An optional :class:`repro.engine.QueryEngine`; fused
            and minimized machines are then served from its caches.

    Returns:
        The ``(optimized expression, fired rules)`` pair; the rule list
        is ``(name, count)`` sorted by name and empty when nothing
        applied.
    """
    context = RewriteContext(session)
    for rewrite_pass in _PASSES:
        for _ in range(MAX_PASS_ROUNDS):
            rewritten = _bottom_up(expression, rewrite_pass, context)
            if rewritten == expression:
                break
            expression = rewritten
    return expression, context.snapshot()


# ---------------------------------------------------------------------------
# branch-aware translation
# ---------------------------------------------------------------------------


def translate_branches(formula, head, alphabet, compiler=None):
    """Translate a disjunctive formula branch-by-branch.

    Splits the (already simplified) formula into its disjuncts, runs
    the Theorem 4.2 translation on each branch against the branch's
    own free variables, pads head variables a branch does not mention
    with ``Σ*`` columns, reorders every branch to head order and
    unions them.  This turns the paper's ``¬(¬φ ∧ ¬ψ)`` disjunction
    encoding — whose direct translation is a doubly-nested
    difference — into a plain union of per-branch plans the rewriter
    can push selections into.

    Args:
        formula: The simplified calculus formula.
        head: The full answer-variable tuple; must equal the formula's
            free variables as a set.
        alphabet: The query alphabet.
        compiler: An optional compile cache (the session's
            :meth:`~repro.engine.QueryEngine.compile`).

    Returns:
        The union expression, or ``None`` when the formula has a
        single branch (plain translation is then identical) or the
        branch split exceeds the budget.
    """
    from repro.algebra.expressions import product_of
    from repro.algebra.translate import calculus_to_algebra
    from repro.core.syntax import free_variables
    from repro.ir.normalize import split_disjuncts

    branches = split_disjuncts(formula)
    if branches is None or len(branches) <= 1:
        return None
    head = tuple(head)
    parts = []
    for branch in branches:
        mentioned = free_variables(branch)
        branch_head = tuple(v for v in head if v in mentioned)
        missing = tuple(v for v in head if v not in mentioned)
        translated = calculus_to_algebra(
            branch, branch_head, alphabet, compiler=compiler
        )
        if missing:
            padded = product_of(
                [translated] + [SigmaStar() for _ in missing]
            )
            layout = branch_head + missing
            translated = Project(
                padded, tuple(layout.index(v) for v in head)
            )
        parts.append(translated)
    union = parts[0]
    for part in parts[1:]:
        union = Union(union, part)
    return union


# ---------------------------------------------------------------------------
# Index-prefilter pushdown over normalized plans
# ---------------------------------------------------------------------------

#: Machines with more transitions than this skip factor derivation —
#: the mandatory-edge test is quadratic in the transition count and
#: planning time must stay bounded.
MAX_PREFILTER_TRANSITIONS = 400

#: Cap on derived factor length; chains longer than this stop growing.
MAX_FACTOR_LENGTH = 8

#: Factors shorter than this are not pushed down — they prune too
#: little and are shorter than any useful gram size anyway.
MIN_PREFILTER_FACTOR = 2


def _reaches_final_avoiding(machine: FSA, excluded) -> bool:
    """Whether some start→final state path avoids transition ``excluded``."""
    if machine.start in machine.finals:
        return True
    seen = {machine.start}
    frontier = [machine.start]
    while frontier:
        state = frontier.pop()
        for transition in machine.outgoing(state):
            if transition is excluded or transition.target in seen:
                continue
            if transition.target in machine.finals:
                return True
            seen.add(transition.target)
            frontier.append(transition.target)
    return False


def _extend_factor(
    machine: FSA, tape: int, edge, sigma: frozenset, limit: int
) -> str:
    """Grow a mandatory symbol rightward into a longer mandatory factor.

    Starting from a mandatory transition reading ``σ ∈ Σ`` on ``tape``,
    the factor extends by one symbol whenever every current transition
    advances the tape's head (``+1``), every reachable target state is
    non-final with at least one outgoing transition, and *all* those
    outgoing transitions agree on the next tape symbol — then every
    accepting run that crosses the mandatory edge must read that symbol
    at the next position, so the concatenation is itself mandatory.
    """
    factor = edge.reads[tape]
    edges = (edge,)
    while len(factor) < limit:
        if any(t.moves[tape] != RIGHT_MOVE for t in edges):
            break
        targets = {t.target for t in edges}
        if targets & machine.finals:
            break
        following: list = []
        for state in targets:
            outgoing = machine.outgoing(state)
            if not outgoing:
                return factor
            following.extend(outgoing)
        symbols = {t.reads[tape] for t in following}
        if len(symbols) != 1:
            break
        symbol = symbols.pop()
        if symbol not in sigma:
            break
        factor += symbol
        edges = tuple(following)
    return factor


def required_factors(
    machine: FSA, tape: int, limit: int = MAX_FACTOR_LENGTH
) -> tuple[str, ...]:
    """Substrings every value accepted on ``tape`` must contain.

    A transition is *mandatory* when no start→final path in the pruned
    machine avoids it; a mandatory transition reading ``σ ∈ Σ`` on
    ``tape`` proves every accepted value of that tape contains ``σ``
    (heads only read alphabet symbols on content positions).  Each
    mandatory symbol is then extended rightward into the longest
    provably-mandatory chain (:func:`_extend_factor`).

    The result is sound for *pruning*: a stored value that lacks one of
    the returned substrings can never satisfy the selection, whatever
    the other tapes hold.  It is deliberately incomplete — machines
    with alternative accepting paths simply yield fewer (or no)
    factors.

    Args:
        machine: The compiled selection machine.
        tape: The tape index of the variable being constrained.
        limit: Maximum factor length to derive.

    Returns:
        The deduplicated factors, sorted; factors that are substrings
        of longer derived factors are dropped.
    """
    machine = machine.pruned()
    if not machine.finals:
        return ()
    if len(machine.transitions) > MAX_PREFILTER_TRANSITIONS:
        return ()
    sigma = frozenset(machine.alphabet.symbols)
    found: set[str] = set()
    for edge in machine.transitions:
        if edge.reads[tape] not in sigma:
            continue
        if _reaches_final_avoiding(machine, edge):
            continue
        found.add(_extend_factor(machine, tape, edge, sigma, limit))
    kept: list[str] = []
    for factor in sorted(found, key=lambda f: (-len(f), f)):
        if not any(factor in longer for longer in kept):
            kept.append(factor)
    return tuple(sorted(kept))


def _branch_prefilters(
    branch: ConjunctivePlan, alphabet, compiler, model
) -> tuple[ConjunctivePlan, int]:
    variable_factors: dict = {}
    for step in branch.steps:
        if step.negated or not isinstance(step.atom, StringAtom):
            continue
        compiled = compiler(step.atom.formula, alphabet)
        for variable in compiled.variables:
            factors = required_factors(
                compiled.fsa, compiled.tape_of(variable)
            )
            useful = [f for f in factors if len(f) >= MIN_PREFILTER_FACTOR]
            if useful:
                variable_factors.setdefault(variable, set()).update(useful)
    if not variable_factors:
        return branch, 0
    attached = 0
    steps = []
    for step in branch.steps:
        if (
            step.action == "join"
            and isinstance(step.atom, RelAtom)
            and not step.negated
        ):
            prefilter = []
            for position, argument in enumerate(step.atom.args):
                factors = variable_factors.get(argument)
                if factors:
                    prefilter.append((position, tuple(sorted(factors))))
            if prefilter:
                attached += 1
                est_cost, est_rows = step.est_cost, step.est_rows
                if model is not None:
                    est_cost, est_rows = model.prefilter_estimate(
                        est_cost,
                        est_rows,
                        sum(len(factors) for _, factors in prefilter),
                    )
                step = replace(
                    step,
                    prefilter=tuple(prefilter),
                    est_cost=est_cost,
                    est_rows=est_rows,
                )
        steps.append(step)
    return replace(branch, steps=tuple(steps)), attached


def attach_index_prefilters(
    plan: QueryPlan, alphabet, compiler=None, model=None
) -> QueryPlan:
    """Push mandatory selection factors down onto a plan's join steps.

    For every conjunctive branch, each positive string-formula literal
    is compiled and its per-variable :func:`required_factors` derived;
    join steps over relational atoms whose argument variables carry
    factors gain a :attr:`~repro.ir.plan.PlanStep.prefilter`.  This is
    sound because branch literals are conjoined: any binding in the
    branch answer satisfies the string atom, so a joined row whose
    column value lacks a mandatory factor can never survive — pruning
    it early only removes work, never answers.

    Args:
        plan: The normalized plan.
        alphabet: The query alphabet.
        compiler: ``(formula, alphabet) → CompiledFormula``; defaults
            to :func:`repro.fsa.compile.compile_string_formula` — pass
            a session's ``compile`` for cached machines.
        model: An optional :class:`~repro.ir.cost.CostModel` used to
            discount the estimates of prefiltered steps.

    Returns:
        The plan with prefilters attached (the input plan unchanged
        when nothing was derived); when a prefilter fires, the plan's
        rule counters gain a ``pushdown.index-prefilter`` entry.
    """
    branches = plan.branches()
    if not branches:
        return plan
    if compiler is None:
        from repro.fsa.compile import compile_string_formula

        compiler = compile_string_formula
    rewritten = []
    attached = 0
    for branch in branches:
        new_branch, count = _branch_prefilters(
            branch, alphabet, compiler, model
        )
        rewritten.append(new_branch)
        attached += count
    if not attached:
        return plan
    if isinstance(plan.root, UnionPlan):
        root = UnionPlan(tuple(rewritten))
    else:
        root = rewritten[0]
    rules = tuple(
        sorted(plan.rules + (("pushdown.index-prefilter", attached),))
    )
    return replace(plan, root=root, rules=rules)
