"""The logical-plan IR: the shape every evaluation strategy consumes.

A :class:`QueryPlan` is the normalized form of an alignment calculus
query: the source formula simplified (double negations eliminated,
vacuous quantifiers dropped), split into a union of conjunctive
branches where possible, each branch's quantifier prefix flattened and
its literals ordered by the cost model into executable
:class:`PlanStep`\\ s.  Shapes the normalizer cannot make conjunctive
degrade to a :class:`NaivePlan` carrying a machine-readable rejection
reason, so fallbacks are observable instead of silent.

All nodes are frozen dataclasses: plans are immutable values that the
engine session caches by structural identity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.syntax import Formula, RelAtom, Var, string_variables

#: Stable rejection reasons recorded on :class:`NaivePlan` roots; the
#: engine surfaces them as ``plan.reject.<reason>`` counters.
REASON_UNSUPPORTED_LITERAL = "unsupported-literal"
REASON_UNBOUND_NEGATION = "unbound-negation"
REASON_BRANCH_LIMIT = "branch-limit"


@dataclass(frozen=True)
class PlanStep:
    """One executable step of a conjunctive branch.

    ``action`` is ``"join"`` (a positive relational atom extending the
    binding set from database rows), ``"generate"`` (a positive string
    atom run as a generator machine for its unbound variables) or
    ``"filter"`` (any fully-bound literal, including negations).
    ``binds`` lists the variables the step newly binds; ``est_rows``
    and ``est_cost`` are the cost model's estimates of the binding
    count after the step and of the step's work.

    ``prefilter`` carries pushed-down index prefilters for ``"join"``
    steps: ``(column, factors)`` pairs meaning every value of that
    argument position must contain each factor as a substring (derived
    from the mandatory transitions of co-occurring selection machines —
    see :func:`repro.ir.rewrite.attach_index_prefilters`).  Executors
    probe the relation's storage index with them to shrink the scanned
    row set; storages without an index simply ignore them.
    """

    action: str
    atom: Formula
    negated: bool
    binds: tuple[Var, ...]
    est_rows: float
    est_cost: float
    prefilter: tuple[tuple[int, tuple[str, ...]], ...] = ()

    def variables(self) -> frozenset[Var]:
        """The variables the underlying literal mentions."""
        if isinstance(self.atom, RelAtom):
            return frozenset(self.atom.args)
        return string_variables(self.atom.formula)

    def describe(self) -> str:
        """A deterministic one-line rendering for ``--explain``."""
        sign = "¬" if self.negated else ""
        return f"{self.action} {sign}{self.atom}"


@dataclass(frozen=True)
class ConjunctivePlan:
    """An ordered conjunctive branch ``∃ quantified . step₁ ∧ … ∧ stepₙ``.

    ``bound_head`` lists the head variables the branch binds, in head
    order; ``free_head`` the head variables absent from the branch —
    the executor pads those with the truncation domain, which is the
    truncation semantics of a disjunct that does not mention them.
    """

    quantified: tuple[Var, ...]
    steps: tuple[PlanStep, ...]
    bound_head: tuple[Var, ...]
    free_head: tuple[Var, ...]
    source: Formula

    @property
    def est_cost(self) -> float:
        """The summed step cost estimates of the branch."""
        return sum(step.est_cost for step in self.steps)

    @property
    def est_rows(self) -> float:
        """The estimated binding count after the final step."""
        return self.steps[-1].est_rows if self.steps else 1.0


@dataclass(frozen=True)
class UnionPlan:
    """A union of conjunctive branches (a normalized disjunction)."""

    branches: tuple[ConjunctivePlan, ...]

    @property
    def est_cost(self) -> float:
        """The summed branch cost estimates."""
        return sum(branch.est_cost for branch in self.branches)


@dataclass(frozen=True)
class NaivePlan:
    """The fallback root: evaluate ``formula`` by naive enumeration.

    ``reason`` is one of the stable ``REASON_*`` strings; the engine
    records it as a counter and span attribute whenever the fallback is
    actually taken.
    """

    formula: Formula
    reason: str


@dataclass(frozen=True)
class QueryPlan:
    """The normalized plan for one query.

    Attributes:
        head: The query's answer variables, in order.
        source: The original formula, untouched (the differential
            oracle evaluates this).
        simplified: The simplification-pass output (double negations
            eliminated, vacuous quantifiers dropped) — what the naive
            strategy evaluates.
        root: A :class:`ConjunctivePlan`, :class:`UnionPlan` or
            :class:`NaivePlan`.
        rules: ``(rule-name, fire-count)`` pairs, sorted by name — the
            normalization passes that actually rewrote something.
    """

    head: tuple[Var, ...]
    source: Formula
    simplified: Formula
    root: ConjunctivePlan | UnionPlan | NaivePlan
    rules: tuple[tuple[str, int], ...]

    @property
    def fallback_reason(self) -> str | None:
        """The rejection reason when the root is naive, else ``None``."""
        return self.root.reason if isinstance(self.root, NaivePlan) else None

    def branches(self) -> tuple[ConjunctivePlan, ...]:
        """The conjunctive branches (empty for a naive root)."""
        if isinstance(self.root, ConjunctivePlan):
            return (self.root,)
        if isinstance(self.root, UnionPlan):
            return self.root.branches
        return ()
