"""Normalization passes: calculus formula → :class:`QueryPlan`.

Four passes, recorded per plan as ``(rule, count)`` pairs:

1. **simplify** — NNF-style cleanup: double negations eliminated and
   vacuous ``∃`` quantifiers dropped (the truncation domain always
   contains ``ε``, so ``∃y.φ`` with ``y`` not free in ``φ`` is ``φ``).
2. **split** — De Morgan disjunct extraction: the paper encodes
   ``φ ∨ ψ`` as ``¬(¬φ ∧ ¬ψ)``, which the planner used to reject
   wholesale; splitting recovers the disjuncts (distributing ``∧`` and
   ``∃`` over them) so each becomes its own conjunctive branch.
   Distribution is gated by :data:`MAX_BRANCHES` against the DNF
   blowup.
3. **hoist** — quantifier mini-scoping: nested ``∃`` blocks inside a
   branch are flattened into one planner-shaped prefix, renaming bound
   variables capture-avoidingly where scopes collide.
4. **order** — conjunct reordering: the branch's literals become
   :class:`~repro.ir.plan.PlanStep`\\ s ordered greedily by the
   :class:`~repro.ir.cost.CostModel` (cheapest next step first,
   deterministic tie-breaks).

Any branch the passes cannot shape degrades the whole plan to a
:class:`~repro.ir.plan.NaivePlan` with a stable reason string —
normalization never raises and never changes answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.syntax import (
    And,
    Exists,
    Formula,
    Not,
    RelAtom,
    StringAtom,
    Var,
    free_variables,
    fresh_variable,
    rename_free,
    string_variables,
)
from repro.ir.cost import CostModel
from repro.ir.plan import (
    REASON_BRANCH_LIMIT,
    REASON_UNBOUND_NEGATION,
    REASON_UNSUPPORTED_LITERAL,
    ConjunctivePlan,
    NaivePlan,
    PlanStep,
    QueryPlan,
    UnionPlan,
)

#: Cap on the number of conjunctive branches a plan may fan out into;
#: distribution past it falls back to the naive plan (``branch-limit``).
MAX_BRANCHES = 64


class _Rules:
    """A mutable rule-fire counter shared by the passes."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def fire(self, rule: str, times: int = 1) -> None:
        self.counts[rule] = self.counts.get(rule, 0) + times

    def snapshot(self) -> tuple[tuple[str, int], ...]:
        return tuple(sorted(self.counts.items()))


class _BranchLimit(Exception):
    """Raised internally when distribution exceeds MAX_BRANCHES."""


@dataclass(frozen=True)
class _Literal:
    """A literal of a conjunctive branch (duck-typed like the planner's)."""

    atom: Formula
    negated: bool

    def variables(self) -> frozenset[Var]:
        if isinstance(self.atom, RelAtom):
            return frozenset(self.atom.args)
        return string_variables(self.atom.formula)

    def sort_key(self) -> tuple[str, bool]:
        return (str(self.atom), self.negated)


# ---------------------------------------------------------------------------
# Pass 1: simplify
# ---------------------------------------------------------------------------


def simplify(formula: Formula, rules: _Rules | None = None) -> Formula:
    """Eliminate double negations and vacuous quantifiers.

    Answer-preserving under the truncation semantics for every
    database and bound; the naive strategy evaluates this form.
    """
    rules = rules if rules is not None else _Rules()
    if isinstance(formula, Not):
        inner = simplify(formula.inner, rules)
        if isinstance(inner, Not):
            rules.fire("simplify.double-negation")
            return inner.inner
        return Not(inner)
    if isinstance(formula, And):
        return And(
            simplify(formula.left, rules), simplify(formula.right, rules)
        )
    if isinstance(formula, Exists):
        inner = simplify(formula.inner, rules)
        if formula.var not in free_variables(inner):
            rules.fire("simplify.vacuous-exists")
            return inner
        return Exists(formula.var, inner)
    return formula


# ---------------------------------------------------------------------------
# Pass 2: split into disjuncts
# ---------------------------------------------------------------------------


def _negate(formula: Formula, rules: _Rules) -> Formula:
    if isinstance(formula, Not):
        rules.fire("simplify.double-negation")
        return formula.inner
    return Not(formula)


def _split(formula: Formula, rules: _Rules) -> list[Formula]:
    if isinstance(formula, Not):
        inner = formula.inner
        if isinstance(inner, And):
            # De Morgan: ¬(a ∧ b) = ¬a ∨ ¬b — this also uncovers the
            # paper's ∨ encoding ¬(¬φ ∧ ¬ψ).
            rules.fire("split.de-morgan")
            return _split(_negate(inner.left, rules), rules) + _split(
                _negate(inner.right, rules), rules
            )
        return [formula]
    if isinstance(formula, And):
        left = _split(formula.left, rules)
        right = _split(formula.right, rules)
        if len(left) * len(right) > MAX_BRANCHES:
            raise _BranchLimit
        if len(left) > 1 or len(right) > 1:
            rules.fire("split.distribute-and")
        return [And(l, r) for l in left for r in right]
    if isinstance(formula, Exists):
        parts = _split(formula.inner, rules)
        if len(parts) > 1:
            rules.fire("split.distribute-exists")
        out = []
        for part in parts:
            if formula.var in free_variables(part):
                out.append(Exists(formula.var, part))
            else:
                rules.fire("simplify.vacuous-exists")
                out.append(part)
        return out
    return [formula]


def split_disjuncts(formula: Formula) -> list[Formula] | None:
    """The disjunctive branches of ``formula``, or ``None`` past the cap.

    The input should already be simplified; the output formulae are
    pairwise ∨-composable: their union of truncation answers equals
    the input's answers.
    """
    try:
        return _split(formula, _Rules())
    except _BranchLimit:
        return None


# ---------------------------------------------------------------------------
# Pass 3: hoist quantifier prefixes
# ---------------------------------------------------------------------------


def _all_variables(formula: Formula) -> frozenset[Var]:
    if isinstance(formula, RelAtom):
        return frozenset(formula.args)
    if isinstance(formula, StringAtom):
        return string_variables(formula.formula)
    if isinstance(formula, And):
        return _all_variables(formula.left) | _all_variables(formula.right)
    if isinstance(formula, Not):
        return _all_variables(formula.inner)
    if isinstance(formula, Exists):
        return _all_variables(formula.inner) | {formula.var}
    raise TypeError(f"not a calculus formula: {formula!r}")


def _hoist(
    formula: Formula,
    used: set[Var],
    avoid: frozenset[Var],
    rules: _Rules,
) -> tuple[list[Var], Formula]:
    if isinstance(formula, Exists):
        var = formula.var
        inner = formula.inner
        if var in used:
            fresh = fresh_variable(var, frozenset(used) | avoid)
            inner = rename_free(inner, {var: fresh})
            rules.fire("hoist.rename")
            var = fresh
        used.add(var)
        rules.fire("hoist.exists")
        prefix, matrix = _hoist(inner, used, avoid, rules)
        return [var] + prefix, matrix
    if isinstance(formula, And):
        left_prefix, left_matrix = _hoist(formula.left, used, avoid, rules)
        right_prefix, right_matrix = _hoist(
            formula.right, used, avoid, rules
        )
        return left_prefix + right_prefix, And(left_matrix, right_matrix)
    return [], formula


def hoist_prefix(
    branch: Formula, head: tuple[Var, ...], rules: _Rules | None = None
) -> tuple[tuple[Var, ...], Formula]:
    """Flatten a branch's nested ``∃`` blocks into one prefix.

    ``∃x.φ ∧ ψ ≡ ∃x.(φ ∧ ψ)`` whenever ``x`` is not free in ``ψ``;
    bound variables whose names collide with the head, the branch's
    free variables or an already-hoisted binder are renamed to fresh
    names first, so the equivalence always applies.

    Returns:
        The ``(quantifier prefix, matrix)`` pair; the matrix contains
        no ``∃`` outside of negations.
    """
    rules = rules if rules is not None else _Rules()
    avoid = _all_variables(branch) | frozenset(head)
    used = set(free_variables(branch)) | set(head)
    prefix, matrix = _hoist(branch, used, avoid, rules)
    return tuple(prefix), matrix


# ---------------------------------------------------------------------------
# Pass 4: flatten + order conjuncts
# ---------------------------------------------------------------------------


def _flatten_literals(matrix: Formula) -> list[_Literal] | None:
    literals: list[_Literal] = []

    def walk(node: Formula) -> bool:
        if isinstance(node, And):
            return walk(node.left) and walk(node.right)
        if isinstance(node, (RelAtom, StringAtom)):
            literals.append(_Literal(node, False))
            return True
        if isinstance(node, Not) and isinstance(
            node.inner, (RelAtom, StringAtom)
        ):
            literals.append(_Literal(node.inner, True))
            return True
        return False

    if not walk(matrix):
        return None
    return literals


def order_steps(
    literals: list[_Literal], model: CostModel
) -> tuple[PlanStep, ...] | None:
    """Greedily order a branch's literals into executable steps.

    At each point the cheapest placeable literal is chosen: fully
    bound literals filter, positive relational atoms join, positive
    string atoms generate; negated literals with unbound variables are
    unplaceable.  Ties break on the literal's string rendering, so the
    ordering is deterministic.

    Returns:
        The step tuple, or ``None`` when the greedy loop gets stuck
        (a negation whose variables never become bound).
    """
    bound: set[Var] = set()
    pending = sorted(literals, key=_Literal.sort_key)
    steps: list[PlanStep] = []
    rows = 1.0
    while pending:
        best: tuple | None = None
        for index, literal in enumerate(pending):
            variables = literal.variables()
            unbound = variables - bound
            if not unbound:
                action = "filter"
                cost, rows_after = model.filter_estimate(rows)
            elif isinstance(literal.atom, RelAtom) and not literal.negated:
                action = "join"
                cost, rows_after = model.join_estimate(
                    rows,
                    literal.atom.name,
                    len(literal.atom.args),
                    tuple(
                        position
                        for position, arg in enumerate(literal.atom.args)
                        if arg in bound
                    ),
                )
            elif (
                isinstance(literal.atom, StringAtom) and not literal.negated
            ):
                action = "generate"
                cost, rows_after = model.generate_estimate(
                    rows, len(unbound)
                )
            else:
                continue
            key = (cost, rows_after, literal.sort_key())
            if best is None or key < best[0]:
                best = (key, index, literal, action, cost, rows_after)
        if best is None:
            return None
        _, index, literal, action, cost, rows_after = best
        pending.pop(index)
        newly = tuple(sorted(literal.variables() - bound))
        bound |= literal.variables()
        rows = rows_after
        steps.append(
            PlanStep(action, literal.atom, literal.negated, newly, rows, cost)
        )
    return tuple(steps)


# ---------------------------------------------------------------------------
# The full pipeline
# ---------------------------------------------------------------------------


def _plan_branch(
    branch: Formula,
    head: tuple[Var, ...],
    model: CostModel,
    rules: _Rules,
) -> ConjunctivePlan | str:
    quantified, matrix = hoist_prefix(branch, head, rules)
    literals = _flatten_literals(matrix)
    if literals is None:
        return REASON_UNSUPPORTED_LITERAL
    steps = order_steps(literals, model)
    if steps is None:
        return REASON_UNBOUND_NEGATION
    branch_free = free_variables(branch)
    bound_head = tuple(v for v in head if v in branch_free)
    free_head = tuple(v for v in head if v not in branch_free)
    if len(literals) > 1:
        rules.fire("order.conjuncts")
    return ConjunctivePlan(quantified, steps, bound_head, free_head, branch)


def build_query_plan(
    formula: Formula, head: tuple[Var, ...], model: CostModel
) -> QueryPlan:
    """Normalize ``formula`` into a :class:`QueryPlan` under ``model``.

    Never raises: shapes the passes cannot make conjunctive produce a
    :class:`NaivePlan` root carrying the rejection reason.  Pure in
    its arguments — engine sessions cache the result keyed by the
    formula, head, alphabet, database size signature and cap.
    """
    rules = _Rules()
    simplified = simplify(formula, rules)
    try:
        branches = _split(simplified, rules)
    except _BranchLimit:
        return QueryPlan(
            tuple(head),
            formula,
            simplified,
            NaivePlan(simplified, REASON_BRANCH_LIMIT),
            rules.snapshot(),
        )
    planned: list[ConjunctivePlan] = []
    for branch in branches:
        outcome = _plan_branch(branch, tuple(head), model, rules)
        if isinstance(outcome, str):
            return QueryPlan(
                tuple(head),
                formula,
                simplified,
                NaivePlan(simplified, outcome),
                rules.snapshot(),
            )
        planned.append(outcome)
    if len(planned) > 1:
        root: ConjunctivePlan | UnionPlan = UnionPlan(tuple(planned))
    else:
        root = planned[0]
    return QueryPlan(
        tuple(head), formula, simplified, root, rules.snapshot()
    )
