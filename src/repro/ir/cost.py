"""The cost model feeding conjunct reordering and strategy choice.

Deliberately simple — relation cardinalities from the
:class:`~repro.core.database.Database` plus the alphabet's string
counts under the certified truncation cap — but entirely
deterministic: every estimate is arithmetic over those integers, and
ties between equally-priced steps break on the literal's string
rendering, so the same query against same-sized relations always
produces the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.core.database import Database

#: Cap on the per-variable generation estimate; certified caps can be
#: astronomically loose and the cost model only needs an ordering.
GENERATION_CEILING = 1e9

#: Assumed selectivity of a fully-bound filter literal.
FILTER_SELECTIVITY = 0.5

#: Assumed selectivity of a generator machine relative to the free
#: product of its unbound variables' domains.
GENERATOR_SELECTIVITY = 0.25


@dataclass(frozen=True)
class CostModel:
    """Cardinality estimates for one (database, alphabet, cap) context.

    ``relation_sizes`` is the sorted ``(name, rows)`` signature that
    also serves as the database component of plan cache keys: two
    databases with equal signatures cost-rank plans identically.
    """

    relation_sizes: tuple[tuple[str, int], ...]
    alphabet_size: int
    cap: int
    domain_size: float

    @classmethod
    def for_database(
        cls, db: Database, alphabet: Alphabet, cap: int
    ) -> "CostModel":
        """Build the model for a database under a truncation cap.

        Args:
            db: The database supplying relation cardinalities.
            alphabet: The query alphabet.
            cap: The truncation / generation bound (``W(db)`` or an
                explicit length).

        Returns:
            The populated :class:`CostModel`.
        """
        sizes = tuple(
            sorted(
                (name, len(db.relation(name)))
                for name in db.relation_names
            )
        )
        bounded_cap = max(0, min(cap, 64))
        domain = min(
            float(alphabet.count_strings(bounded_cap)), GENERATION_CEILING
        )
        return cls(sizes, len(alphabet.symbols), cap, domain)

    def relation_rows(self, name: str) -> int:
        """The cardinality of relation ``name`` (0 when unknown)."""
        for known, size in self.relation_sizes:
            if known == name:
                return size
        return 0

    def join_estimate(
        self, rows: float, size: int, arity: int, bound_args: int
    ) -> tuple[float, float]:
        """Estimate a join step: ``(cost, rows_after)``.

        A join scans ``rows × size`` pairs; the surviving fraction
        shrinks with the number of already-bound argument positions
        (each bound position acts as an equality predicate).

        Args:
            rows: The current estimated binding count.
            size: The relation's cardinality.
            arity: The atom's argument count.
            bound_args: How many argument positions are already bound.

        Returns:
            The ``(cost, rows_after)`` estimates.
        """
        base = max(size, 1)
        cost = rows * base
        width = max(arity, 1)
        free_fraction = (width - min(bound_args, width)) / width
        rows_after = rows * max(base**free_fraction, 1.0)
        return cost, rows_after

    def generate_estimate(
        self, rows: float, unbound: int
    ) -> tuple[float, float]:
        """Estimate a generator step: ``(cost, rows_after)``.

        Each binding runs the compiled machine, producing at most
        ``domain^unbound`` value tuples; the machine is assumed to be
        selective (:data:`GENERATOR_SELECTIVITY`).

        Args:
            rows: The current estimated binding count.
            unbound: The number of variables the machine generates.

        Returns:
            The ``(cost, rows_after)`` estimates.
        """
        produced = min(
            self.domain_size ** max(unbound, 1), GENERATION_CEILING
        )
        cost = rows * produced
        rows_after = max(rows * produced * GENERATOR_SELECTIVITY, 1.0)
        return cost, rows_after

    def filter_estimate(self, rows: float) -> tuple[float, float]:
        """Estimate a filter step: ``(cost, rows_after)``.

        Args:
            rows: The current estimated binding count.

        Returns:
            The ``(cost, rows_after)`` estimates.
        """
        return rows, max(rows * FILTER_SELECTIVITY, 1.0)
