"""The cost model feeding conjunct reordering and strategy choice.

Deterministic arithmetic over real storage statistics: relation
cardinalities *and* per-column distinct counts / length histograms
come from each backend's :meth:`~repro.storage.base.RelationStorage.stats`,
the alphabet supplies string counts under the certified truncation
cap, and ties between equally-priced steps break on the literal's
string rendering — so the same query against statistically identical
databases always produces the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.core.database import Database
from repro.storage import RelationStats

#: Cap on the per-variable generation estimate; certified caps can be
#: astronomically loose and the cost model only needs an ordering.
GENERATION_CEILING = 1e9

#: Assumed selectivity of a fully-bound filter literal.
FILTER_SELECTIVITY = 0.5

#: Assumed selectivity of a generator machine relative to the free
#: product of its unbound variables' domains.
GENERATOR_SELECTIVITY = 0.25

#: Assumed surviving fraction per index-prefilter factor on a join —
#: applied when a step carries pushed-down required substrings.
PREFILTER_SELECTIVITY = 0.25

#: Floor on the compressed-scan discount: even a grammar that packs a
#: column a million-fold still costs something per row to walk.
MIN_SCAN_DISCOUNT = 1.0 / 256.0


@dataclass(frozen=True)
class CostModel:
    """Cardinality estimates for one (database, alphabet, cap) context.

    ``relation_sizes`` is the sorted ``(name, rows)`` signature kept
    for observability and quick lookups; ``relation_stats`` carries
    the full per-column statistics and — being a tuple of frozen
    values — doubles as the database component of plan cache keys:
    two databases with equal statistics cost-rank plans identically.
    """

    relation_sizes: tuple[tuple[str, int], ...]
    relation_stats: tuple[tuple[str, RelationStats], ...]
    alphabet_size: int
    cap: int
    domain_size: float

    @classmethod
    def for_database(
        cls, db: Database, alphabet: Alphabet, cap: int
    ) -> "CostModel":
        """Build the model for a database under a truncation cap.

        Args:
            db: The database supplying relation statistics.
            alphabet: The query alphabet.
            cap: The truncation / generation bound (``W(db)`` or an
                explicit length).

        Returns:
            The populated :class:`CostModel`.
        """
        stats = tuple(
            sorted(
                (name, db.relation(name).stats())
                for name in db.relation_names
            )
        )
        sizes = tuple((name, stat.rows) for name, stat in stats)
        bounded_cap = max(0, min(cap, 64))
        domain = min(
            float(alphabet.count_strings(bounded_cap)), GENERATION_CEILING
        )
        return cls(sizes, stats, len(alphabet.symbols), cap, domain)

    @property
    def signature(self) -> tuple:
        """The hashable database component of plan cache keys."""
        return self.relation_stats

    def relation_rows(self, name: str) -> int:
        """The cardinality of relation ``name`` (0 when unknown)."""
        for known, size in self.relation_sizes:
            if known == name:
                return size
        return 0

    def stats_for(self, name: str) -> RelationStats | None:
        """The stored statistics for ``name`` (``None`` when unknown)."""
        for known, stats in self.relation_stats:
            if known == name:
                return stats
        return None

    def column_distinct(self, name: str, column: int) -> int:
        """Distinct count of one column (1 when unknown — no selectivity)."""
        stats = self.stats_for(name)
        if stats is None or column >= len(stats.columns):
            return 1
        return max(stats.columns[column].distinct, 1)

    def scan_discount(self, name: str) -> float:
        """The compressed-scan cost multiplier for relation ``name``.

        The ratio of *stored* to *expanded* characters over all
        columns (``effective_stored_chars / total_chars``): 1.0 for
        uncompressed backends — whose ``stored_chars`` defaults to the
        expanded size, so every existing plan golden is untouched —
        and proportionally below 1.0 for SLP-compressed relations,
        where a scan walks grammar rules instead of characters.
        Floored at :data:`MIN_SCAN_DISCOUNT`.

        Args:
            name: The relation symbol.

        Returns:
            A multiplier in ``[MIN_SCAN_DISCOUNT, 1.0]``.
        """
        stats = self.stats_for(name)
        if stats is None:
            return 1.0
        total = sum(column.total_chars for column in stats.columns)
        if total <= 0:
            return 1.0
        stored = sum(
            column.effective_stored_chars for column in stats.columns
        )
        return min(1.0, max(stored / total, MIN_SCAN_DISCOUNT))

    def join_estimate(
        self,
        rows: float,
        name: str,
        arity: int,
        bound_columns: tuple[int, ...] = (),
    ) -> tuple[float, float]:
        """Estimate a join step: ``(cost, rows_after)``.

        A join scans ``rows × size`` pairs; each already-bound argument
        position acts as an equality predicate whose selectivity is
        ``1 / distinct(column)`` from the stored column statistics —
        the classic ``|R| / Π V(R, c)`` estimate.  The scan cost is
        additionally multiplied by :meth:`scan_discount`, so compressed
        relations price their scans by grammar size rather than
        expanded characters (1.0 — a no-op — for plain backends).

        Args:
            rows: The current estimated binding count.
            name: The relation symbol being joined.
            arity: The atom's argument count.
            bound_columns: The argument positions already bound.

        Returns:
            The ``(cost, rows_after)`` estimates.
        """
        base = max(self.relation_rows(name), 1)
        cost = rows * base * self.scan_discount(name)
        matches = float(base)
        for column in bound_columns:
            matches /= self.column_distinct(name, column)
        rows_after = rows * max(matches, 1.0)
        return cost, rows_after

    def prefilter_estimate(
        self, cost: float, rows_after: float, factors: int
    ) -> tuple[float, float]:
        """Discount a join estimate for pushed-down index prefilters.

        Each required factor is assumed to keep a
        :data:`PREFILTER_SELECTIVITY` fraction of the scanned rows;
        both the scan cost and the surviving rows shrink accordingly.

        Args:
            cost: The undiscounted join cost.
            rows_after: The undiscounted surviving-row estimate.
            factors: How many required factors the step pushes down.

        Returns:
            The discounted ``(cost, rows_after)`` estimates.
        """
        discount = PREFILTER_SELECTIVITY ** max(factors, 0)
        return max(cost * discount, 1.0), max(rows_after * discount, 1.0)

    def generate_estimate(
        self, rows: float, unbound: int
    ) -> tuple[float, float]:
        """Estimate a generator step: ``(cost, rows_after)``.

        Each binding runs the compiled machine, producing at most
        ``domain^unbound`` value tuples; the machine is assumed to be
        selective (:data:`GENERATOR_SELECTIVITY`).

        Args:
            rows: The current estimated binding count.
            unbound: The number of variables the machine generates.

        Returns:
            The ``(cost, rows_after)`` estimates.
        """
        produced = min(
            self.domain_size ** max(unbound, 1), GENERATION_CEILING
        )
        cost = rows * produced
        rows_after = max(rows * produced * GENERATOR_SELECTIVITY, 1.0)
        return cost, rows_after

    def filter_estimate(self, rows: float) -> tuple[float, float]:
        """Estimate a filter step: ``(cost, rows_after)``.

        Args:
            rows: The current estimated binding count.

        Returns:
            The ``(cost, rows_after)`` estimates.
        """
        return rows, max(rows * FILTER_SELECTIVITY, 1.0)


def semi_naive_estimate(branch, delta_size: int) -> float:
    """Estimated cost of one delta-restricted re-execution of ``branch``.

    Restricting one relational step to a delta's rows scales the
    binding flow through the branch by roughly ``|Δ| / est_rows``;
    :meth:`repro.delta.MaterializedStore.maintain` compares this
    against the branch's full ``est_cost`` and recomputes from scratch
    when the delta is large enough that restriction buys nothing.

    Args:
        branch: A :class:`~repro.ir.plan.ConjunctivePlan`.
        delta_size: The number of delta rows fed through the
            restricted step.

    Returns:
        The estimated restricted-run cost, in the same (unitless)
        currency as ``branch.est_cost``.
    """
    if not branch.steps:
        return float(delta_size)
    rows = max(branch.est_rows, 1.0)
    scale = min(1.0, delta_size / rows)
    return branch.est_cost * scale + delta_size
