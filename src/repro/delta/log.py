"""The :class:`Delta` value and the :class:`DeltaLog` batching API.

A delta is the unit of database mutation: two canonical tuples of
``(relation, row)`` pairs — inserts and deletes — normalized so that
equal mutations compare equal and a delta can serve as a cache key.
Application semantics are *deletes first, then inserts*, so a row
named on both sides is present afterwards; canonicalization therefore
drops such rows from the delete side, making the two sides disjoint.

:class:`DeltaLog` accumulates individual ``insert``/``delete`` calls
in arrival order and coalesces them to their net effect: for each
``(relation, row)`` pair only the *last* operation counts, which is
exactly what applying the operations one by one would produce.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

#: One relation row: a tuple of strings over the database alphabet.
Row = tuple[str, ...]


def _canonical_entries(
    entries: Iterable[tuple[str, Iterable[str]]],
) -> frozenset[tuple[str, Row]]:
    return frozenset((name, tuple(row)) for name, row in entries)


@dataclass(frozen=True)
class Delta:
    """An immutable set of row inserts and deletes across relations.

    Attributes:
        inserts: Sorted, deduplicated ``(relation, row)`` pairs to add.
        deletes: Sorted, deduplicated ``(relation, row)`` pairs to
            remove; disjoint from :attr:`inserts` after
            canonicalization (deletes apply first, so an insert of the
            same row wins).

    >>> delta = Delta(inserts=(("R", ("ab",)),), deletes=(("R", ("b",)),))
    >>> delta.relations()
    ('R',)
    >>> sorted(delta.inserts_for("R"))
    [('ab',)]
    """

    inserts: tuple[tuple[str, Row], ...] = ()
    deletes: tuple[tuple[str, Row], ...] = ()

    def __post_init__(self) -> None:
        ins = _canonical_entries(self.inserts)
        dels = _canonical_entries(self.deletes) - ins
        object.__setattr__(self, "inserts", tuple(sorted(ins)))
        object.__setattr__(self, "deletes", tuple(sorted(dels)))

    @classmethod
    def of(
        cls,
        inserts: Mapping[str, Iterable[Row]] | None = None,
        deletes: Mapping[str, Iterable[Row]] | None = None,
    ) -> "Delta":
        """Build a delta from per-relation row mappings.

        Args:
            inserts: ``{relation: rows}`` to add.
            deletes: ``{relation: rows}`` to remove.

        Returns:
            The canonical delta.
        """
        return cls(
            inserts=tuple(
                (name, tuple(row))
                for name, rows in (inserts or {}).items()
                for row in rows
            ),
            deletes=tuple(
                (name, tuple(row))
                for name, rows in (deletes or {}).items()
                for row in rows
            ),
        )

    @property
    def is_empty(self) -> bool:
        """Whether the delta performs no mutation at all."""
        return not self.inserts and not self.deletes

    def __bool__(self) -> bool:
        return not self.is_empty

    def relations(self) -> tuple[str, ...]:
        """The relation symbols this delta touches, sorted."""
        return tuple(
            sorted(
                {name for name, _ in self.inserts}
                | {name for name, _ in self.deletes}
            )
        )

    def inserts_for(self, name: str) -> frozenset[Row]:
        """The rows this delta inserts into relation ``name``."""
        return frozenset(row for rel, row in self.inserts if rel == name)

    def deletes_for(self, name: str) -> frozenset[Row]:
        """The rows this delta deletes from relation ``name``."""
        return frozenset(row for rel, row in self.deletes if rel == name)

    @property
    def size(self) -> int:
        """Total number of row operations (inserts plus deletes)."""
        return len(self.inserts) + len(self.deletes)


@dataclass
class DeltaLog:
    """A mutable accumulator of row operations, coalesced on build.

    Operations are recorded in arrival order; for each
    ``(relation, row)`` pair the *last* recorded operation wins, which
    matches applying them sequentially.  ``insert``/``delete`` return
    the log itself so calls chain fluently.

    >>> log = DeltaLog()
    >>> delta = log.insert("R", ("ab",)).delete("R", ("ab",)).build()
    >>> delta.deletes
    (('R', ('ab',)),)
    """

    _ops: dict[tuple[str, Row], bool] = field(default_factory=dict)

    def insert(self, name: str, row: Iterable[str]) -> "DeltaLog":
        """Record one row insert into relation ``name``."""
        self._ops[(name, tuple(row))] = True
        return self

    def delete(self, name: str, row: Iterable[str]) -> "DeltaLog":
        """Record one row delete from relation ``name``."""
        self._ops[(name, tuple(row))] = False
        return self

    def extend(self, delta: Delta) -> "DeltaLog":
        """Record every operation of ``delta`` (deletes, then inserts)."""
        for name, row in delta.deletes:
            self.delete(name, row)
        for name, row in delta.inserts:
            self.insert(name, row)
        return self

    def build(self) -> Delta:
        """The net-effect :class:`Delta` of everything recorded."""
        return Delta(
            inserts=tuple(
                key for key, is_insert in self._ops.items() if is_insert
            ),
            deletes=tuple(
                key for key, is_insert in self._ops.items() if not is_insert
            ),
        )

    def clear(self) -> None:
        """Forget every recorded operation."""
        self._ops.clear()

    def __len__(self) -> int:
        return len(self._ops)
