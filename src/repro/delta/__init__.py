"""Database deltas: the mutation path through every layer.

The rest of the library treats a :class:`~repro.core.database.Database`
as an immutable value — and it stays one.  A mutation is a *derivation*:
:class:`Delta` is a frozen value describing row inserts and deletes,
``Database.apply(delta)`` returns a **new** database version whose
per-relation version counters moved forward, storage backends derive
updated indexes through their ``apply_delta`` hooks, and the engine
session (:meth:`repro.engine.QueryEngine.apply_delta`) evicts exactly
the cache entries that depended on the touched relations while
incrementally maintaining its materialized answers
(:class:`MaterializedStore`).

:class:`DeltaLog` is the batching API: accumulate inserts and deletes
in arrival order, then :meth:`~DeltaLog.build` the net-effect
:class:`Delta` once.
"""

from repro.delta.log import Delta, DeltaLog
from repro.delta.materialize import MaterializedAnswer, MaterializedStore

__all__ = [
    "Delta",
    "DeltaLog",
    "MaterializedAnswer",
    "MaterializedStore",
]
