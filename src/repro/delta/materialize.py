"""Materialized query answers maintained incrementally under deltas.

A :class:`MaterializedAnswer` pins one query's answer to one database
version: the engine session stores the per-branch row sets of the
query's normalized plan together with the database lineage, the
version counter of every relation the answer depends on, and the
per-relation maximum string lengths the certified cap was derived
from.  A later evaluation of the same query against the same version
is then a pure lineage-and-versions comparison — no statistics pass,
no replanning.

When a delta is applied, :meth:`MaterializedStore.maintain` walks the
stored entries and repairs each one per branch:

* a branch referencing none of the touched relations keeps its rows
  (``delta.materialize.branch_skipped``);
* a branch whose touched relations are insert-only and appear only
  positively is maintained *semi-naively*: each step on a touched
  relation is re-executed restricted to the delta rows, with every
  other step on the full new database, and the results are unioned
  into the stored rows (``delta.materialize.branch_semi_naive``);
* any other branch — deletes, or a touched relation under negation —
  is recomputed from scratch (``delta.materialize.branch_recomputed``).

Entries fall back to full eviction when the plan root is naive or the
delta may move the certified length cap: the cap is a monotone
function of per-relation maximum string lengths, so an insert-only
delta whose strings are no longer than the recorded maxima provably
keeps the cap; anything riskier drops the entry
(``delta.materialize.cap_dropped``) and the next evaluation recomputes
from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable

from repro.core.syntax import RelAtom
from repro.delta.log import Delta, Row
from repro.engine.caches import CacheStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.alphabet import Alphabet
    from repro.core.database import Database
    from repro.ir.plan import ConjunctivePlan, QueryPlan

#: Default bound on retained materialized answers (oldest evicted first).
DEFAULT_MAX_ENTRIES = 256


@dataclass
class MaterializedAnswer:
    """One query's answer, pinned to one database version.

    Attributes:
        key: The structural query key (formula, head, alphabet and the
            explicit length, or ``None`` when the cap was certified).
        plan: The normalized plan whose branches produced the rows.
        alphabet: The query alphabet (pads unmentioned head variables).
        cap: The truncation / generation bound the answer was computed
            under.
        explicit: Whether ``cap`` was user-supplied; an explicit cap
            never moves under a delta, a certified one can.
        lineage: The database lineage the versions belong to.
        versions: ``(relation, version)`` pairs for every relation in
            :attr:`relations`, in that order.
        relations: The relations the answer depends on — the plan's
            step relations plus every relation the source formula
            mentions (the cap derives from the formula, so a relation
            simplified out of the plan still pins the cap).
        max_lengths: Per-relation maximum string length at
            materialization time, for the cap-stability check.
        branch_rows: One frozen answer set per plan branch, in
            ``plan.branches()`` order, already projected and padded to
            the full head.
        answer: The union of :attr:`branch_rows`.
    """

    key: Hashable
    plan: "QueryPlan"
    alphabet: "Alphabet"
    cap: int
    explicit: bool
    lineage: int
    versions: tuple[tuple[str, int], ...]
    relations: tuple[str, ...]
    max_lengths: dict[str, int]
    branch_rows: tuple[frozenset[Row], ...]
    answer: frozenset[Row]

    def matches(self, db: "Database") -> bool:
        """Whether this entry is exact for database version ``db``.

        Args:
            db: The database to compare lineage and versions against.

        Returns:
            ``True`` when the lineage matches and every dependent
            relation still carries the recorded version counter.
        """
        if self.lineage != db.lineage:
            return False
        return all(
            db.relation_version(name) == version
            for name, version in self.versions
        )


def _branch_refs(branch: "ConjunctivePlan") -> tuple[dict[str, list[int]], set[str]]:
    """Positive step indices and negated relation names of a branch."""
    positive: dict[str, list[int]] = {}
    negated: set[str] = set()
    for index, step in enumerate(branch.steps):
        if not isinstance(step.atom, RelAtom):
            continue
        if step.negated:
            negated.add(step.atom.name)
        else:
            positive.setdefault(step.atom.name, []).append(index)
    return positive, negated


@dataclass
class MaterializedStore:
    """A bounded store of :class:`MaterializedAnswer` entries.

    Quacks enough like a :class:`~repro.engine.caches.KeyedCache` for
    :meth:`~repro.engine.caches.EngineStats.register_cache`: it has a
    ``name`` and a :class:`~repro.engine.caches.CacheStats`, so
    materialization hits and misses show up in ``--stats`` alongside
    the compile and plan caches.
    """

    name: str = "materialize"
    stats: CacheStats = field(default_factory=CacheStats)
    max_entries: int = DEFAULT_MAX_ENTRIES
    _entries: dict[Hashable, MaterializedAnswer] = field(default_factory=dict)

    def lookup(self, key: Hashable, db: "Database") -> MaterializedAnswer | None:
        """Return the entry for ``key`` exact at ``db``, if any.

        Args:
            key: The structural query key.
            db: The database version the caller is evaluating against.

        Returns:
            The matching entry (a cache hit), or ``None`` (a miss —
            the caller computes and calls :meth:`put`).
        """
        entry = self._entries.get(key)
        if entry is not None and entry.matches(db):
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        return None

    def put(self, entry: MaterializedAnswer) -> MaterializedAnswer:
        """Store ``entry``, evicting the oldest entry when full."""
        if (
            entry.key not in self._entries
            and len(self._entries) >= self.max_entries
        ):
            self._entries.pop(next(iter(self._entries)))
        self._entries[entry.key] = entry
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (the stats are deliberately kept)."""
        self._entries.clear()

    # -- incremental maintenance ----------------------------------------

    def maintain(
        self,
        old_db: "Database",
        new_db: "Database",
        delta: Delta,
        session: Any,
    ) -> dict[str, int]:
        """Repair stored entries after ``old_db.apply(delta) == new_db``.

        Entries that were exact at ``old_db`` are brought forward to
        ``new_db``; entries pinned to other versions are left alone
        (their version vectors can never falsely match, so they stay
        valid for the version they describe).

        Args:
            old_db: The database version the delta was applied to.
            new_db: The resulting version.
            delta: The applied delta.
            session: The owning :class:`repro.engine.QueryEngine`,
                backing compile / generate / domain caches during
                branch re-execution.

        Returns:
            Counters: entries ``maintained`` / ``cap_dropped`` and
            branches ``branch_skipped`` / ``branch_semi_naive`` /
            ``branch_recomputed``.
        """
        from repro.ir.execute import execute_branch
        from repro.observability import current_tracer

        tracer = current_tracer()
        touched = set(delta.relations())
        counts = {
            "maintained": 0,
            "cap_dropped": 0,
            "branch_skipped": 0,
            "branch_semi_naive": 0,
            "branch_recomputed": 0,
        }
        for key in list(self._entries):
            entry = self._entries[key]
            if not entry.matches(old_db):
                continue
            affected = touched & set(entry.relations)
            if not affected:
                continue
            if not self._cap_stable(entry, delta, affected):
                del self._entries[key]
                counts["cap_dropped"] += 1
                continue
            self._maintain_entry(
                entry, new_db, delta, affected, session, execute_branch, counts
            )
            counts["maintained"] += 1
        for name, value in counts.items():
            if value:
                tracer.add(f"delta.materialize.{name}", value)
        return counts

    @staticmethod
    def _cap_stable(
        entry: MaterializedAnswer, delta: Delta, affected: set[str]
    ) -> bool:
        """Whether the certified cap provably survives ``delta``.

        The cap is a monotone function of per-relation maximum string
        lengths, so with an explicit cap it is always stable; with a
        certified cap it is stable exactly when no affected relation
        loses a maximal-length row or gains a longer one.
        """
        if entry.explicit:
            return True
        for name in affected:
            recorded = entry.max_lengths.get(name, 0)
            for row in delta.deletes_for(name):
                if any(len(value) >= recorded for value in row):
                    return False
            for row in delta.inserts_for(name):
                if any(len(value) > recorded for value in row):
                    return False
        return True

    def _maintain_entry(
        self,
        entry: MaterializedAnswer,
        new_db: "Database",
        delta: Delta,
        affected: set[str],
        session: Any,
        execute_branch: Any,
        counts: dict[str, int],
    ) -> None:
        """Repair one entry's branches in place and re-pin its version."""
        from repro.ir.cost import semi_naive_estimate

        branches = entry.plan.branches()
        rows = list(entry.branch_rows)
        for index, branch in enumerate(branches):
            positive, negated = _branch_refs(branch)
            referenced = affected & (set(positive) | negated)
            if not referenced:
                counts["branch_skipped"] += 1
                continue
            deletes = any(delta.deletes_for(name) for name in referenced)
            runs = sum(len(positive[name]) for name in referenced - negated)
            delta_rows = sum(
                len(delta.inserts_for(name)) for name in referenced
            )
            costly = (
                runs * semi_naive_estimate(branch, delta_rows)
                >= branch.est_cost
            )
            if deletes or referenced & negated or costly:
                rows[index] = execute_branch(
                    branch,
                    entry.plan.head,
                    new_db,
                    entry.alphabet,
                    entry.cap,
                    session,
                )
                counts["branch_recomputed"] += 1
                continue
            merged = set(rows[index])
            for name in sorted(referenced):
                inserted = delta.inserts_for(name)
                for step_index in positive[name]:
                    merged |= execute_branch(
                        branch,
                        entry.plan.head,
                        new_db,
                        entry.alphabet,
                        entry.cap,
                        session,
                        restrict={step_index: inserted},
                    )
            rows[index] = frozenset(merged)
            counts["branch_semi_naive"] += 1
        entry.branch_rows = tuple(rows)
        entry.answer = frozenset().union(*rows) if rows else frozenset()
        entry.lineage = new_db.lineage
        entry.versions = tuple(
            (name, new_db.relation_version(name)) for name in entry.relations
        )
        for name in affected:
            entry.max_lengths[name] = new_db.max_string_length(name)
