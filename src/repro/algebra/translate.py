"""The calculus ⇄ algebra translations (Theorems 4.1 and 4.2).

Both directions are implemented exactly along the paper's inductive
proofs.  The algebra→calculus direction (Theorem 4.1) uses the
Theorem 3.2 decompiler for selections; the calculus→algebra direction
(Theorem 4.2) is built around the ``F ↑ B`` equivalence-partition
operator, which realizes repeated-variable atoms and the natural join
with a single FSA selection plus a projection.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algebra.expressions import (
    Diff,
    Expression,
    Product,
    Project,
    Rel,
    Select,
    SigmaL,
    SigmaStar,
    Union,
    product_of,
    sigma_power,
)
from repro.core.alphabet import Alphabet
from repro.core.syntax import (
    And,
    Exists,
    Formula,
    IsEmpty,
    Not,
    RelAtom,
    SameChar,
    SStar,
    StringAtom,
    StringFormula,
    Var,
    WTrue,
    all_empty,
    atom,
    concat,
    exists,
    f_or,
    free_variables,
    left,
    lift,
    rename_free,
    string_variables,
    w_and,
)
from repro.errors import ArityError, EvaluationError
from repro.fsa.compile import compile_string_formula
from repro.fsa.decompile import decompile


# ---------------------------------------------------------------------------
# The partition operator F ↑ B
# ---------------------------------------------------------------------------


def partition_formula(width: int, parts: Sequence[Sequence[int]]) -> StringFormula:
    """The string formula enforcing an equivalence partition of columns.

    The paper's ``φ`` for ``F ↑ B``: repeatedly transpose all columns
    checking that the columns of each part agree in the window, until
    every column is exhausted simultaneously.  Clamped transposes make
    the simultaneous-exhaustion test correct even for columns of
    different lengths across parts.
    """
    variables = tuple(f"c{i}" for i in range(width))
    group_tests = []
    for part in parts:
        representative = variables[min(part)]
        for index in part:
            if index != min(part):
                group_tests.append(SameChar(variables[index], representative))
    loop_test = w_and(*group_tests) if group_tests else WTrue()
    return concat(
        SStar(atom(left(*variables), loop_test)),
        atom(left(*variables), all_empty(*variables)),
    )


def partition_machine(
    width: int, parts: Sequence[Sequence[int]], alphabet: Alphabet
) -> "FSA":
    """The ``F ↑ B`` selection machine, built directly.

    Semantically identical to compiling :func:`partition_formula`
    (clamped lock-step scan, groups equal in every window, all columns
    exhausted simultaneously), but the transition set is enumerated
    *per group* — ``Π (|Σ| + 2^{|part|})`` combinations instead of
    ``(|Σ|+2)^width`` — which keeps wide joins tractable.
    """
    from itertools import product as iproduct

    from repro.core.alphabet import LEFT_END, RIGHT_END
    from repro.fsa.machine import FSA, Transition

    group_choices: list[list[tuple[str, ...]]] = []
    for part in parts:
        choices: list[tuple[str, ...]] = [
            (char,) * len(part) for char in alphabet.symbols
        ]
        choices.extend(
            combo
            for combo in iproduct((LEFT_END, RIGHT_END), repeat=len(part))
        )
        group_choices.append(choices)
    transitions: set[Transition] = set()
    order = [index for part in parts for index in part]
    for assignment in iproduct(*group_choices):
        reads: list[str] = [""] * width
        for part_values, part in zip(assignment, parts):
            for value, index in zip(part_values, part):
                reads[index] = value
        moves = tuple(
            0 if symbol == RIGHT_END else +1 for symbol in reads
        )
        if all(symbol == RIGHT_END for symbol in reads):
            transitions.add(
                Transition("go", tuple(reads), "ok", (0,) * width)
            )
        else:
            transitions.add(Transition("go", tuple(reads), "go", moves))
    del order
    return FSA(
        width,
        frozenset({"go", "ok"}),
        "go",
        frozenset({"ok"}),
        frozenset(transitions),
        alphabet,
    )


def partitioned(
    expression: Expression,
    parts: Sequence[Sequence[int]],
    alphabet: Alphabet,
) -> Expression:
    """``F ↑ B``: equate grouped columns, keep one representative each.

    ``parts`` is an ordered partition of ``0 … arity-1``; the output's
    column ``j`` is the representative (minimum index) of part ``j``.
    """
    width = expression.arity
    covered = sorted(index for part in parts for index in part)
    if covered != list(range(width)):
        raise ArityError(f"{parts!r} is not a partition of 0..{width - 1}")
    machine = partition_machine(width, parts, alphabet)
    return Project(
        Select(expression, machine), tuple(min(part) for part in parts)
    )


# ---------------------------------------------------------------------------
# Theorem 4.2: calculus → algebra
# ---------------------------------------------------------------------------


def _columns_invariant(formula: Formula) -> tuple[Var, ...]:
    """The translation invariant: columns = free variables, ascending."""
    return tuple(sorted(free_variables(formula)))


def _translate(
    formula: Formula, alphabet: Alphabet, compiler=None
) -> Expression:
    compile_ = compiler if compiler is not None else compile_string_formula
    if isinstance(formula, RelAtom):
        occurring = tuple(sorted(set(formula.args)))
        parts = [
            [pos for pos, arg in enumerate(formula.args) if arg == var]
            for var in occurring
        ]
        base = Rel(formula.name, len(formula.args))
        if len(formula.args) == 0:
            return base
        return partitioned(base, parts, alphabet)
    if isinstance(formula, StringAtom):
        variables = tuple(sorted(string_variables(formula.formula)))
        machine = compile_(
            formula.formula, alphabet, variables
        ).fsa
        if not variables:
            # A variable-free string formula is a 0-ary condition: true
            # or false uniformly over all databases.
            if _zero_ary_truth(machine):
                return Project(SigmaStar(), ())
            return _empty_zero_ary()
        return Select(product_of(sigma_power(len(variables))), machine)
    if isinstance(formula, And):
        left_expr = _translate(formula.left, alphabet, compiler)
        right_expr = _translate(formula.right, alphabet, compiler)
        left_vars = _columns_invariant(formula.left)
        right_vars = _columns_invariant(formula.right)
        sequence = list(left_vars) + list(right_vars)
        union_vars = _columns_invariant(formula)
        if not sequence:
            return _zero_ary_and(left_expr, right_expr)
        parts = [
            [pos for pos, var in enumerate(sequence) if var == name]
            for name in union_vars
        ]
        return partitioned(Product(left_expr, right_expr), parts, alphabet)
    if isinstance(formula, Not):
        inner = _translate(formula.inner, alphabet, compiler)
        width = len(_columns_invariant(formula))
        if width == 0:
            return Diff(Project(SigmaStar(), ()), inner)
        return Diff(product_of(sigma_power(width)), inner)
    if isinstance(formula, Exists):
        inner_vars = _columns_invariant(formula.inner)
        inner = _translate(formula.inner, alphabet, compiler)
        if formula.var not in inner_vars:
            return inner
        keep = tuple(
            pos for pos, var in enumerate(inner_vars) if var != formula.var
        )
        return Project(inner, keep)
    raise TypeError(f"not a calculus formula: {formula!r}")


def _zero_ary_truth(machine) -> bool:
    from repro.fsa.simulate import accepts

    return accepts(machine, ())


def _empty_zero_ary() -> Expression:
    # π over the empty relation: Σ* minus Σ* has no tuples.
    universe = SigmaStar()
    return Project(Diff(universe, universe), ())


def _zero_ary_and(left_expr: Expression, right_expr: Expression) -> Expression:
    from repro.algebra.expressions import intersect

    return intersect(left_expr, right_expr)


def calculus_to_algebra(
    formula: Formula,
    head: Sequence[Var],
    alphabet: Alphabet,
    compiler=None,
) -> Expression:
    """Theorem 4.2: an expression ``E_φ`` with ``⟦φ⟧_db = db(E_φ)``.

    The expression's columns follow ``head`` (which must list exactly
    the free variables); internally the translation keeps columns in
    ascending variable order and reorders at the end.  ``compiler``
    optionally replaces :func:`compile_string_formula` for the string
    atoms' selection machines — engine sessions pass their cached
    compile so translations share machines with evaluation.
    """
    from repro.observability import current_tracer

    free = free_variables(formula)
    if set(head) != free or len(set(head)) != len(head):
        raise EvaluationError(
            f"head {head!r} must list the free variables {sorted(free)} exactly"
        )
    with current_tracer().span(
        "translate.build", stage="translate", head=len(head)
    ):
        expression = _translate(formula, alphabet, compiler)
        ordered = _columns_invariant(formula)
        wanted = tuple(ordered.index(var) for var in head)
        if wanted != tuple(range(len(ordered))):
            expression = Project(expression, wanted)
    return expression


# ---------------------------------------------------------------------------
# Theorem 4.1: algebra → calculus
# ---------------------------------------------------------------------------


def _variables_for(arity: int, offset: int = 0) -> tuple[Var, ...]:
    return tuple(f"x{i + 1 + offset}" for i in range(arity))


def algebra_to_calculus(expression: Expression) -> Formula:
    """Theorem 4.1: a formula ``φ_E`` with ``db(E) = ⟦φ_E⟧_db``.

    Free variables are ``x1 … x_{arity}``, matching columns in order.
    Arity-0 expressions translate to closed formulae.
    """
    return _to_calculus(expression, 0, [0])


def _to_calculus(expression: Expression, offset: int, counter: list[int]) -> Formula:
    variables = _variables_for(expression.arity, offset)
    if isinstance(expression, Rel):
        return RelAtom(expression.name, variables)
    if isinstance(expression, SigmaStar):
        # Any identically-true formula in one free variable; the paper
        # suggests []_l x = ε, which holds in every initial alignment.
        return lift(atom(left(), IsEmpty(variables[0])))
    if isinstance(expression, SigmaL):
        guard = atom(left(variables[0]), WTrue())
        return lift(
            concat(
                guard.times(expression.bound),
                atom(left(variables[0]), IsEmpty(variables[0])),
            )
        )
    if isinstance(expression, Union):
        return f_or(
            _to_calculus(expression.left, offset, counter),
            _to_calculus(expression.right, offset, counter),
        )
    if isinstance(expression, Diff):
        return And(
            _to_calculus(expression.left, offset, counter),
            Not(_to_calculus(expression.right, offset, counter)),
        )
    if isinstance(expression, Product):
        return And(
            _to_calculus(expression.left, offset, counter),
            _to_calculus(
                expression.right, offset + expression.left.arity, counter
            ),
        )
    if isinstance(expression, Select):
        inner = _to_calculus(expression.inner, offset, counter)
        condition = decompile(expression.machine, variables)
        return And(inner, lift(condition))
    if isinstance(expression, Project):
        # Quantify dropped columns, then rename kept ones into place.
        # Scratch names are globally unique so renamings never capture.
        inner_width = expression.inner.arity
        counter[0] += 1
        tag = counter[0]
        scratch = tuple(f"q{tag}_{i + 1}" for i in range(inner_width))
        inner = _to_calculus(expression.inner, 0, counter)
        inner = rename_free(
            inner, dict(zip(_variables_for(inner_width), scratch))
        )
        dropped = [
            scratch[i]
            for i in range(inner_width)
            if i not in expression.columns
        ]
        body = exists(dropped, inner)
        renaming = {
            scratch[source]: variables[target]
            for target, source in enumerate(expression.columns)
        }
        return rename_free(body, renaming)
    raise TypeError(f"not an algebra expression: {expression!r}")
