"""Evaluating alignment algebra expressions.

Two regimes, both from Section 4 of the paper:

* **Truncated evaluation** ``db(E ↓ l)``: every ``Σ*`` is read as
  ``Σ^{<=l}``, making all operators finitary (the second claim of
  Theorem 4.2).
* **Generative selection**: for the finitely evaluable pattern
  ``σ_A(F × (Σ*)^n)`` the ``Σ*`` columns are never materialized —
  the machine ``A`` is run as a generalized Mealy machine producing
  the new strings from each tuple of ``F`` (Definition 3.1 /
  :mod:`repro.fsa.generate`), still capped at the supplied bound so
  evaluation always terminates.
"""

from __future__ import annotations

from itertools import product

from repro.algebra.expressions import (
    Diff,
    Expression,
    Product,
    Project,
    Rel,
    Select,
    SigmaL,
    SigmaStar,
    Union,
)
from repro.core.database import Database
from repro.errors import EvaluationError, UnboundedQueryError
from repro.fsa.generate import accepted_tuples
from repro.fsa.simulate import accepts

Relation = frozenset[tuple[str, ...]]


def _flatten_product(expression: Expression) -> list[Expression]:
    """Factors of a left/right-nested product, in column order."""
    if isinstance(expression, Product):
        return _flatten_product(expression.left) + _flatten_product(
            expression.right
        )
    return [expression]


def _evaluate_select(
    select: Select, db: Database, length: int, session=None
) -> Relation:
    """Selection, generating ``Σ*`` columns instead of materializing them.

    Factors that are ``Σ*`` become generated tapes; all other factors
    are evaluated and iterated, their columns fixed in the machine via
    Lemma 3.1.  With a ``session`` (:class:`repro.engine.QueryEngine`)
    the specialize/generate steps are served from its caches.
    """
    factors = _flatten_product(select.inner)
    if not any(isinstance(f, SigmaStar) for f in factors):
        inner = _evaluate(select.inner, db, length, session)
        return frozenset(
            row for row in inner if accepts(select.machine, row)
        )
    generated_tapes: list[int] = []
    concrete: list[tuple[int, ...]] = []  # column spans of concrete factors
    concrete_values: list[Relation] = []
    column = 0
    for factor in factors:
        span = tuple(range(column, column + factor.arity))
        if isinstance(factor, SigmaStar):
            generated_tapes.extend(span)
        else:
            concrete.append(span)
            concrete_values.append(_evaluate(factor, db, length, session))
        column += factor.arity
    width = column
    results: set[tuple[str, ...]] = set()
    for rows in product(*concrete_values):
        fixed: dict[int, str] = {}
        for span, row in zip(concrete, rows):
            for tape, value in zip(span, row):
                fixed[tape] = value
        if session is not None:
            generated = session.generated(select.machine, length, fixed)
        else:
            generated = accepted_tuples(
                select.machine, max_length=length, fixed=fixed
            )
        for outputs in generated:
            merged = [""] * width
            for tape, value in fixed.items():
                merged[tape] = value
            for tape, value in zip(generated_tapes, outputs):
                merged[tape] = value
            results.add(tuple(merged))
    return frozenset(results)


def _evaluate(
    expression: Expression, db: Database, length: int, session=None
) -> Relation:
    if isinstance(expression, Rel):
        return db.relation(expression.name)
    if isinstance(expression, SigmaStar):
        # Bare Σ* outside a generative selection: truncate.
        return frozenset((s,) for s in db.alphabet.strings(length))
    if isinstance(expression, SigmaL):
        bound = min(expression.bound, length) if length >= 0 else expression.bound
        return frozenset((s,) for s in db.alphabet.strings(bound))
    if isinstance(expression, Union):
        return _evaluate(expression.left, db, length, session) | _evaluate(
            expression.right, db, length, session
        )
    if isinstance(expression, Diff):
        return _evaluate(expression.left, db, length, session) - _evaluate(
            expression.right, db, length, session
        )
    if isinstance(expression, Product):
        left = _evaluate(expression.left, db, length, session)
        right = _evaluate(expression.right, db, length, session)
        return frozenset(l + r for l in left for r in right)
    if isinstance(expression, Project):
        inner = _evaluate(expression.inner, db, length, session)
        return frozenset(
            tuple(row[i] for i in expression.columns) for row in inner
        )
    if isinstance(expression, Select):
        return _evaluate_select(expression, db, length, session)
    raise TypeError(f"not an algebra expression: {expression!r}")


def evaluate_expression(
    expression: Expression,
    db: Database,
    length: int,
    domain: tuple[str, ...] | None = None,
    session=None,
) -> Relation:
    """``db(E ↓ length)`` — the truncated value of the expression.

    ``domain`` is accepted for interface compatibility with the naive
    engine; evaluation is always over ``Σ^{<=length}``, so a caller
    passing a non-prefix-closed domain should compare against the
    truncated semantics instead.  ``session`` optionally supplies a
    :class:`repro.engine.QueryEngine` whose caches back the generative
    selections.
    """
    if length < 0:
        raise EvaluationError("truncation length must be non-negative")
    return _evaluate(expression, db, length, session)


def evaluate_exact(
    expression: Expression,
    db: Database,
    limit: int | None = None,
) -> Relation:
    """Exact evaluation for expressions certified finitely evaluable.

    ``limit`` supplies the limit-function value ``W(db)``; when ``None``
    it is derived by the safety analysis (Section 5), and
    :class:`UnboundedQueryError` is raised if no bound can be
    certified.
    """
    if limit is None:
        from repro.safety.domain_independence import expression_limit

        limit = expression_limit(expression, db)
        if limit is None:
            raise UnboundedQueryError(
                "expression is not certifiably finitely evaluable; "
                "pass an explicit limit"
            )
    return _evaluate(expression, db, limit)
