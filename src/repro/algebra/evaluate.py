"""Evaluating alignment algebra expressions.

Two regimes, both from Section 4 of the paper:

* **Truncated evaluation** ``db(E ↓ l)``: every ``Σ*`` is read as
  ``Σ^{<=l}``, making all operators finitary (the second claim of
  Theorem 4.2).
* **Generative selection**: for the finitely evaluable pattern
  ``σ_A(F × (Σ*)^n)`` the ``Σ*`` columns are never materialized —
  the machine ``A`` is run as a generalized Mealy machine producing
  the new strings from each tuple of ``F`` (Definition 3.1 /
  :mod:`repro.fsa.generate`), still capped at the supplied bound so
  evaluation always terminates.
"""

from __future__ import annotations

from itertools import product

from repro.algebra.expressions import (
    Diff,
    Expression,
    Product,
    Project,
    Rel,
    Select,
    SigmaL,
    SigmaStar,
    Union,
)
from repro.core.database import Database
from repro.errors import EvaluationError, UnboundedQueryError
from repro.fsa.generate import accepted_tuples
from repro.fsa.kernel import kernel_for

Relation = frozenset[tuple[str, ...]]


def _flatten_product(expression: Expression) -> list[Expression]:
    """Factors of a left/right-nested product, in column order."""
    if isinstance(expression, Product):
        return _flatten_product(expression.left) + _flatten_product(
            expression.right
        )
    return [expression]


def _evaluate_select(
    select: Select, db: Database, length: int, session=None, executor=None
) -> Relation:
    """Selection, generating ``Σ*`` columns instead of materializing them.

    Factors that are ``Σ*`` become generated tapes; all other factors
    are evaluated and iterated, their columns fixed in the machine via
    Lemma 3.1.  Non-generative selections run through the machine's
    compiled simulation kernel (:mod:`repro.fsa.kernel`), batched so
    the whole inner relation shares one compiled dispatch table and
    one set of scratch buffers.  With a ``session``
    (:class:`repro.engine.QueryEngine`) the machine is first replaced
    by its cached bisimulation quotient (which preserves the accepted
    language, hence both filtering and generation), the kernel comes
    from the session's ``kernel`` cache and the specialize/generate
    steps are served from the session caches; with an ``executor``
    (:class:`repro.parallel.ParallelExecutor`) the per-row machine
    runs — acceptance checks and generator runs alike — are sharded
    across its worker pool.
    """
    machine = select.machine
    if session is not None:
        machine = session.minimized_machine(machine)
    factors = _flatten_product(select.inner)
    if not any(isinstance(f, SigmaStar) for f in factors):
        inner = _evaluate(select.inner, db, length, session, executor)
        if executor is not None:
            from repro.parallel.generation import filter_accepted

            return filter_accepted(
                machine,
                sorted(inner),
                executor=executor,
                kernel_mode=(
                    session.kernel_mode if session is not None else "auto"
                ),
            )
        kernel = (
            session.kernel(machine)
            if session is not None
            else kernel_for(machine)
        )
        rows = sorted(inner)
        return frozenset(
            row
            for row, verdict in zip(rows, kernel.accepts_batch(rows))
            if verdict
        )
    generated_tapes: list[int] = []
    concrete: list[tuple[int, ...]] = []  # column spans of concrete factors
    concrete_values: list[Relation] = []
    column = 0
    for factor in factors:
        span = tuple(range(column, column + factor.arity))
        if isinstance(factor, SigmaStar):
            generated_tapes.extend(span)
        else:
            concrete.append(span)
            concrete_values.append(
                _evaluate(factor, db, length, session, executor)
            )
        column += factor.arity
    width = column
    fixed_list: list[dict[int, str]] = []
    # Sorted factor iteration keeps the row order — and therefore the
    # shard contents — deterministic across interpreter runs.
    for rows in product(*(sorted(v) for v in concrete_values)):
        fixed: dict[int, str] = {}
        for span, row in zip(concrete, rows):
            for tape, value in zip(span, row):
                fixed[tape] = value
        fixed_list.append(fixed)
    from repro.observability import current_tracer
    from repro.parallel.generation import generated_for_fixed

    generated_sets = generated_for_fixed(
        machine, length, fixed_list, session=session, executor=executor
    )
    results: set[tuple[str, ...]] = set()
    with current_tracer().span(
        "fold.select", stage="fold", rows=len(fixed_list)
    ):
        for fixed, generated in zip(fixed_list, generated_sets):
            for outputs in generated:
                merged = [""] * width
                for tape, value in fixed.items():
                    merged[tape] = value
                for tape, value in zip(generated_tapes, outputs):
                    merged[tape] = value
                results.add(tuple(merged))
    return frozenset(results)


def _evaluate(
    expression: Expression,
    db: Database,
    length: int,
    session=None,
    executor=None,
) -> Relation:
    if isinstance(expression, Rel):
        # The view's backing frozenset: the algebra operators below
        # combine relations with set algebra, so take the raw set.
        return db.relation(expression.name).tuples
    if isinstance(expression, SigmaStar):
        # Bare Σ* outside a generative selection: truncate.
        return frozenset((s,) for s in db.alphabet.strings(length))
    if isinstance(expression, SigmaL):
        bound = min(expression.bound, length) if length >= 0 else expression.bound
        return frozenset((s,) for s in db.alphabet.strings(bound))
    if isinstance(expression, Union):
        return _evaluate(
            expression.left, db, length, session, executor
        ) | _evaluate(expression.right, db, length, session, executor)
    if isinstance(expression, Diff):
        return _evaluate(
            expression.left, db, length, session, executor
        ) - _evaluate(expression.right, db, length, session, executor)
    if isinstance(expression, Product):
        left = _evaluate(expression.left, db, length, session, executor)
        right = _evaluate(expression.right, db, length, session, executor)
        return frozenset(l + r for l in left for r in right)
    if isinstance(expression, Project):
        inner = _evaluate(expression.inner, db, length, session, executor)
        return frozenset(
            tuple(row[i] for i in expression.columns) for row in inner
        )
    if isinstance(expression, Select):
        return _evaluate_select(expression, db, length, session, executor)
    raise TypeError(f"not an algebra expression: {expression!r}")


def evaluate_expression(
    expression: Expression,
    db: Database,
    length: int,
    domain: tuple[str, ...] | None = None,
    session=None,
    executor=None,
) -> Relation:
    """``db(E ↓ length)`` — the truncated value of the expression.

    ``domain`` is accepted for interface compatibility with the naive
    engine; evaluation is always over ``Σ^{<=length}``, so a caller
    passing a non-prefix-closed domain should compare against the
    truncated semantics instead.  ``session`` optionally supplies a
    :class:`repro.engine.QueryEngine` whose caches back the generative
    selections; ``executor`` optionally supplies a
    :class:`repro.parallel.ParallelExecutor` that shards the
    selection-operator machine runs across worker processes.
    """
    if length < 0:
        raise EvaluationError("truncation length must be non-negative")
    return _evaluate(expression, db, length, session, executor)


def evaluate_exact(
    expression: Expression,
    db: Database,
    limit: int | None = None,
) -> Relation:
    """Exact evaluation for expressions certified finitely evaluable.

    ``limit`` supplies the limit-function value ``W(db)``; when ``None``
    it is derived by the safety analysis (Section 5), and
    :class:`UnboundedQueryError` is raised if no bound can be
    certified.
    """
    if limit is None:
        from repro.safety.domain_independence import expression_limit

        limit = expression_limit(expression, db)
        if limit is None:
            raise UnboundedQueryError(
                "expression is not certifiably finitely evaluable; "
                "pass an explicit limit"
            )
    return _evaluate(expression, db, limit)
