"""Alignment algebra expressions (paper, Section 4).

The procedural counterpart of alignment calculus: classical relational
algebra over string relations, extended with

* explicit domain symbols ``Σ*`` (the infinite string universe) and
  ``Σ^{<=l}`` (its finite truncations), which enable the generation of
  new strings not present in the database; and
* selection ``σ_A`` by a k-FSA ``A`` — the only data-dependent test.

Expressions are immutable ASTs; evaluation lives in
:mod:`repro.algebra.evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArityError
from repro.fsa.machine import FSA


class Expression:
    """Base class for alignment algebra expressions."""

    __slots__ = ()

    @property
    def arity(self) -> int:
        raise NotImplementedError

    def __or__(self, other: "Expression") -> "Union":
        return Union(self, other)

    def __sub__(self, other: "Expression") -> "Diff":
        return Diff(self, other)

    def __mul__(self, other: "Expression") -> "Product":
        return Product(self, other)


@dataclass(frozen=True)
class Rel(Expression):
    """A relation symbol of known arity."""

    name: str
    relation_arity: int

    @property
    def arity(self) -> int:
        return self.relation_arity

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SigmaStar(Expression):
    """The domain symbol ``Σ*`` — arity 1, infinite value.

    Only evaluable under truncation or inside the finitely evaluable
    pattern ``σ_A(F × (Σ*)^n)`` (paper, end of Section 4).
    """

    @property
    def arity(self) -> int:
        return 1

    def __str__(self) -> str:
        return "Σ*"


@dataclass(frozen=True)
class SigmaL(Expression):
    """The truncated domain symbol ``Σ^{<=l}``."""

    bound: int

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise ArityError("Σ^{<=l} needs l >= 0")

    @property
    def arity(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"Σ^≤{self.bound}"


def _require_same_arity(left: Expression, right: Expression, op: str) -> None:
    if left.arity != right.arity:
        raise ArityError(
            f"{op} needs equal arities, got {left.arity} and {right.arity}"
        )


@dataclass(frozen=True)
class Union(Expression):
    """``E ∪ F``."""

    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        _require_same_arity(self.left, self.right, "union")

    @property
    def arity(self) -> int:
        return self.left.arity

    def __str__(self) -> str:
        return f"({self.left} ∪ {self.right})"


@dataclass(frozen=True)
class Diff(Expression):
    """``E \\ F``."""

    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        _require_same_arity(self.left, self.right, "difference")

    @property
    def arity(self) -> int:
        return self.left.arity

    def __str__(self) -> str:
        return f"({self.left} \\ {self.right})"


@dataclass(frozen=True)
class Product(Expression):
    """``E × F`` — arity is the sum of the factor arities."""

    left: Expression
    right: Expression

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    def __str__(self) -> str:
        return f"({self.left} × {self.right})"


@dataclass(frozen=True)
class Project(Expression):
    """``π_{i₁,…,i_u} E`` with distinct 0-based column indices.

    ``u = 0`` is allowed: the result is the arity-0 relation that is
    non-empty iff ``E`` is (the paper's ``π E``).
    """

    inner: Expression
    columns: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise ArityError(f"projection repeats a column: {self.columns!r}")
        for column in self.columns:
            if not 0 <= column < self.inner.arity:
                raise ArityError(
                    f"column {column} outside 0..{self.inner.arity - 1}"
                )

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __str__(self) -> str:
        return f"π_{{{','.join(map(str, self.columns))}}}{self.inner}"


@dataclass(frozen=True)
class Select(Expression):
    """``σ_A E``: keep the tuples of ``E`` that the FSA accepts."""

    inner: Expression
    machine: FSA

    def __post_init__(self) -> None:
        if self.machine.arity != self.inner.arity:
            raise ArityError(
                f"σ needs a {self.inner.arity}-FSA, got arity {self.machine.arity}"
            )

    @property
    def arity(self) -> int:
        return self.inner.arity

    def __str__(self) -> str:
        return f"σ[{self.machine}]{self.inner}"


def intersect(left: Expression, right: Expression) -> Expression:
    """``E ∩ F`` as the paper's shorthand ``E \\ (E \\ F)``."""
    return Diff(left, Diff(left, right))


def sigma_power(count: int, bound: int | None = None) -> list[Expression]:
    """``count`` copies of ``Σ*`` (or ``Σ^{<=bound}``) as product factors."""
    factory = SigmaStar if bound is None else (lambda: SigmaL(bound))
    return [factory() for _ in range(count)]


def product_of(factors: list[Expression]) -> Expression:
    """Left-nested product of one or more factors."""
    if not factors:
        raise ArityError("product needs at least one factor")
    result = factors[0]
    for factor in factors[1:]:
        result = Product(result, factor)
    return result


def truncated(expression: Expression, bound: int) -> Expression:
    """``E ↓ l``: replace every ``Σ*`` with ``Σ^{<=l}`` (Theorem 4.2)."""
    if isinstance(expression, SigmaStar):
        return SigmaL(bound)
    if isinstance(expression, (Rel, SigmaL)):
        return expression
    if isinstance(expression, Union):
        return Union(truncated(expression.left, bound), truncated(expression.right, bound))
    if isinstance(expression, Diff):
        return Diff(truncated(expression.left, bound), truncated(expression.right, bound))
    if isinstance(expression, Product):
        return Product(
            truncated(expression.left, bound), truncated(expression.right, bound)
        )
    if isinstance(expression, Project):
        return Project(truncated(expression.inner, bound), expression.columns)
    if isinstance(expression, Select):
        return Select(truncated(expression.inner, bound), expression.machine)
    raise TypeError(f"not an algebra expression: {expression!r}")


def uses_sigma_star(expression: Expression) -> bool:
    """Does ``Σ*`` occur anywhere in the expression?"""
    if isinstance(expression, SigmaStar):
        return True
    if isinstance(expression, (Rel, SigmaL)):
        return False
    if isinstance(expression, (Union, Diff, Product)):
        return uses_sigma_star(expression.left) or uses_sigma_star(
            expression.right
        )
    if isinstance(expression, (Project, Select)):
        return uses_sigma_star(expression.inner)
    raise TypeError(f"not an algebra expression: {expression!r}")


def relation_symbols(expression: Expression) -> frozenset[str]:
    """All relation names mentioned by the expression."""
    if isinstance(expression, Rel):
        return frozenset({expression.name})
    if isinstance(expression, (SigmaStar, SigmaL)):
        return frozenset()
    if isinstance(expression, (Union, Diff, Product)):
        return relation_symbols(expression.left) | relation_symbols(
            expression.right
        )
    if isinstance(expression, (Project, Select)):
        return relation_symbols(expression.inner)
    raise TypeError(f"not an algebra expression: {expression!r}")
