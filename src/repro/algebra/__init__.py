"""Alignment algebra: the procedural counterpart of the calculus."""

from repro.algebra.expressions import (
    Diff,
    Expression,
    Product,
    Project,
    Rel,
    Select,
    SigmaL,
    SigmaStar,
    Union,
    intersect,
    product_of,
    relation_symbols,
    sigma_power,
    truncated,
    uses_sigma_star,
)
from repro.algebra.evaluate import evaluate_exact, evaluate_expression
from repro.algebra.translate import (
    algebra_to_calculus,
    calculus_to_algebra,
    partition_formula,
    partitioned,
)

__all__ = [
    "Diff",
    "Expression",
    "Product",
    "Project",
    "Rel",
    "Select",
    "SigmaL",
    "SigmaStar",
    "Union",
    "intersect",
    "product_of",
    "relation_symbols",
    "sigma_power",
    "truncated",
    "uses_sigma_star",
    "evaluate_exact",
    "evaluate_expression",
    "algebra_to_calculus",
    "calculus_to_algebra",
    "partition_formula",
    "partitioned",
]
