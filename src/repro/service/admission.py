"""Cost-based admission control: reject expensive plans up front.

A long-running daemon cannot let one pathological query monopolize
the pool while cheap interactive traffic queues behind it.  The
admission controller prices every request *before* it runs, reusing
the exact arithmetic the planner already trusts: the request's
normalized :class:`~repro.ir.plan.QueryPlan` (served from the shared
session's ``ir`` cache, so pricing a repeated query is a dict lookup)
carries the :class:`~repro.ir.cost.CostModel` estimates of each
branch, and naive-fallback plans are priced at the candidate-space
size the naive engine would actually enumerate.

Two machine-readable rejection reasons exist (surfaced verbatim in
the wire protocol's ``admission-rejected`` error):

* :data:`REASON_COST` — the plan's estimated cost exceeds the
  configured ceiling; retrying will not help, narrow the query;
* :data:`REASON_QUEUE` — every pool slot is busy and the wait queue
  is at capacity; backing off and retrying is reasonable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AdmissionError, SafetyError
from repro.ir.cost import GENERATION_CEILING, CostModel
from repro.ir.plan import NaivePlan

#: Rejection reason: the cost estimate exceeds the ceiling.
REASON_COST = "cost-exceeded"

#: Rejection reason: the wait queue is full.
REASON_QUEUE = "queue-full"


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one request.

    Attributes:
        admitted: Whether the request may proceed to a pool slot.
        reason: ``None`` when admitted, else :data:`REASON_COST` or
            :data:`REASON_QUEUE`.
        est_cost: The plan-cost estimate (``None`` when no truncation
            bound was available to price the query).
        max_cost: The ceiling the estimate was compared against.
    """

    admitted: bool
    reason: str | None = None
    est_cost: float | None = None
    max_cost: float | None = None

    def raise_if_rejected(self) -> None:
        """Raise :class:`~repro.errors.AdmissionError` when rejected."""
        if self.admitted:
            return
        if self.reason == REASON_QUEUE:
            message = "admission queue is full; back off and retry"
        else:
            message = (
                f"estimated plan cost {self.est_cost:.3g} exceeds the "
                f"admission ceiling {self.max_cost:.3g}"
            )
        raise AdmissionError(
            message,
            reason=self.reason or REASON_COST,
            est_cost=self.est_cost,
            max_cost=self.max_cost,
        )


class AdmissionController:
    """Prices requests against a cost ceiling and a queue cap.

    Args:
        max_cost: The plan-cost ceiling; ``None`` disables cost-based
            rejection (every query is admitted, queue permitting).
        max_queue: How many requests may *wait* for a pool slot beyond
            the ones running; ``None`` allows unbounded queueing.

    The controller is stateless apart from its configuration — the
    server owns the live queue-depth numbers and passes them in — so
    one instance can serve every connection concurrently.
    """

    #: The unconditional green light (no estimate, no ceiling).
    ADMITTED: "AdmissionDecision"

    def __init__(
        self,
        max_cost: float | None = None,
        max_queue: int | None = None,
    ) -> None:
        if max_cost is not None and max_cost <= 0:
            raise ValueError("max_cost must be positive (or None)")
        if max_queue is not None and max_queue < 0:
            raise ValueError("max_queue must be >= 0 (or None)")
        self.max_cost = max_cost
        self.max_queue = max_queue

    # -- cost pricing ---------------------------------------------------

    def estimate(self, session, query, db, length=None) -> float | None:
        """The cost estimate the request would be admitted under.

        Uses the session-cached normalized plan: conjunctive and union
        roots are priced at their summed step estimates, naive
        fallbacks at the ``domain^k`` candidate space the naive engine
        would enumerate (capped at the cost model's generation
        ceiling).

        Args:
            session: The shared :class:`~repro.engine.QueryEngine`.
            query: The parsed query.
            db: The served database.
            length: Explicit truncation bound; ``None`` uses the
                certified limit when one exists.

        Returns:
            The estimate, or ``None`` when no bound is available to
            price against (the query then proceeds straight to
            evaluation, which raises its own
            :class:`~repro.errors.SafetyError`).
        """
        if length is not None:
            cap = length
        else:
            try:
                cap = session.certified_length(query, db)
            except SafetyError:
                return None
        plan = session.query_plan(query, db, cap)
        root = plan.root
        if isinstance(root, NaivePlan):
            model = CostModel.for_database(db, query.alphabet, cap)
            return min(
                model.domain_size ** max(len(query.head), 1),
                GENERATION_CEILING,
            )
        return float(root.est_cost)

    def assess(self, session, query, db, length=None) -> AdmissionDecision:
        """Price one query and compare it against the ceiling.

        Args:
            session: The shared :class:`~repro.engine.QueryEngine`.
            query: The parsed query.
            db: The served database.
            length: Explicit truncation bound, if any.

        Returns:
            The :class:`AdmissionDecision`; ``admitted`` unless the
            estimate exceeds ``max_cost``.
        """
        estimate = self.estimate(session, query, db, length=length)
        return self.assess_cost(estimate)

    def assess_cost(self, estimate: float | None) -> AdmissionDecision:
        """Compare a pre-computed estimate against the ceiling.

        Args:
            estimate: A cost estimate, or ``None`` for unpriceable
                requests (always admitted on the cost axis).

        Returns:
            The :class:`AdmissionDecision`.
        """
        if (
            estimate is not None
            and self.max_cost is not None
            and estimate > self.max_cost
        ):
            return AdmissionDecision(
                admitted=False,
                reason=REASON_COST,
                est_cost=estimate,
                max_cost=self.max_cost,
            )
        return AdmissionDecision(
            admitted=True, est_cost=estimate, max_cost=self.max_cost
        )

    # -- queue capacity -------------------------------------------------

    def assess_queue(self, waiting: int) -> AdmissionDecision:
        """Decide whether one more request may join the wait queue.

        Args:
            waiting: Requests currently waiting for a pool slot (not
                counting the ones already running).

        Returns:
            Rejected with :data:`REASON_QUEUE` when ``waiting`` has
            reached ``max_queue``; admitted otherwise.
        """
        if self.max_queue is not None and waiting >= self.max_queue:
            return AdmissionDecision(admitted=False, reason=REASON_QUEUE)
        return AdmissionDecision(admitted=True)


AdmissionController.ADMITTED = AdmissionDecision(admitted=True)
