"""The wire protocol: newline-delimited JSON frames over TCP.

One request or response per line, each line one JSON object, encoded
UTF-8 — trivially debuggable with ``nc`` and implementable in any
language in a few lines.  The schema identifier is
:data:`PROTOCOL_SCHEMA`; see ``docs/service.md`` for the full
specification with wire examples.

Requests look like::

    {"id": "r1", "op": "query", "params": {"formula": "R2(x)",
     "head": ["x"], "length": 3}}

and every request produces exactly one response, either::

    {"id": "r1", "ok": true, "result": {...}}

or a typed error whose ``code`` is one of the stable ``ERR_*``
constants::

    {"id": "r1", "ok": false,
     "error": {"code": "admission-rejected", "message": "...",
               "reason": "cost-exceeded", "est_cost": 1e9}}

This module owns frame encoding/decoding and request validation; it
is deliberately free of any asyncio so the blocking client
(:mod:`repro.service.client`) and the async server
(:mod:`repro.service.server`) share one definition of the wire
format.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    AdmissionError,
    DeadlineError,
    EvaluationError,
    ParseError,
    ServiceError,
    ServiceProtocolError,
)

#: Version tag for the wire format; servers echo it from ``health``.
PROTOCOL_SCHEMA = "repro.service/1"

#: Default TCP port for ``repro serve`` / ``repro client``.
DEFAULT_PORT = 7094

#: Default cap on one encoded frame (request or response), in bytes.
MAX_FRAME_BYTES = 1 << 20

#: The operations a server accepts.
OPS = ("query", "batch", "explain", "stats", "health", "update", "batch_update")

#: Operations that mutate the served database; the server runs these
#: holding *every* pool slot, so no evaluation ever observes a
#: half-applied update.
MUTATING_OPS = ("update", "batch_update")

# -- stable error codes ------------------------------------------------

ERR_MALFORMED = "malformed-request"
ERR_FRAME_TOO_LARGE = "frame-too-large"
ERR_UNKNOWN_OP = "unknown-op"
ERR_PARSE = "parse-error"
ERR_ADMISSION = "admission-rejected"
ERR_DEADLINE = "deadline-exceeded"
ERR_EVALUATION = "evaluation-error"
ERR_DRAINING = "draining"
ERR_INTERNAL = "internal-error"

#: How the client re-raises each error code as a typed exception.
ERROR_EXCEPTIONS: dict[str, type[Exception]] = {
    ERR_MALFORMED: ServiceProtocolError,
    ERR_FRAME_TOO_LARGE: ServiceProtocolError,
    ERR_UNKNOWN_OP: ServiceProtocolError,
    ERR_PARSE: ParseError,
    ERR_ADMISSION: AdmissionError,
    ERR_DEADLINE: DeadlineError,
    ERR_EVALUATION: EvaluationError,
    ERR_DRAINING: ServiceError,
    ERR_INTERNAL: ServiceError,
}


@dataclass(frozen=True)
class Request:
    """One validated request frame.

    Attributes:
        id: The client-chosen correlation id, echoed verbatim in the
            response (string, number or ``None``).
        op: One of :data:`OPS`.
        params: The op-specific parameter mapping (possibly empty).
        deadline: Optional per-request deadline in seconds, covering
            queue wait plus evaluation.
    """

    id: Any
    op: str
    params: Mapping[str, Any] = field(default_factory=dict)
    deadline: float | None = None


def encode_frame(
    payload: Mapping[str, Any], max_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Serialize one frame: compact JSON plus the ``\\n`` terminator.

    Args:
        payload: The JSON-serializable frame object.
        max_bytes: Size cap on the encoded frame.

    Returns:
        The encoded bytes, newline-terminated.

    Raises:
        ServiceProtocolError: If the encoded frame exceeds
            ``max_bytes`` or the payload is not JSON-serializable.
    """
    try:
        line = json.dumps(
            payload, separators=(",", ":"), sort_keys=True, ensure_ascii=False
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ServiceProtocolError(
            f"frame is not JSON-serializable: {error}"
        ) from error
    if len(line) + 1 > max_bytes:
        raise ServiceProtocolError(
            f"frame of {len(line) + 1} bytes exceeds the "
            f"{max_bytes}-byte limit"
        )
    return line + b"\n"


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one frame line into a JSON object.

    Args:
        line: The raw line, without the trailing newline.

    Returns:
        The decoded object.

    Raises:
        ServiceProtocolError: If the line is not valid JSON or not a
            JSON object.
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(payload, dict):
        raise ServiceProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def parse_request(payload: Mapping[str, Any]) -> Request:
    """Validate a decoded frame into a :class:`Request`.

    Args:
        payload: The decoded frame object.

    Returns:
        The validated request.

    Raises:
        ServiceProtocolError: If ``op`` is missing/unknown, ``params``
            is not an object, or ``deadline`` is not a positive number.
    """
    op = payload.get("op")
    if not isinstance(op, str):
        raise ServiceProtocolError("request is missing the 'op' field")
    if op not in OPS:
        raise ServiceProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    params = payload.get("params", {})
    if not isinstance(params, Mapping):
        raise ServiceProtocolError(
            f"'params' must be an object, got {type(params).__name__}"
        )
    deadline = payload.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(
            deadline, bool
        ) or deadline <= 0:
            raise ServiceProtocolError(
                "'deadline' must be a positive number of seconds"
            )
        deadline = float(deadline)
    return Request(
        id=payload.get("id"), op=op, params=params, deadline=deadline
    )


def ok_response(request_id: Any, result: Any) -> dict[str, Any]:
    """The success envelope for one request."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Any, code: str, message: str, **extras: Any
) -> dict[str, Any]:
    """The error envelope: a stable ``code`` plus optional extras.

    Args:
        request_id: The request's correlation id (``None`` when the
            request could not even be parsed).
        code: One of the ``ERR_*`` constants.
        message: The human-readable description.
        **extras: Additional machine-readable fields (e.g. the
            admission controller's ``reason`` and ``est_cost``).

    Returns:
        The response envelope.
    """
    error: dict[str, Any] = {"code": code, "message": message}
    error.update(extras)
    return {"id": request_id, "ok": False, "error": error}


def raise_for_error(error: Mapping[str, Any]) -> None:
    """Re-raise a response's error object as a typed exception.

    Args:
        error: The ``error`` mapping from an ``ok: false`` response.

    Raises:
        ServiceError: Or the more specific class mapped from the
            error's ``code`` (see :data:`ERROR_EXCEPTIONS`), e.g.
            :class:`~repro.errors.AdmissionError` for
            ``admission-rejected``.
    """
    code = str(error.get("code", ERR_INTERNAL))
    message = str(error.get("message", "unknown service error"))
    exc_type = ERROR_EXCEPTIONS.get(code, ServiceError)
    if exc_type is AdmissionError:
        raise AdmissionError(
            message,
            reason=str(error.get("reason", "cost-exceeded")),
            est_cost=error.get("est_cost"),
            max_cost=error.get("max_cost"),
        )
    raise exc_type(f"[{code}] {message}")


def rows_to_wire(answers) -> list[list[str]]:
    """An answer set as deterministic JSON: sorted lists of lists.

    Args:
        answers: The frozenset of string tuples an engine returned.

    Returns:
        The rows, sorted, each tuple a list — the exact on-wire form.
    """
    return [list(row) for row in sorted(answers)]


def rows_from_wire(rows) -> list[tuple[str, ...]]:
    """The inverse of :func:`rows_to_wire`: lists back to tuples."""
    return [tuple(row) for row in rows]
