"""The query service: an asyncio daemon over warm shared sessions.

Everything below the service — the Theorem 3.1 compiler, the
acceptance kernels, the IR planner, the storage indexes — is fast
*once warm*; what used to be missing is a way for many clients to
share that warmth.  This package fronts the
:class:`~repro.engine.QueryEngine` layer with a long-running TCP
daemon:

* :mod:`repro.service.protocol` — the newline-delimited JSON wire
  format (``query`` / ``batch`` / ``explain`` / ``stats`` /
  ``health`` ops, stable machine-readable error codes);
* :mod:`repro.service.pool` — the :class:`SessionPool` multiplexing
  every client onto one shared warm session under a slot bound;
* :mod:`repro.service.admission` — cost-based admission control
  reusing the :mod:`repro.ir` cost estimates;
* :mod:`repro.service.server` — the asyncio :class:`QueryService`
  daemon (deadlines, graceful drain, per-request
  :class:`~repro.observability.TraceReport` emission);
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`.

The CLI wraps both ends as ``repro serve`` and ``repro client``; the
operations handbook is ``docs/service.md``.
"""

from repro.service.admission import (
    REASON_COST,
    REASON_QUEUE,
    AdmissionController,
    AdmissionDecision,
)
from repro.service.client import ServiceClient
from repro.service.pool import DEFAULT_POOL_SIZE, SessionPool
from repro.service.protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_SCHEMA,
    Request,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    rows_from_wire,
    rows_to_wire,
)
from repro.service.server import (
    QueryService,
    ServiceHandle,
    serve_in_thread,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DEFAULT_POOL_SIZE",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "OPS",
    "PROTOCOL_SCHEMA",
    "QueryService",
    "REASON_COST",
    "REASON_QUEUE",
    "Request",
    "ServiceClient",
    "ServiceHandle",
    "SessionPool",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_request",
    "rows_from_wire",
    "rows_to_wire",
    "serve_in_thread",
]
