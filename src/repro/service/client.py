"""A blocking stdlib-socket client for the query daemon.

:class:`ServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.service.protocol` over one TCP connection, pipelining is
not needed — each call sends one request and reads its one response —
and every server-side error comes back as the typed exception the
rest of the library already uses
(:class:`~repro.errors.AdmissionError`,
:class:`~repro.errors.DeadlineError`,
:class:`~repro.errors.EvaluationError`, …), so calling code handles a
remote rejection exactly like a local one.

The client is deliberately synchronous: the CLI, the tests and the
load benchmark all drive it from plain threads.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.errors import ServiceError, ServiceProtocolError
from repro.service.protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    raise_for_error,
    rows_from_wire,
)


class ServiceClient:
    """One connection to a running :class:`~repro.service.QueryService`.

    Args:
        host: Server address.
        port: Server port (see
            :data:`~repro.service.protocol.DEFAULT_PORT`).
        timeout: Socket timeout in seconds for connect and reads; a
            request expected to run long should also carry an explicit
            ``deadline`` so the server stops it first.
        max_frame_bytes: Frame-size cap mirrored from the server.

    Usable as a context manager; :meth:`close` is idempotent.

    >>> # doctest examples live in docs/service.md
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 30.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # One-line frames must leave immediately, not sit in Nagle's
        # buffer waiting for the server's delayed ACK.
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- the raw call ---------------------------------------------------

    def call(
        self,
        op: str,
        params: dict[str, Any] | None = None,
        *,
        deadline: float | None = None,
    ) -> Any:
        """Send one request and return its ``result``.

        Args:
            op: The operation name (``query``, ``batch``, ``explain``,
                ``stats``, ``health``, ``update``, ``batch_update``).
            params: The op's parameter object.
            deadline: Optional server-side deadline in seconds.

        Returns:
            The response's ``result`` payload.

        Raises:
            ServiceError: Or the typed subclass mapped from the
                server's error code (admission rejections raise
                :class:`~repro.errors.AdmissionError`, expired
                deadlines :class:`~repro.errors.DeadlineError`, …).
        """
        self._next_id += 1
        request_id = self._next_id
        frame: dict[str, Any] = {"id": request_id, "op": op}
        if params:
            frame["params"] = params
        if deadline is not None:
            frame["deadline"] = deadline
        self._file.write(encode_frame(frame, self.max_frame_bytes))
        self._file.flush()
        line = self._file.readline(self.max_frame_bytes + 2)
        if not line:
            raise ServiceError(
                "server closed the connection without responding"
            )
        payload = decode_frame(line.rstrip(b"\n"))
        if payload.get("id") not in (request_id, None):
            raise ServiceProtocolError(
                f"response id {payload.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        if payload.get("ok"):
            return payload.get("result")
        raise_for_error(payload.get("error") or {})
        raise ServiceError("unreachable")  # pragma: no cover

    # -- typed operations -----------------------------------------------

    @staticmethod
    def _query_params(
        formula: str,
        head,
        length: int | None,
        engine: str | None,
        workers: int | None,
        shards: int | None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"formula": formula, "head": list(head)}
        for key, value in (
            ("length", length),
            ("engine", engine),
            ("workers", workers),
            ("shards", shards),
        ):
            if value is not None:
                params[key] = value
        return params

    def query(
        self,
        formula: str,
        head,
        *,
        length: int | None = None,
        engine: str | None = None,
        workers: int | None = None,
        shards: int | None = None,
        deadline: float | None = None,
    ) -> list[tuple[str, ...]]:
        """Evaluate one query; rows come back sorted, as tuples.

        Args:
            formula: The formula in the concrete syntax of
                :mod:`repro.core.parser`.
            head: The answer variables, in order.
            length: Explicit truncation bound (``None`` = certified).
            engine: Engine name (``None`` = server default).
            workers: Worker processes for sharded evaluation.
            shards: Shard count for sharded evaluation.
            deadline: Server-side deadline in seconds.

        Returns:
            The sorted answer rows — exactly
            ``sorted(QueryEngine().evaluate(...))`` run server-side.
        """
        result = self.call(
            "query",
            self._query_params(formula, head, length, engine, workers, shards),
            deadline=deadline,
        )
        return rows_from_wire(result["rows"])

    def batch(
        self,
        queries,
        *,
        length: int | None = None,
        engine: str | None = None,
        workers: int | None = None,
        shards: int | None = None,
        deadline: float | None = None,
    ) -> list[list[tuple[str, ...]]]:
        """Evaluate several ``(formula, head)`` pairs in one request.

        The members share the server session's caches *and* one
        admission decision (the summed cost estimate).

        Args:
            queries: An iterable of ``(formula, head)`` pairs.
            length: Shared truncation bound for every member.
            engine: Shared engine name.
            workers: Shared worker count.
            shards: Shared shard count.
            deadline: Server-side deadline for the whole batch.

        Returns:
            One sorted row list per member, in order.
        """
        params: dict[str, Any] = {
            "queries": [
                {"formula": formula, "head": list(head)}
                for formula, head in queries
            ]
        }
        for key, value in (
            ("length", length),
            ("engine", engine),
            ("workers", workers),
            ("shards", shards),
        ):
            if value is not None:
                params[key] = value
        result = self.call("batch", params, deadline=deadline)
        return [rows_from_wire(rows) for rows in result["results"]]

    def explain(
        self,
        formula: str,
        head,
        *,
        length: int | None = None,
        deadline: float | None = None,
    ) -> str:
        """The server-side ``--explain`` text for one query."""
        result = self.call(
            "explain",
            self._query_params(formula, head, length, None, None, None),
            deadline=deadline,
        )
        return result["text"]

    @staticmethod
    def _delta_params(insert, delete) -> dict[str, Any]:
        params: dict[str, Any] = {}
        for key, mapping in (("insert", insert), ("delete", delete)):
            if mapping:
                params[key] = {
                    name: [list(row) for row in rows]
                    for name, rows in mapping.items()
                }
        return params

    def update(
        self,
        *,
        insert=None,
        delete=None,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        """Apply one delta to the served database.

        The server holds every pool slot while applying, so clients
        never observe a half-applied update; the result reports the
        new per-relation version counters.

        Args:
            insert: ``{relation: rows}`` to add (rows are sequences of
                strings).
            delete: ``{relation: rows}`` to remove.
            deadline: Server-side deadline in seconds (queue wait plus
                application).

        Returns:
            The result object: ``applied`` / ``inserted`` / ``deleted``
            operation counts, the new ``lineage`` and the per-relation
            ``versions`` of every touched relation.
        """
        return self.call(
            "update", self._delta_params(insert, delete), deadline=deadline
        )

    def batch_update(
        self, updates, *, deadline: float | None = None
    ) -> dict[str, Any]:
        """Apply several deltas atomically, coalesced to one net delta.

        Members apply in order with last-op-wins semantics (an insert
        followed by a delete of the same row nets to the delete), and
        the coalesced delta is applied as a single exclusive update.

        Args:
            updates: An iterable of ``{"insert": ..., "delete": ...}``
                objects, each shaped like :meth:`update`'s arguments.
            deadline: Server-side deadline in seconds.

        Returns:
            The result object, as for :meth:`update`, plus the member
            count under ``updates``.
        """
        members = [
            self._delta_params(entry.get("insert"), entry.get("delete"))
            for entry in updates
        ]
        return self.call(
            "batch_update", {"updates": members}, deadline=deadline
        )

    def stats(self) -> dict[str, Any]:
        """Service counters, pool occupancy and the session report."""
        return self.call("stats")

    def health(self) -> dict[str, Any]:
        """The liveness document (``status``, pool occupancy, schema)."""
        return self.call("health")

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        except OSError:  # pragma: no cover - already gone
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "ServiceClient":
        """Enter: the client itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Exit: close the connection."""
        self.close()
