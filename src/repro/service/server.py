"""The asyncio query daemon: ``repro serve`` behind the scenes.

A :class:`QueryService` owns one database and one
:class:`~repro.service.pool.SessionPool`, accepts newline-delimited
JSON requests over TCP (:mod:`repro.service.protocol`), prices each
query through the :class:`~repro.service.admission.AdmissionController`
before it may occupy a pool slot, and runs the blocking evaluation in
the pool's thread executor under a per-request deadline.

The database is served as one consistent version: ``update`` /
``batch_update`` requests (admission-priced at their operation count,
rejected while draining like any evaluation) run under an *exclusive*
pool lease — every slot held, so no query is in flight while
:meth:`~repro.engine.QueryEngine.apply_delta` swaps the served
database, invalidates the dependent session caches and repairs the
materialized answers.  Query bodies snapshot the database reference
once, so each request evaluates entirely against a single version.

Observability: every evaluated request runs under its *own*
:class:`~repro.observability.Tracer` (activated ambiently in the
worker thread, so cache-miss compiles, kernel builds and planner
spans land in it), and the finished per-request
:class:`~repro.observability.TraceReport` — tagged with the request
id — is appended to the optional ``report_log`` JSON-lines file
and/or handed to the ``on_report`` callback.  The service itself
keeps ``service.*`` counters (requests, per-op counts, admissions,
rejections, deadline expiries, errors) on its own tracer; the
``stats`` op returns them together with the pool occupancy and the
shared session's full cache/engine report.

Failure containment is the design rule: a malformed frame, an
oversized frame, a mid-request disconnect, an expired deadline or a
rejected plan each produce one typed error response (or a dropped
connection) and the accept loop keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from time import perf_counter
from typing import Any, AsyncIterator, Callable

from repro.core.database import Database
from repro.core.parser import parse_formula
from repro.core.query import Query
from repro.delta import Delta, DeltaLog
from repro.errors import (
    AdmissionError,
    ParseError,
    ReproError,
    ServiceError,
    ServiceProtocolError,
)
from repro.observability import TraceReport, Tracer, activate
from repro.service.admission import REASON_QUEUE, AdmissionController
from repro.service.pool import DEFAULT_POOL_SIZE, SessionPool
from repro.service.protocol import (
    ERR_ADMISSION,
    ERR_DEADLINE,
    ERR_DRAINING,
    ERR_EVALUATION,
    ERR_FRAME_TOO_LARGE,
    ERR_INTERNAL,
    ERR_MALFORMED,
    ERR_PARSE,
    MAX_FRAME_BYTES,
    MUTATING_OPS,
    PROTOCOL_SCHEMA,
    Request,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    rows_to_wire,
)

#: Span-retention cap for per-request tracers; a request report stays
#: small even when a cache-cold query compiles many machines.
REQUEST_MAX_SPANS = 512

_READ_CHUNK = 65536


async def _frames(
    reader: asyncio.StreamReader, max_bytes: int
) -> AsyncIterator[tuple[str, bytes]]:
    """Yield ``("frame", line)`` / ``("oversize", b"")`` events.

    Framing is done by hand (rather than ``readline``) so an
    over-limit line degrades into exactly one ``oversize`` event — the
    rest of the line is discarded up to its newline and the connection
    keeps going, instead of the stream reader erroring out.
    """
    buffer = bytearray()
    skipping = False
    while True:
        chunk = await reader.read(_READ_CHUNK)
        at_eof = not chunk
        buffer.extend(chunk)
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                break
            line = bytes(buffer[:newline])
            del buffer[: newline + 1]
            if skipping:
                skipping = False
                continue
            if len(line) + 1 > max_bytes:
                yield ("oversize", b"")
                continue
            if line.strip():
                yield ("frame", line)
        if at_eof:
            return
        if not skipping and len(buffer) + 1 > max_bytes:
            buffer.clear()
            skipping = True
            yield ("oversize", b"")


def _positive_int(params: dict, key: str) -> int | None:
    value = params.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ServiceProtocolError(
            f"{key!r} must be a non-negative integer, got {value!r}"
        )
    return value


class QueryService:
    """A long-running query daemon over one database.

    Args:
        db: The served :class:`~repro.core.database.Database`.
        host: Bind address (default loopback).
        port: TCP port; ``0`` picks a free one (read it back from
            :attr:`address` after :meth:`start`).
        pool: A pre-built :class:`SessionPool`; built from
            ``pool_size``/``kernel_mode`` when omitted.
        pool_size: Slot count for the built pool.
        admission: A pre-built :class:`AdmissionController`; built
            from ``max_cost``/``max_queue`` when omitted.
        max_cost: Plan-cost admission ceiling (``None`` = unlimited).
        max_queue: Waiting-request cap beyond the running ones.
        default_deadline: Deadline in seconds applied to requests that
            do not carry their own (``None`` = no default).
        max_frame_bytes: Per-frame size limit, both directions.
        default_engine: Engine used when a request names none.
        default_workers: ``workers`` forwarded to evaluations that do
            not specify it (lets big plans shard via
            :mod:`repro.parallel`).
        default_shards: Likewise for the shard count.
        kernel_mode: Acceptance-kernel mode for the built session.
        report_log: Optional path; one JSON line per evaluated request
            — the :class:`~repro.observability.TraceReport` document
            wrapped as ``{"request": id, "op": ..., "report": {...}}``.
        on_report: Optional callable ``(request_id, op, TraceReport)``
            invoked after every evaluated request.
    """

    def __init__(
        self,
        db: Database,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        pool: SessionPool | None = None,
        pool_size: int = DEFAULT_POOL_SIZE,
        admission: AdmissionController | None = None,
        max_cost: float | None = None,
        max_queue: int | None = 64,
        default_deadline: float | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        default_engine: str = "auto",
        default_workers: int | None = None,
        default_shards: int | None = None,
        kernel_mode: str = "auto",
        report_log: str | None = None,
        on_report: Callable[[Any, str, TraceReport], None] | None = None,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self.pool = pool or SessionPool(size=pool_size, kernel_mode=kernel_mode)
        self.admission = admission or AdmissionController(
            max_cost=max_cost, max_queue=max_queue
        )
        self.default_deadline = default_deadline
        self.max_frame_bytes = max_frame_bytes
        self.default_engine = default_engine
        self.default_workers = default_workers
        self.default_shards = default_shards
        self.report_log = report_log
        self.on_report = on_report
        #: The service's own counters (``service.*``), plus evaluation
        #: counters absorbed from finished per-request tracers.
        self.tracer = Tracer()
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._report_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair (final port after start)."""
        return (self.host, self.port)

    async def start(self) -> None:
        """Bind the listening socket and begin accepting connections."""
        if self._server is not None:
            raise ServiceError("service already started")
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (start first)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight work.

        New evaluation requests received while draining get a typed
        ``draining`` error; ``health`` keeps answering (reporting
        ``"draining"``) so load balancers can watch the wind-down.
        Once the pool is idle every remaining connection is closed.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pool.drain()
        for writer in tuple(self._writers):
            writer.close()
        self._writers.clear()
        pending = tuple(self._conn_tasks)
        if pending:
            done, still_open = await asyncio.wait(pending, timeout=1.0)
            for task in still_open:
                task.cancel()
            if still_open:
                await asyncio.wait(still_open, timeout=1.0)
        self.pool.shutdown()

    # -- connection handling --------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.tracer.add("service.connections")
        # Request/response frames are tiny; without TCP_NODELAY each
        # one stalls on Nagle + delayed ACK (~40ms on loopback).
        raw = writer.get_extra_info("socket")
        if raw is not None:
            try:
                raw.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            async for kind, line in _frames(reader, self.max_frame_bytes):
                if kind == "oversize":
                    self.tracer.add("service.frame_too_large")
                    response = error_response(
                        None,
                        ERR_FRAME_TOO_LARGE,
                        f"frame exceeds the {self.max_frame_bytes}-byte "
                        "limit; the line was discarded",
                        limit=self.max_frame_bytes,
                    )
                else:
                    response = await self._handle_line(line)
                await self._send(writer, response)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            self.tracer.add("service.disconnects")
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):
                # The connection is being torn down either way; a close
                # that dies mid-handshake (or a loop shutdown that
                # cancels the wait) must not propagate noise.
                pass

    async def _send(
        self, writer: asyncio.StreamWriter, response: dict
    ) -> None:
        try:
            frame = encode_frame(response, self.max_frame_bytes)
        except ServiceProtocolError:
            # A result too large for one frame degrades into a typed
            # error, never a dropped connection.
            self.tracer.add("service.oversize_responses")
            frame = encode_frame(
                error_response(
                    response.get("id"),
                    ERR_FRAME_TOO_LARGE,
                    "response exceeds the frame limit; narrow the query "
                    "or raise the server's max_frame_bytes",
                    limit=self.max_frame_bytes,
                ),
                self.max_frame_bytes,
            )
        writer.write(frame)
        await writer.drain()

    async def _handle_line(self, line: bytes) -> dict:
        try:
            request = parse_request(decode_frame(line))
        except ServiceProtocolError as error:
            self.tracer.add("service.malformed")
            return error_response(None, ERR_MALFORMED, str(error))
        try:
            return await self._dispatch(request)
        except Exception as error:  # pragma: no cover - defensive
            self.tracer.add("service.internal_errors")
            return error_response(
                request.id, ERR_INTERNAL, f"{type(error).__name__}: {error}"
            )

    # -- request dispatch -----------------------------------------------

    async def _dispatch(self, request: Request) -> dict:
        self.tracer.add("service.requests")
        self.tracer.add(f"service.op.{request.op}")
        if request.op == "health":
            return ok_response(request.id, self._health())
        if request.op == "stats":
            return ok_response(request.id, self._stats())
        if self._draining:
            self.tracer.add("service.rejected_draining")
            return error_response(
                request.id,
                ERR_DRAINING,
                "server is draining; no new evaluations are accepted",
            )
        try:
            work = self._build_work(request)
        except ServiceProtocolError as error:
            self.tracer.add("service.malformed")
            return error_response(request.id, ERR_MALFORMED, str(error))
        except ParseError as error:
            self.tracer.add("service.parse_errors")
            return error_response(request.id, ERR_PARSE, str(error))

        deadline = (
            request.deadline
            if request.deadline is not None
            else self.default_deadline
        )
        started = perf_counter()

        # The queue cap only applies when the request would actually
        # wait: with a free slot, max_queue=0 still admits.
        queue_decision = (
            self.admission.assess_queue(self.pool.waiting)
            if self.pool.busy
            else AdmissionController.ADMITTED
        )
        if not queue_decision.admitted:
            self.tracer.add("service.rejected_queue")
            return error_response(
                request.id,
                ERR_ADMISSION,
                "admission queue is full; back off and retry",
                reason=REASON_QUEUE,
                max_queue=self.admission.max_queue,
            )

        def remaining() -> float | None:
            if deadline is None:
                return None
            return deadline - (perf_counter() - started)

        # Mutating ops hold *every* slot while they run, so no
        # evaluation ever observes a half-applied database swap.
        exclusive = request.op in MUTATING_OPS
        acquire = (
            self.pool.acquire_all() if exclusive else self.pool.acquire()
        )
        try:
            await asyncio.wait_for(acquire, remaining())
        except asyncio.TimeoutError:
            self.tracer.add("service.deadline_expired")
            return error_response(
                request.id,
                ERR_DEADLINE,
                f"deadline of {deadline}s expired while waiting for a "
                "pool slot",
                deadline=deadline,
                phase="queue",
            )
        future = (
            self.pool.run_exclusive(work) if exclusive else self.pool.run(work)
        )
        try:
            result = await asyncio.wait_for(future, remaining())
        except asyncio.TimeoutError:
            self.tracer.add("service.deadline_expired")
            return error_response(
                request.id,
                ERR_DEADLINE,
                f"deadline of {deadline}s expired during evaluation; "
                "the request was abandoned (its slot frees when the "
                "evaluation thread finishes)",
                deadline=deadline,
                phase="evaluate",
            )
        except AdmissionError as error:
            self.tracer.add("service.rejected_cost")
            return error_response(
                request.id,
                ERR_ADMISSION,
                str(error),
                reason=error.reason,
                est_cost=error.est_cost,
                max_cost=error.max_cost,
            )
        except ReproError as error:
            self.tracer.add("service.evaluation_errors")
            return error_response(
                request.id,
                ERR_EVALUATION,
                f"{type(error).__name__}: {error}",
            )
        self.tracer.add("service.completed")
        return ok_response(request.id, result)

    # -- op implementations ---------------------------------------------

    def _health(self) -> dict:
        db = self.db
        return {
            "status": "draining" if self._draining else "ok",
            "schema": PROTOCOL_SCHEMA,
            "active": self.pool.active,
            "waiting": self.pool.waiting,
            "pool_size": self.pool.size,
            "relations": list(db.relation_names),
            "lineage": db.lineage,
            "versions": {
                name: db.relation_version(name)
                for name in db.relation_names
            },
        }

    def _stats(self) -> dict:
        report = self.pool.session.trace_report()
        return {
            "schema": PROTOCOL_SCHEMA,
            "service": dict(self.tracer.counters),
            "pool": self.pool.stats(),
            "session": report.to_dict(),
        }

    def _parse_query(self, params: dict) -> tuple[Query, dict]:
        formula_text = params.get("formula")
        if not isinstance(formula_text, str):
            raise ServiceProtocolError("'formula' must be a string")
        head = params.get("head")
        if not isinstance(head, (list, tuple)) or not all(
            isinstance(v, str) for v in head
        ):
            raise ServiceProtocolError("'head' must be a list of variable names")
        formula = parse_formula(formula_text)
        try:
            query = Query(tuple(head), formula, self.db.alphabet)
        except ReproError as error:
            # Head/formula mismatches are request-shape problems, not
            # evaluation failures.
            raise ParseError(str(error)) from error
        options = {
            "length": _positive_int(params, "length"),
            "engine": params.get("engine") or self.default_engine,
            "workers": _positive_int(params, "workers") or self.default_workers,
            "shards": _positive_int(params, "shards") or self.default_shards,
        }
        if not isinstance(options["engine"], str):
            raise ServiceProtocolError("'engine' must be an engine name")
        return query, options

    def _parse_delta(self, params: dict) -> Delta:
        """Validate ``insert``/``delete`` row mappings into a delta."""
        sides: dict[str, dict[str, list[tuple[str, ...]]]] = {}
        for side in ("insert", "delete"):
            mapping = params.get(side, {})
            if not isinstance(mapping, dict):
                raise ServiceProtocolError(
                    f"{side!r} must map relation names to row lists"
                )
            by_name: dict[str, list[tuple[str, ...]]] = {}
            for name, rows in mapping.items():
                if not isinstance(name, str):
                    raise ServiceProtocolError(
                        "relation names must be strings"
                    )
                if not isinstance(rows, (list, tuple)):
                    raise ServiceProtocolError(
                        f"rows for {name!r} must be a list of rows"
                    )
                parsed = []
                for row in rows:
                    if not isinstance(row, (list, tuple)) or not all(
                        isinstance(value, str) for value in row
                    ):
                        raise ServiceProtocolError(
                            f"every row for {name!r} must be a list of "
                            "strings"
                        )
                    parsed.append(tuple(row))
                by_name[name] = parsed
            sides[side] = by_name
        delta = Delta.of(inserts=sides["insert"], deletes=sides["delete"])
        if delta.is_empty:
            raise ServiceProtocolError(
                "update carries no operations; provide 'insert' and/or "
                "'delete' row mappings"
            )
        # Inserts may create relations; deletes must name existing ones.
        known = set(self.db.relation_names)
        unknown = sorted(
            {name for name, _ in delta.deletes} - known
        )
        if unknown:
            raise ServiceProtocolError(
                f"unknown relation(s): {', '.join(unknown)}"
            )
        return delta

    def _build_work(self, request: Request) -> Callable[[], Any]:
        """Validate the request and close over its blocking evaluation."""
        params = dict(request.params)
        session = self.pool.session
        if request.op == "query":
            query, options = self._parse_query(params)
            return self._make_runner(request, lambda tracer: self._run_query(
                session, query, options, tracer
            ))
        if request.op == "explain":
            query, options = self._parse_query(params)

            def do_explain(tracer: Tracer) -> dict:
                from repro.ir.explain import explain_query

                db = self.db
                text = explain_query(
                    session, query, db, length=options["length"]
                )
                return {"text": text}

            return self._make_runner(request, do_explain)
        if request.op == "batch":
            raw = params.get("queries")
            if not isinstance(raw, (list, tuple)) or not raw:
                raise ServiceProtocolError(
                    "'queries' must be a non-empty list of query objects"
                )
            members = []
            for entry in raw:
                if not isinstance(entry, dict):
                    raise ServiceProtocolError(
                        "every batch member must be an object"
                    )
                member = dict(entry)
                for key in ("length", "engine", "workers", "shards"):
                    member.setdefault(key, params.get(key))
                members.append(self._parse_query(member))

            def do_batch(tracer: Tracer) -> dict:
                # One snapshot for the whole batch: every member is
                # priced and evaluated against the same version even
                # if an update lands between members.
                db = self.db
                total = 0.0
                priced = True
                for query, options in members:
                    estimate = self.admission.estimate(
                        session, query, db, length=options["length"]
                    )
                    if estimate is None:
                        priced = False
                    else:
                        total += estimate
                if priced:
                    self.admission.assess_cost(total).raise_if_rejected()
                results = []
                for query, options in members:
                    answers = session.evaluate(
                        query,
                        db,
                        length=options["length"],
                        engine=options["engine"],
                        workers=options["workers"],
                        shards=options["shards"],
                    )
                    results.append(rows_to_wire(answers))
                tracer.add("service.batch_members", len(members))
                return {"results": results, "est_cost": total}

            return self._make_runner(request, do_batch)
        if request.op == "update":
            delta = self._parse_delta(params)
            return self._make_runner(
                request,
                lambda tracer: self._run_update(session, delta, tracer),
            )
        if request.op == "batch_update":
            raw = params.get("updates")
            if not isinstance(raw, (list, tuple)) or not raw:
                raise ServiceProtocolError(
                    "'updates' must be a non-empty list of update objects"
                )
            log = DeltaLog()
            for entry in raw:
                if not isinstance(entry, dict):
                    raise ServiceProtocolError(
                        "every batch_update member must be an object"
                    )
                log.extend(self._parse_delta(entry))
            delta = log.build()
            return self._make_runner(
                request,
                lambda tracer: self._run_update(
                    session, delta, tracer, batched=len(raw)
                ),
            )
        raise ServiceProtocolError(f"unhandled op {request.op!r}")

    def _run_query(
        self, session, query: Query, options: dict, tracer: Tracer
    ) -> dict:
        # Snapshot once: a concurrent update swaps ``self.db`` only
        # while holding every pool slot, but reading it twice here
        # would still race admission against evaluation.
        db = self.db
        decision = self.admission.assess(
            session, query, db, length=options["length"]
        )
        decision.raise_if_rejected()
        started = perf_counter()
        answers = session.evaluate(
            query,
            db,
            length=options["length"],
            engine=options["engine"],
            workers=options["workers"],
            shards=options["shards"],
        )
        elapsed = perf_counter() - started
        return {
            "rows": rows_to_wire(answers),
            "engine": options["engine"],
            "est_cost": decision.est_cost,
            "elapsed": elapsed,
            "lineage": db.lineage,
        }

    def _run_update(
        self,
        session,
        delta: Delta,
        tracer: Tracer,
        batched: int | None = None,
    ) -> dict:
        """Apply one (possibly coalesced) delta and swap the served db.

        Runs under the pool's exclusive lease (every slot held), so no
        evaluation is in flight while ``self.db`` changes; queries
        admitted afterwards observe the new version, and the shared
        session's caches and materialized answers have already been
        repaired by :meth:`~repro.engine.QueryEngine.apply_delta`.
        """
        self.admission.assess_cost(float(delta.size)).raise_if_rejected()
        db = self.db
        started = perf_counter()
        updated = session.apply_delta(db, delta)
        self.db = updated
        elapsed = perf_counter() - started
        result: dict[str, Any] = {
            "applied": delta.size,
            "inserted": len(delta.inserts),
            "deleted": len(delta.deletes),
            "lineage": updated.lineage,
            "versions": {
                name: updated.relation_version(name)
                for name in delta.relations()
            },
            "elapsed": elapsed,
        }
        if batched is not None:
            result["updates"] = batched
            tracer.add("service.batch_updates", batched)
        return result

    def _make_runner(
        self, request: Request, body: Callable[[Tracer], Any]
    ) -> Callable[[], Any]:
        """Wrap an op body with per-request tracing and report emission."""

        def work() -> Any:
            tracer = Tracer(max_spans=REQUEST_MAX_SPANS)
            try:
                with activate(tracer), tracer.span(
                    "service.request",
                    op=request.op,
                    request=str(request.id),
                ):
                    return body(tracer)
            finally:
                self._emit_report(request, tracer)

        return work

    def _emit_report(self, request: Request, tracer: Tracer) -> None:
        self.tracer.absorb((), tracer.counters, tracer.gauges)
        if self.on_report is None and self.report_log is None:
            return
        report = TraceReport.build(tracer)
        if self.on_report is not None:
            self.on_report(request.id, request.op, report)
        if self.report_log is not None:
            line = json.dumps(
                {
                    "request": request.id,
                    "op": request.op,
                    "report": report.to_dict(),
                },
                sort_keys=True,
            )
            with self._report_lock, open(
                self.report_log, "a", encoding="utf-8"
            ) as handle:
                handle.write(line + "\n")


# -- running a service off the event loop ------------------------------


class ServiceHandle:
    """A service running on a background thread's event loop.

    Returned by :func:`serve_in_thread`; use :attr:`address` to
    connect a client and :meth:`stop` to drain and join.
    """

    def __init__(
        self,
        service: QueryService,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        stop_event: asyncio.Event,
    ) -> None:
        self.service = service
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` of the running service."""
        return self.service.address

    def stop(self, timeout: float = 10.0) -> None:
        """Drain the service and join the background thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout)


def serve_in_thread(db: Database, **kwargs: Any) -> ServiceHandle:
    """Start a :class:`QueryService` on a daemon thread.

    The blocking-world entry point used by tests, benchmarks and the
    handbook examples: the service (with ``port=0`` by default, so a
    free port is picked) runs on a private event loop in a background
    thread until :meth:`ServiceHandle.stop` drains it.

    Args:
        db: The database to serve.
        **kwargs: Forwarded to :class:`QueryService`.

    Returns:
        The :class:`ServiceHandle` once the socket is listening.

    Raises:
        ServiceError: If the service fails to start within 10 seconds.
    """
    started = threading.Event()
    holder: dict[str, Any] = {}

    def runner() -> None:
        async def main() -> None:
            service = QueryService(db, **kwargs)
            try:
                await service.start()
            except Exception as error:
                holder["error"] = error
                started.set()
                return
            stop_event = asyncio.Event()
            holder["service"] = service
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = stop_event
            started.set()
            await stop_event.wait()
            await service.drain()

        asyncio.run(main())

    thread = threading.Thread(
        target=runner, name="repro-service-loop", daemon=True
    )
    thread.start()
    if not started.wait(10.0) or "error" in holder:
        error = holder.get("error")
        raise ServiceError(
            f"service failed to start: {error}"
            if error
            else "service did not start within 10s"
        )
    return ServiceHandle(
        holder["service"], holder["loop"], thread, holder["stop"]
    )
