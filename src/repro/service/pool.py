"""The session pool: many clients, one set of warm caches.

The entire point of running a daemon instead of a
process-per-query CLI is cache reuse: every structural cache the
:class:`~repro.engine.QueryEngine` keeps — compiled Theorem 3.1
machines, Lemma 3.1 specializations, acceptance kernels, normalized
IR plans, the shared ``Σ^{≤l}`` domain pool — is keyed by immutable
values, so concurrent clients asking overlapping questions should hit
*one* cache, not N private ones.

A :class:`SessionPool` therefore multiplexes every connection onto a
**single shared session** (cache keys are exactly the ones the
library uses today; sharing a session across threads is explicitly
supported — cached derivations are pure, and redundant recomputation
under a rare race is harmless) and bounds *concurrency* instead: a
slot semaphore caps how many evaluations run at once, and a matching
thread executor runs the blocking evaluation off the event loop.
Queries that want intra-query parallelism still get it — the
``parallel``/``auto`` engines shard big plans across the
:mod:`repro.parallel` process pool from inside their slot.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.engine import QueryEngine

#: Default number of concurrently evaluating requests.
DEFAULT_POOL_SIZE = 4


class SessionPool:
    """A bounded evaluation pool over one shared warm session.

    Args:
        size: Maximum concurrently evaluating requests (slot count and
            executor thread count).
        session: The shared :class:`~repro.engine.QueryEngine`; built
            fresh (with ``kernel_mode``) when omitted.
        kernel_mode: Forwarded to the session constructor when no
            session is supplied.

    The pool tracks queue depth and slot occupancy so the admission
    controller can bound waiting and the ``stats`` op can report
    utilization.
    """

    def __init__(
        self,
        *,
        size: int = DEFAULT_POOL_SIZE,
        session: QueryEngine | None = None,
        kernel_mode: str = "auto",
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.session = (
            session if session is not None
            else QueryEngine(kernel_mode=kernel_mode)
        )
        self._slots = asyncio.Semaphore(size)
        self._executor = ThreadPoolExecutor(
            max_workers=size, thread_name_prefix="repro-service"
        )
        #: Requests currently waiting for a slot.
        self.waiting = 0
        #: Requests currently holding a slot (evaluating).
        self.active = 0
        #: Requests that finished (successfully or not) in a slot.
        self.served = 0
        #: High-water marks for tuning pool size.
        self.peak_active = 0
        self.peak_waiting = 0

    # -- slot lifecycle -------------------------------------------------

    @property
    def busy(self) -> bool:
        """Whether every slot is occupied (a new request would wait)."""
        return self._slots.locked()

    async def acquire(self) -> None:
        """Wait for a free slot (counted in :attr:`waiting` meanwhile)."""
        if self._slots.locked():
            self.waiting += 1
            self.peak_waiting = max(self.peak_waiting, self.waiting)
            try:
                await self._slots.acquire()
            finally:
                self.waiting -= 1
        else:
            await self._slots.acquire()
        self.active += 1
        self.peak_active = max(self.peak_active, self.active)

    def release(self) -> None:
        """Return a slot; called exactly once per successful acquire."""
        self.active -= 1
        self.served += 1
        self._slots.release()

    async def acquire_all(self) -> None:
        """Hold *every* slot — the exclusive lease for database updates.

        With all slots held no evaluation can be running, so the
        caller may swap the served database without any query
        observing a half-applied state.  Slots are taken one by one;
        a cancellation (e.g. an expired deadline while waiting)
        releases the partial hold, so an abandoned update can never
        wedge the pool.
        """
        acquired = 0
        self.waiting += 1
        self.peak_waiting = max(self.peak_waiting, self.waiting)
        try:
            for _ in range(self.size):
                await self._slots.acquire()
                acquired += 1
        except BaseException:
            for _ in range(acquired):
                self._slots.release()
            raise
        finally:
            self.waiting -= 1
        self.active += 1
        self.peak_active = max(self.peak_active, self.active)

    def run(self, fn: Callable[[], Any]) -> "asyncio.Future[Any]":
        """Run ``fn`` in the executor, releasing the held slot after it.

        Must be called with a slot held (:meth:`acquire`).  The slot
        is released when the *thread* finishes — not when the awaiting
        coroutine resumes — so a request whose deadline fires while
        its evaluation is still running keeps its slot occupied until
        the work actually completes.  That keeps the concurrency bound
        honest: an abandoned evaluation cannot be stacked under a new
        one.

        Args:
            fn: The blocking zero-argument evaluation closure.

        Returns:
            An awaitable future for ``fn``'s result.
        """
        loop = asyncio.get_running_loop()
        future = self._executor.submit(fn)

        def _done(completed) -> None:
            if not completed.cancelled():
                # Retrieve (and discard) the exception so abandoned
                # requests never warn "exception was never retrieved".
                completed.exception()
            try:
                loop.call_soon_threadsafe(self.release)
            except RuntimeError:  # pragma: no cover - loop already closed
                self.release()

        future.add_done_callback(_done)
        return asyncio.wrap_future(future)

    def run_exclusive(self, fn: Callable[[], Any]) -> "asyncio.Future[Any]":
        """Run ``fn`` under an exclusive hold (:meth:`acquire_all`).

        Like :meth:`run`, the whole lease is returned when the
        *thread* finishes — a deadline that abandons the awaiting
        coroutine leaves every slot held until the update actually
        completes, so a query admitted afterwards always sees the
        finished swap.

        Args:
            fn: The blocking zero-argument update closure.

        Returns:
            An awaitable future for ``fn``'s result.
        """
        loop = asyncio.get_running_loop()
        future = self._executor.submit(fn)

        def _release_all() -> None:
            self.active -= 1
            self.served += 1
            for _ in range(self.size):
                self._slots.release()

        def _done(completed) -> None:
            if not completed.cancelled():
                completed.exception()
            try:
                loop.call_soon_threadsafe(_release_all)
            except RuntimeError:  # pragma: no cover - loop already closed
                _release_all()

        future.add_done_callback(_done)
        return asyncio.wrap_future(future)

    # -- lifecycle ------------------------------------------------------

    async def drain(self, poll: float = 0.01) -> None:
        """Wait until no request holds a slot."""
        while self.active > 0:
            await asyncio.sleep(poll)

    def shutdown(self) -> None:
        """Shut the executor down, waiting for in-flight threads."""
        self._executor.shutdown(wait=True)

    def stats(self) -> dict[str, int]:
        """Queue-depth and occupancy numbers for the ``stats`` op."""
        return {
            "size": self.size,
            "active": self.active,
            "waiting": self.waiting,
            "served": self.served,
            "peak_active": self.peak_active,
            "peak_waiting": self.peak_waiting,
        }
