"""Fixed finite alphabets.

The paper (Section 2) fixes a finite alphabet ``Σ`` with at least two
characters before any database is designed; every string stored in a
relation and every string quantified over is drawn from ``Σ*``.  This
module provides the :class:`Alphabet` value object together with the
two endmarker symbols used by the multitape automata of Section 3.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from itertools import product

from repro.errors import AlphabetError

#: Left endmarker written on every FSA tape before the input (paper: ``⊢``).
LEFT_END = "⊢"

#: Right endmarker written on every FSA tape after the input (paper: ``⊣``).
RIGHT_END = "⊣"

#: Symbols that may never occur inside an alphabet.
_RESERVED = frozenset({LEFT_END, RIGHT_END})


@dataclass(frozen=True)
class Alphabet:
    """A fixed, finite, ordered alphabet of single-character symbols.

    The paper requires ``|Σ| >= 2``.  Symbol order is the order given at
    construction time; it only matters for deterministic enumeration.

    >>> dna = Alphabet("acgt")
    >>> "a" in dna, "x" in dna
    (True, False)
    >>> sorted(dna.strings(max_length=1))
    ['', 'a', 'c', 'g', 't']
    """

    symbols: tuple[str, ...]
    _index: dict[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __init__(self, symbols: Iterable[str]) -> None:
        ordered = tuple(symbols)
        if len(ordered) < 2:
            raise AlphabetError(
                f"alphabet needs at least two symbols, got {ordered!r}"
            )
        if len(set(ordered)) != len(ordered):
            raise AlphabetError(f"duplicate symbols in alphabet {ordered!r}")
        for sym in ordered:
            if len(sym) != 1:
                raise AlphabetError(
                    f"alphabet symbols must be single characters, got {sym!r}"
                )
            if sym in _RESERVED:
                raise AlphabetError(
                    f"symbol {sym!r} is reserved for tape endmarkers"
                )
        object.__setattr__(self, "symbols", ordered)
        object.__setattr__(
            self, "_index", {sym: i for i, sym in enumerate(ordered)}
        )

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self.symbols)

    def __len__(self) -> int:
        return len(self.symbols)

    def index(self, symbol: str) -> int:
        """Position of ``symbol`` in the alphabet's fixed order."""
        try:
            return self._index[symbol]
        except KeyError:
            raise AlphabetError(f"{symbol!r} is not in alphabet {self}") from None

    def validate_string(self, string: str) -> str:
        """Return ``string`` unchanged if every character is in Σ.

        Raises :class:`AlphabetError` otherwise.  Used at the database
        boundary so that malformed data never reaches the automata.
        """
        for char in string:
            if char not in self._index:
                raise AlphabetError(
                    f"character {char!r} of {string!r} is not in alphabet {self}"
                )
        return string

    def strings(self, max_length: int, min_length: int = 0) -> Iterator[str]:
        """Yield every string in ``Σ^{min_length} ∪ … ∪ Σ^{max_length}``.

        Enumeration is by length, then lexicographically in alphabet
        order, so it is deterministic.  This realizes the truncated
        domains ``Σ^{<=l}`` of the paper's truncation semantics.
        """
        if max_length < 0:
            return
        for length in range(max(min_length, 0), max_length + 1):
            for chars in product(self.symbols, repeat=length):
                yield "".join(chars)

    def count_strings(self, max_length: int) -> int:
        """Number of strings in ``Σ^{<=max_length}``."""
        size = len(self.symbols)
        return sum(size**length for length in range(max_length + 1))

    def tape_symbols(self) -> tuple[str, ...]:
        """Σ extended with the two endmarkers (the FSA tape alphabet)."""
        return self.symbols + (LEFT_END, RIGHT_END)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "{" + ",".join(self.symbols) + "}"


#: The DNA alphabet used in the paper's motivating examples.
DNA = Alphabet("acgt")

#: The binary alphabet used for counter/encoding constructions.
BINARY = Alphabet("01")

#: A two-letter alphabet matching Figure 6 of the paper.
AB = Alphabet("ab")
