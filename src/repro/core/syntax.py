"""Abstract syntax of alignment calculus.

Three layers, mirroring Section 2 of the paper:

* **Window formulae** — Boolean combinations of the atomic tests
  ``x == ε``, ``x == a`` and ``x == y`` on the window column of an
  alignment.
* **String formulae** — regular expressions whose "letters" are atomic
  string formulae ``τψ`` (a transpose ``τ`` followed by a window test
  ``ψ``).  The regex operators are concatenation ``.``, selection
  ``+`` and Kleene closure ``*``; ``λ`` is the empty formula word.
* **Calculus formulae** — atomic relational formulae ``R(x₁,…,x_k)``
  and string formulae, closed under ``∧``, ``¬`` and ``∃``.  The
  shorthands ``∨``, ``→`` and ``∀`` are provided as constructor
  functions that build the paper's encodings.

All nodes are frozen dataclasses: formulae are immutable values that
can be hashed, compared and shared freely.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import AssignmentError

#: Variables are plain strings; the paper's ``x₁, x₂, …`` become "x1", "x2", …
Var = str


# ---------------------------------------------------------------------------
# Window formulae
# ---------------------------------------------------------------------------


class WindowFormula:
    """Base class for window formulae (paper, truth definitions 1-5)."""

    __slots__ = ()

    def __and__(self, other: "WindowFormula") -> "WAnd":
        return WAnd(self, other)

    def __or__(self, other: "WindowFormula") -> "WindowFormula":
        return w_or(self, other)

    def __invert__(self) -> "WNot":
        return WNot(self)


@dataclass(frozen=True)
class WTrue(WindowFormula):
    """The tautological window formula ``⊤`` (paper shorthand ``x = x``)."""

    __slots__ = ()

    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class IsEmpty(WindowFormula):
    """``x == ε``: the window position of row ``x`` is undefined."""

    var: Var

    def __str__(self) -> str:
        return f"{self.var}=ε"


@dataclass(frozen=True)
class IsChar(WindowFormula):
    """``x == a``: the window position of row ``x`` holds character ``a``."""

    var: Var
    char: str

    def __str__(self) -> str:
        return f"{self.var}={self.char!r}"


@dataclass(frozen=True)
class SameChar(WindowFormula):
    """``x == y``: rows ``x`` and ``y`` agree in the window column.

    Following the paper's use of ``x = y = ε`` in Example 2, two
    *undefined* window positions compare equal.
    """

    left: Var
    right: Var

    def __str__(self) -> str:
        return f"{self.left}={self.right}"


@dataclass(frozen=True)
class WAnd(WindowFormula):
    """Conjunction of window formulae."""

    left: WindowFormula
    right: WindowFormula

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class WNot(WindowFormula):
    """Negation of a window formula."""

    inner: WindowFormula

    def __str__(self) -> str:
        return f"¬{self.inner}"


def w_or(*parts: WindowFormula) -> WindowFormula:
    """``φ ∨ ψ`` as the paper's shorthand ``¬(¬φ ∧ ¬ψ)``."""
    if not parts:
        raise ValueError("w_or needs at least one disjunct")
    result = parts[0]
    for part in parts[1:]:
        result = WNot(WAnd(WNot(result), WNot(part)))
    return result


def w_and(*parts: WindowFormula) -> WindowFormula:
    """N-ary conjunction (right-nested)."""
    if not parts:
        return WTrue()
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = WAnd(part, result)
    return result


def not_equal(left: Var, right: Var) -> WindowFormula:
    """The shorthand ``x ≠ y`` for ``¬(x = y)``."""
    return WNot(SameChar(left, right))


def not_empty(var: Var) -> WindowFormula:
    """The shorthand ``x ≠ ε``."""
    return WNot(IsEmpty(var))


def eq_chain(*vars: Var) -> WindowFormula:
    """``x₁ = x₂ = … = x_m`` as the paper's chain of pairwise equalities."""
    if len(vars) < 2:
        return WTrue()
    return w_and(*(SameChar(a, b) for a, b in zip(vars, vars[1:])))


def all_empty(*vars: Var) -> WindowFormula:
    """``x₁ = … = x_m = ε``: every listed row exhausted at the window."""
    if not vars:
        return WTrue()
    return w_and(*(IsEmpty(v) for v in vars))


def chain_equal_empty(*vars: Var) -> WindowFormula:
    """The frequent pattern ``x₁ = … = x_m = ε`` from the paper's examples.

    Semantically this both chains the equalities and requires
    emptiness; since undefined windows compare equal, requiring each
    variable empty is an equivalent, simpler rendering.
    """
    return all_empty(*vars)


def evaluate_window(
    formula: WindowFormula, chars: Mapping[Var, str | None]
) -> bool:
    """Evaluate a window formula on a character assignment.

    ``chars`` maps each variable to the character in its window column,
    or ``None`` when the window position is undefined (``= ε``).  This
    single evaluator serves both the alignment semantics (definitions
    1-5) and the FSA compiler, which evaluates window formulae on
    endmarker-extended character combinations with ``⊢``/``⊣`` mapped
    to ``None``.
    """
    if isinstance(formula, WTrue):
        return True
    if isinstance(formula, IsEmpty):
        return chars[formula.var] is None
    if isinstance(formula, IsChar):
        return chars[formula.var] == formula.char
    if isinstance(formula, SameChar):
        return chars[formula.left] == chars[formula.right]
    if isinstance(formula, WAnd):
        return evaluate_window(formula.left, chars) and evaluate_window(
            formula.right, chars
        )
    if isinstance(formula, WNot):
        return not evaluate_window(formula.inner, chars)
    raise TypeError(f"not a window formula: {formula!r}")


def window_variables(formula: WindowFormula) -> frozenset[Var]:
    """Variables mentioned by a window formula."""
    if isinstance(formula, WTrue):
        return frozenset()
    if isinstance(formula, IsEmpty):
        return frozenset({formula.var})
    if isinstance(formula, IsChar):
        return frozenset({formula.var})
    if isinstance(formula, SameChar):
        return frozenset({formula.left, formula.right})
    if isinstance(formula, WAnd):
        return window_variables(formula.left) | window_variables(formula.right)
    if isinstance(formula, WNot):
        return window_variables(formula.inner)
    raise TypeError(f"not a window formula: {formula!r}")


# ---------------------------------------------------------------------------
# Transposes and string formulae
# ---------------------------------------------------------------------------

LEFT = "l"
RIGHT = "r"


@dataclass(frozen=True)
class Transpose:
    """A transpose ``[x₁, …, x_k]_l`` or ``[x₁, …, x_k]_r``.

    The variable list may be empty: ``[]_l`` is the identity on
    alignments (used by Theorem 3.2 to express stationary behaviour).
    """

    direction: str
    variables: tuple[Var, ...]

    def __post_init__(self) -> None:
        if self.direction not in (LEFT, RIGHT):
            raise ValueError(f"transpose direction must be 'l' or 'r'")
        canonical = tuple(sorted(set(self.variables)))
        object.__setattr__(self, "variables", canonical)

    def __str__(self) -> str:
        return f"[{','.join(self.variables)}]{self.direction}"


def left(*variables: Var) -> Transpose:
    """The left transpose ``[variables]_l`` (the *forward* direction)."""
    return Transpose(LEFT, tuple(variables))


def right(*variables: Var) -> Transpose:
    """The right transpose ``[variables]_r`` (the *reverse* direction)."""
    return Transpose(RIGHT, tuple(variables))


class StringFormula:
    """Base class for string formulae (regexes over atomic formulae)."""

    __slots__ = ()

    def __add__(self, other: "StringFormula") -> "StringFormula":
        """``φ + ψ``: selection (regex union)."""
        return union(self, other)

    def __mul__(self, other: "StringFormula") -> "StringFormula":
        """``φ . ψ``: concatenation."""
        return concat(self, other)

    def star(self) -> "SStar":
        """``φ*``: Kleene closure."""
        return SStar(self)

    def plus(self) -> "StringFormula":
        """``φ⁺`` as the paper's shorthand ``φ . φ*``."""
        return concat(self, SStar(self))

    def times(self, n: int) -> "StringFormula":
        """``φⁿ``: n-fold concatenation, with ``φ⁰ = λ``."""
        if n < 0:
            raise ValueError("power must be non-negative")
        return concat(*([self] * n)) if n else Lambda()


@dataclass(frozen=True)
class SAtom(StringFormula):
    """An atomic string formula ``τψ``: transpose then window test."""

    transpose: Transpose
    test: WindowFormula

    def __str__(self) -> str:
        return f"{self.transpose}({self.test})"


@dataclass(frozen=True)
class Lambda(StringFormula):
    """``λ``: the empty formula word, vacuously true everywhere."""

    __slots__ = ()

    def __str__(self) -> str:
        return "λ"


@dataclass(frozen=True)
class SConcat(StringFormula):
    """Concatenation ``φ₁ . φ₂ . … . φ_n`` of string formulae."""

    parts: tuple[StringFormula, ...]

    def __str__(self) -> str:
        return ".".join(_wrap(p) for p in self.parts)


@dataclass(frozen=True)
class SUnion(StringFormula):
    """Selection ``φ₁ + φ₂ + … + φ_n`` of string formulae."""

    parts: tuple[StringFormula, ...]

    def __str__(self) -> str:
        return "(" + "+".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class SStar(StringFormula):
    """Kleene closure ``φ*``."""

    inner: StringFormula

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


def _wrap(formula: StringFormula) -> str:
    if isinstance(formula, (SConcat, SUnion)):
        return f"({formula})"
    return str(formula)


def atom(transpose: Transpose, test: WindowFormula | None = None) -> SAtom:
    """Build an atomic string formula; the test defaults to ``⊤``."""
    return SAtom(transpose, test if test is not None else WTrue())


def concat(*parts: StringFormula) -> StringFormula:
    """Flattening concatenation; drops ``λ`` units."""
    flat: list[StringFormula] = []
    for part in parts:
        if isinstance(part, SConcat):
            flat.extend(part.parts)
        elif isinstance(part, Lambda):
            continue
        else:
            flat.append(part)
    if not flat:
        return Lambda()
    if len(flat) == 1:
        return flat[0]
    return SConcat(tuple(flat))


def union(*parts: StringFormula) -> StringFormula:
    """Flattening selection (regex union)."""
    flat: list[StringFormula] = []
    for part in parts:
        if isinstance(part, SUnion):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        raise ValueError("union needs at least one alternative")
    if len(flat) == 1:
        return flat[0]
    return SUnion(tuple(flat))


def string_variables(formula: StringFormula) -> frozenset[Var]:
    """All variables occurring in a string formula.

    Includes variables that occur only in window tests as well as
    variables that occur only in transposes — both denote rows.
    """
    if isinstance(formula, SAtom):
        return frozenset(formula.transpose.variables) | window_variables(
            formula.test
        )
    if isinstance(formula, Lambda):
        return frozenset()
    if isinstance(formula, (SConcat, SUnion)):
        out: frozenset[Var] = frozenset()
        for part in formula.parts:
            out |= string_variables(part)
        return out
    if isinstance(formula, SStar):
        return string_variables(formula.inner)
    raise TypeError(f"not a string formula: {formula!r}")


def bidirectional_variables(formula: StringFormula) -> frozenset[Var]:
    """Variables that appear in at least one *right* transpose.

    The paper calls these *bidirectional*; all others are
    *unidirectional* (Section 2, end).
    """
    if isinstance(formula, SAtom):
        if formula.transpose.direction == RIGHT:
            return frozenset(formula.transpose.variables)
        return frozenset()
    if isinstance(formula, Lambda):
        return frozenset()
    if isinstance(formula, (SConcat, SUnion)):
        out: frozenset[Var] = frozenset()
        for part in formula.parts:
            out |= bidirectional_variables(part)
        return out
    if isinstance(formula, SStar):
        return bidirectional_variables(formula.inner)
    raise TypeError(f"not a string formula: {formula!r}")


def is_unidirectional(formula: StringFormula) -> bool:
    """True iff no variable is ever transposed right."""
    return not bidirectional_variables(formula)


def is_right_restricted(formula: StringFormula) -> bool:
    """True iff at most one variable is bidirectional.

    Right-restricted formulae are the class for which the limitation
    problem is decidable (Theorem 5.2) and which characterize the
    polynomial-time hierarchy (Theorem 6.5).
    """
    return len(bidirectional_variables(formula)) <= 1


def atoms_of(formula: StringFormula) -> tuple[SAtom, ...]:
    """All atomic string formulae occurring in ``formula`` (in order)."""
    if isinstance(formula, SAtom):
        return (formula,)
    if isinstance(formula, Lambda):
        return ()
    if isinstance(formula, (SConcat, SUnion)):
        out: list[SAtom] = []
        for part in formula.parts:
            out.extend(atoms_of(part))
        return tuple(out)
    if isinstance(formula, SStar):
        return atoms_of(formula.inner)
    raise TypeError(f"not a string formula: {formula!r}")


# ---------------------------------------------------------------------------
# Calculus formulae
# ---------------------------------------------------------------------------


class Formula:
    """Base class for alignment calculus formulae (definitions 10-13)."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return f_or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class RelAtom(Formula):
    """An atomic relational formula ``R(x₁, …, x_k)``."""

    name: str
    args: tuple[Var, ...]

    def __str__(self) -> str:
        return f"{self.name}({','.join(self.args)})"


@dataclass(frozen=True)
class StringAtom(Formula):
    """A string formula used as an atomic calculus formula."""

    formula: StringFormula

    def __str__(self) -> str:
        return str(self.formula)


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of calculus formulae."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Not(Formula):
    """Negation of a calculus formula."""

    inner: Formula

    def __str__(self) -> str:
        return f"¬{self.inner}"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over one row variable."""

    var: Var
    inner: Formula

    def __str__(self) -> str:
        return f"∃{self.var}.{self.inner}"


def rel(name: str, *args: Var) -> RelAtom:
    """Convenience constructor for relational atoms."""
    return RelAtom(name, tuple(args))


def lift(formula: StringFormula) -> StringAtom:
    """Lift a string formula to a calculus formula."""
    return StringAtom(formula)


def exists(variables: Iterable[Var] | Var, inner: Formula) -> Formula:
    """``∃x₁, …, x_n . φ`` as nested single-variable quantifiers."""
    if isinstance(variables, str):
        variables = [variables]
    result = inner
    for var in reversed(list(variables)):
        result = Exists(var, result)
    return result


def forall(variables: Iterable[Var] | Var, inner: Formula) -> Formula:
    """``∀x.φ`` as the paper's shorthand ``¬∃x.¬φ``."""
    if isinstance(variables, str):
        variables = [variables]
    result = inner
    for var in reversed(list(variables)):
        result = Not(Exists(var, Not(result)))
    return result


def f_or(*parts: Formula) -> Formula:
    """``φ ∨ ψ`` as the shorthand ``¬(¬φ ∧ ¬ψ)``."""
    if not parts:
        raise ValueError("f_or needs at least one disjunct")
    result = parts[0]
    for part in parts[1:]:
        result = Not(And(Not(result), Not(part)))
    return result


def f_and(*parts: Formula) -> Formula:
    """N-ary conjunction of calculus formulae."""
    if not parts:
        raise ValueError("f_and needs at least one conjunct")
    result = parts[0]
    for part in parts[1:]:
        result = And(result, part)
    return result


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """``φ → ψ`` as the shorthand ``¬φ ∨ ψ``."""
    return f_or(Not(antecedent), consequent)


def free_variables(formula: Formula) -> frozenset[Var]:
    """The free variables of a calculus formula."""
    if isinstance(formula, RelAtom):
        return frozenset(formula.args)
    if isinstance(formula, StringAtom):
        return string_variables(formula.formula)
    if isinstance(formula, And):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, Not):
        return free_variables(formula.inner)
    if isinstance(formula, Exists):
        return free_variables(formula.inner) - {formula.var}
    raise TypeError(f"not a calculus formula: {formula!r}")


def relation_names(formula: Formula) -> frozenset[str]:
    """All relation symbols mentioned by a formula.

    Formulae mentioning no relation symbols constitute *pure* alignment
    calculus: their truth does not depend on the database.
    """
    if isinstance(formula, RelAtom):
        return frozenset({formula.name})
    if isinstance(formula, StringAtom):
        return frozenset()
    if isinstance(formula, And):
        return relation_names(formula.left) | relation_names(formula.right)
    if isinstance(formula, (Not, Exists)):
        return relation_names(formula.inner)
    raise TypeError(f"not a calculus formula: {formula!r}")


def string_atoms(formula: Formula) -> tuple[StringFormula, ...]:
    """All string formulae embedded in a calculus formula (in order)."""
    if isinstance(formula, RelAtom):
        return ()
    if isinstance(formula, StringAtom):
        return (formula.formula,)
    if isinstance(formula, And):
        return string_atoms(formula.left) + string_atoms(formula.right)
    if isinstance(formula, (Not, Exists)):
        return string_atoms(formula.inner)
    raise TypeError(f"not a calculus formula: {formula!r}")


# ---------------------------------------------------------------------------
# Variable renaming
# ---------------------------------------------------------------------------


def rename_window(formula: WindowFormula, mapping: Mapping[Var, Var]) -> WindowFormula:
    """Rename variables in a window formula."""
    if isinstance(formula, WTrue):
        return formula
    if isinstance(formula, IsEmpty):
        return IsEmpty(mapping.get(formula.var, formula.var))
    if isinstance(formula, IsChar):
        return IsChar(mapping.get(formula.var, formula.var), formula.char)
    if isinstance(formula, SameChar):
        return SameChar(
            mapping.get(formula.left, formula.left),
            mapping.get(formula.right, formula.right),
        )
    if isinstance(formula, WAnd):
        return WAnd(
            rename_window(formula.left, mapping),
            rename_window(formula.right, mapping),
        )
    if isinstance(formula, WNot):
        return WNot(rename_window(formula.inner, mapping))
    raise TypeError(f"not a window formula: {formula!r}")


def rename_string(formula: StringFormula, mapping: Mapping[Var, Var]) -> StringFormula:
    """Rename variables in a string formula."""
    if isinstance(formula, SAtom):
        transpose = Transpose(
            formula.transpose.direction,
            tuple(mapping.get(v, v) for v in formula.transpose.variables),
        )
        return SAtom(transpose, rename_window(formula.test, mapping))
    if isinstance(formula, Lambda):
        return formula
    if isinstance(formula, SConcat):
        return SConcat(tuple(rename_string(p, mapping) for p in formula.parts))
    if isinstance(formula, SUnion):
        return SUnion(tuple(rename_string(p, mapping) for p in formula.parts))
    if isinstance(formula, SStar):
        return SStar(rename_string(formula.inner, mapping))
    raise TypeError(f"not a string formula: {formula!r}")


def rename_free(formula: Formula, mapping: Mapping[Var, Var]) -> Formula:
    """Capture-avoiding renaming of the free variables of ``formula``.

    Raises :class:`AssignmentError` if a renaming target would be
    captured by a quantifier; callers (the translation theorems) always
    rename into fresh variables, so capture indicates a bug.
    """
    if isinstance(formula, RelAtom):
        return RelAtom(
            formula.name, tuple(mapping.get(v, v) for v in formula.args)
        )
    if isinstance(formula, StringAtom):
        return StringAtom(rename_string(formula.formula, mapping))
    if isinstance(formula, And):
        return And(
            rename_free(formula.left, mapping), rename_free(formula.right, mapping)
        )
    if isinstance(formula, Not):
        return Not(rename_free(formula.inner, mapping))
    if isinstance(formula, Exists):
        inner_map = {k: v for k, v in mapping.items() if k != formula.var}
        if formula.var in inner_map.values():
            raise AssignmentError(
                f"renaming would capture {formula.var!r}; rename the bound "
                "variable first"
            )
        return Exists(formula.var, rename_free(formula.inner, inner_map))
    raise TypeError(f"not a calculus formula: {formula!r}")


@lru_cache(maxsize=None)
def fresh_variable(base: Var, taken: frozenset[Var]) -> Var:
    """A variable named after ``base`` that avoids the ``taken`` set."""
    if base not in taken:
        return base
    counter = 1
    while f"{base}_{counter}" in taken:
        counter += 1
    return f"{base}_{counter}"
