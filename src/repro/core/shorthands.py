"""The paper's derived string predicates and temporal modalities.

Section 2 of the paper develops twelve example queries whose string
parts became the de-facto standard library of alignment calculus:
string equality ``x =_s y``, concatenation, manifolds ``x ∈*_s y``,
shuffles, occurrence, bounded edit distance, the non-context-free
languages ``aXbXa`` and ``aⁿbⁿcⁿ``, and the copy-with-translation
language.  Section 6 adds temporal-logic style modalities.  This module
builds each of them as a formula value, exactly following the paper's
constructions (deviations are called out in the docstrings and in
``EXPERIMENTS.md``).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.syntax import (
    And,
    Formula,
    IsChar,
    IsEmpty,
    SameChar,
    SStar,
    StringFormula,
    Var,
    WindowFormula,
    WTrue,
    all_empty,
    atom,
    concat,
    exists,
    left,
    lift,
    not_empty,
    right,
    union,
    w_and,
    w_or,
)


# ---------------------------------------------------------------------------
# Core string predicates (Examples 1-7)
# ---------------------------------------------------------------------------


def constant(x: Var, word: str) -> StringFormula:
    """``x`` holds exactly ``word`` (Example 1's first-component test).

    Built as ``([x]_l x=w₁) . … . ([x]_l x=w_n) . ([x]_l x=ε)``.
    """
    steps = [atom(left(x), IsChar(x, char)) for char in word]
    steps.append(atom(left(x), IsEmpty(x)))
    return concat(*steps)


def equals(x: Var, y: Var) -> StringFormula:
    """String equality ``x =_s y`` (Example 2).

    ``([x,y]_l x=y)* . ([x,y]_l x=y=ε)``.
    """
    return concat(
        SStar(atom(left(x, y), SameChar(x, y))),
        atom(left(x, y), all_empty(x, y)),
    )


def prefix_of(x: Var, y: Var) -> StringFormula:
    """``x`` is a (not necessarily proper) prefix of ``y``.

    Match character by character until ``x`` is exhausted.
    """
    return concat(
        SStar(atom(left(x, y), SameChar(x, y))),
        atom(left(x, y), IsEmpty(x)),
    )


def proper_prefix_of(x: Var, y: Var) -> StringFormula:
    """``x`` is a proper prefix of ``y`` (the paper's unsafe ω example)."""
    return concat(
        SStar(atom(left(x, y), SameChar(x, y))),
        atom(left(x, y), IsEmpty(x) & not_empty(y)),
    )


def concatenation(x: Var, y: Var, z: Var) -> StringFormula:
    """``x = y · z`` (Example 3's string part).

    ``([x,y]_l x=y)* . ([x,z]_l x=z)* . ([x,y,z]_l x=y=z=ε)``.
    """
    return concat(
        SStar(atom(left(x, y), SameChar(x, y))),
        SStar(atom(left(x, z), SameChar(x, z))),
        atom(left(x, y, z), all_empty(x, y, z)),
    )


def rewind(vars: Sequence[Var]) -> StringFormula:
    """Reset the listed rows to their initial alignment.

    ``([vars]_r ⋀ vᵢ≠ε)* . ([vars]_r ⋀ vᵢ=ε)`` — the subformula (C) of
    Theorem 5.1, generalized.  Makes every listed variable
    bidirectional.
    """
    busy = w_and(*(not_empty(v) for v in vars))
    return concat(
        SStar(atom(right(*vars), busy)),
        atom(right(*vars), all_empty(*vars)),
    )


def manifold(x: Var, y: Var) -> StringFormula:
    """``x ∈*_s y``: ``x`` is a manifold ``y·y·…·y`` of ``y`` (Example 4).

    Repeatedly checks that ``y`` is a prefix of the remaining part of
    ``x``, rewinding ``y`` (which therefore becomes bidirectional)
    after every full match, until ``x`` is exhausted.
    """
    one_round = concat(
        SStar(atom(left(x, y), SameChar(x, y))),
        atom(left(y), IsEmpty(y)),
        SStar(atom(right(y), not_empty(y))),
        atom(right(y), IsEmpty(y)),
    )
    return concat(
        SStar(one_round),
        SStar(atom(left(x, y), SameChar(x, y))),
        atom(left(x, y), all_empty(x, y)),
    )


def shuffle(x: Var, y: Var, z: Var) -> StringFormula:
    """``x`` is a shuffle (interleaving) of ``y`` and ``z`` (Example 5).

    ``(([x,y]_l x=y) + ([x,z]_l x=z))* . ([x,y,z]_l x=y=z=ε)``.
    """
    return concat(
        SStar(
            union(
                atom(left(x, y), SameChar(x, y)),
                atom(left(x, z), SameChar(x, z)),
            )
        ),
        atom(left(x, y, z), all_empty(x, y, z)),
    )


def gc_plus_a_star(y: Var) -> StringFormula:
    """``y ∈ (gc + a)*`` — the Section 1 motivating pattern (Example 6)."""
    return concat(
        SStar(
            union(
                concat(atom(left(y), IsChar(y, "g")), atom(left(y), IsChar(y, "c"))),
                atom(left(y), IsChar(y, "a")),
            )
        ),
        atom(left(y), IsEmpty(y)),
    )


def occurs_in(x: Var, y: Var) -> StringFormula:
    """``x`` occurs in ``y`` as a contiguous substring (Example 7).

    ``([y]_l ⊤)* . ([x,y]_l x=y)* . ([x]_l x=ε)``.
    """
    return concat(
        SStar(atom(left(y), WTrue())),
        SStar(atom(left(x, y), SameChar(x, y))),
        atom(left(x), IsEmpty(x)),
    )


def suffix_of(x: Var, y: Var) -> StringFormula:
    """``x`` is a suffix of ``y``: skip a prefix of ``y``, then match out."""
    return concat(
        SStar(atom(left(y), WTrue())),
        SStar(atom(left(x, y), SameChar(x, y))),
        atom(left(x, y), all_empty(x, y)),
    )


# ---------------------------------------------------------------------------
# Edit distance (Example 8 and its counter variant)
# ---------------------------------------------------------------------------


def edit_distance_at_most(x: Var, y: Var, k: int) -> StringFormula:
    """Edit distance between ``x`` and ``y`` is at most ``k`` (Example 8).

    One block per allowed edit: a replacement relaxes the window test
    to ``⊤``, an insertion into ``x`` transposes only ``x``, a deletion
    transposes only ``y``.  ``k`` is a formula-level constant, not a
    runtime parameter — exactly the limitation the paper points out
    when comparing with similarity-query frameworks.
    """
    if k < 0:
        raise ValueError("edit distance bound must be non-negative")
    matches = SStar(atom(left(x, y), SameChar(x, y)))
    edit_op = union(
        atom(left(x, y), WTrue()),  # replace (or vacuously match)
        atom(left(x), WTrue()),  # insert into x
        atom(left(y), WTrue()),  # delete from x
    )
    block = concat(edit_op, matches)
    return concat(matches, block.times(k), atom(left(x, y), all_empty(x, y)))


def edit_distance_counter(
    x: Var, y: Var, z: Var, counter_char: str = "a"
) -> StringFormula:
    """The counter variant of Example 8.

    Lists alignments of ``(u, v, a^k)`` where the edit distance of
    ``u`` and ``v`` is at most ``k`` — the paper's demonstration that
    numerical degrees of similarity can be captured by counting with
    strings.  Every edit operation consumes one ``counter_char`` from
    ``z``.
    """
    matches = SStar(atom(left(x, y), SameChar(x, y)))
    edit_op = union(
        atom(left(x, y, z), IsChar(z, counter_char)),
        atom(left(x, z), IsChar(z, counter_char)),
        atom(left(y, z), IsChar(z, counter_char)),
    )
    return concat(
        matches,
        SStar(concat(edit_op, matches)),
        atom(left(x, y, z), all_empty(x, y, z)),
    )


# ---------------------------------------------------------------------------
# Non-regular languages (Examples 9-12)
# ---------------------------------------------------------------------------


def axbxa_string_part(
    x: Var, y: Var, z: Var, first: str = "a", middle: str = "b"
) -> StringFormula:
    """String part of Example 9: ``x`` is of the form ``a y b y a``.

    Uses an identical copy ``z`` of ``y`` to verify the second
    occurrence instead of rewinding — the paper's illustration of
    using ``∧`` to "reset" strings to their initial alignment.
    """
    return concat(
        atom(left(x), IsChar(x, first)),
        SStar(atom(left(x, y), SameChar(x, y))),
        atom(left(x, y), IsChar(x, middle) & IsEmpty(y)),
        SStar(atom(left(x, z), SameChar(x, z))),
        atom(left(x, z), IsChar(x, first) & IsEmpty(z)),
        atom(left(x), IsEmpty(x)),
    )


def is_axbxa(
    x: Var, y: Var, z: Var, first: str = "a", middle: str = "b"
) -> Formula:
    """Example 9 as a calculus formula with ``y``, ``z`` quantified."""
    return exists(
        [y, z],
        And(lift(equals(y, z)), lift(axbxa_string_part(x, y, z, first, middle))),
    )


def equal_count_string_parts(
    x: Var, y: Var, z: Var, char_a: str = "a", char_b: str = "b"
) -> tuple[StringFormula, StringFormula]:
    """The two string formulae of Example 10.

    ``x`` consists of ``char_a``s and ``char_b``s in equal numbers:
    every ``a`` consumes a position of witness ``y``, every ``b`` a
    position of ``z``, and ``y`` and ``z`` are exhausted simultaneously.
    """
    count = concat(
        SStar(
            union(
                atom(left(x, y), IsChar(x, char_a) & not_empty(y)),
                atom(left(x, z), IsChar(x, char_b) & not_empty(z)),
            )
        ),
        atom(left(x, y, z), all_empty(x, y, z)),
    )
    same_length = concat(
        SStar(atom(left(y, z), not_empty(y) & not_empty(z))),
        atom(left(y, z), all_empty(y, z)),
    )
    return count, same_length


def has_equal_as_bs(x: Var, y: Var, z: Var) -> Formula:
    """Example 10 as a calculus formula with the witnesses quantified."""
    count, same_length = equal_count_string_parts(x, y, z)
    return exists([y, z], And(lift(count), lift(same_length)))


def anbncn_string_part(x: Var, y: Var) -> StringFormula:
    """String part of Example 11: ``x ∈ {aⁿbⁿcⁿ}`` with counter ``y``.

    The middle phase moves ``x`` forward while rewinding ``y`` — the
    paper's illustration of simultaneous left and right transposition
    (``y`` is bidirectional).
    """
    return concat(
        SStar(atom(left(x, y), IsChar(x, "a") & not_empty(y))),
        atom(left(y), IsEmpty(y)),
        SStar(
            concat(
                atom(left(x), WTrue()),
                atom(right(y), IsChar(x, "b") & not_empty(y)),
            )
        ),
        atom(right(y), IsEmpty(y)),
        SStar(atom(left(x, y), IsChar(x, "c") & not_empty(y))),
        atom(left(x, y), all_empty(x, y)),
    )


def is_anbncn(x: Var, y: Var) -> Formula:
    """Example 11 as a calculus formula (counter quantified)."""
    return exists(y, lift(anbncn_string_part(x, y)))


def copy_translation_string_parts(
    x: Var, y: Var, z: Var, char_a: str = "a", char_b: str = "b"
) -> tuple[StringFormula, StringFormula]:
    """The two string formulae of Example 12.

    ``x = y·z`` with ``z`` the a↔b translation of ``y``.  The paper's
    printed first conjunct stops at ``([z]_l z=ε)`` without checking
    that ``x`` is exhausted, which would also admit strings with an
    uncovered suffix; we add the exhaustion test (see EXPERIMENTS.md,
    item Q12).
    """
    split = concat(
        SStar(atom(left(x, y), SameChar(x, y))),
        atom(left(y), IsEmpty(y)),
        SStar(atom(left(x, z), SameChar(x, z))),
        atom(left(x, z), IsEmpty(x) & IsEmpty(z)),
    )
    translated = concat(
        SStar(
            atom(
                left(y, z),
                w_or(
                    IsChar(y, char_a) & IsChar(z, char_b),
                    IsChar(y, char_b) & IsChar(z, char_a),
                ),
            )
        ),
        atom(left(y, z), all_empty(y, z)),
    )
    return split, translated


def is_copy_translation(x: Var, y: Var, z: Var) -> Formula:
    """Example 12 as a calculus formula with the halves quantified."""
    split, translated = copy_translation_string_parts(x, y, z)
    return exists([y, z], And(lift(split), lift(translated)))


# ---------------------------------------------------------------------------
# Temporal modalities (Section 6)
# ---------------------------------------------------------------------------


def _as_string_formula(
    vars: Sequence[Var], argument: WindowFormula | StringFormula
) -> StringFormula:
    if isinstance(argument, WindowFormula):
        return atom(left(*vars), argument)
    return argument


def next_along(vars: Sequence[Var], test: WindowFormula) -> StringFormula:
    """``next along x₁,…,x_k φ  ≝  [x₁,…,x_k]_l φ``."""
    return atom(left(*vars), test)


def until_along(
    vars: Sequence[Var], hold: WindowFormula, goal: WindowFormula
) -> StringFormula:
    """``φ along … until ψ  ≝  ([…]_l φ)* . ([…]_l ψ)``."""
    return concat(
        SStar(atom(left(*vars), hold)), atom(left(*vars), goal)
    )


def eventually_along(
    vars: Sequence[Var], argument: WindowFormula | StringFormula
) -> StringFormula:
    """``eventually along … φ  ≝  ([…]_l ⊤)* . ([…]_l φ)``.

    Accepts a nested string formula as well, matching the paper's
    composed example ``eventually along y (x=y along x,y until x=ε)``.
    """
    return concat(
        SStar(atom(left(*vars), WTrue())), _as_string_formula(vars, argument)
    )


def henceforth_along(vars: Sequence[Var], hold: WindowFormula) -> StringFormula:
    """``henceforth along … φ  ≝  ([…]_l φ)* . ([…]_l ⋀xᵢ=ε)``."""
    return concat(
        SStar(atom(left(*vars), hold)),
        atom(left(*vars), all_empty(*vars)),
    )


def since_along(
    vars: Sequence[Var], hold: WindowFormula, goal: WindowFormula
) -> StringFormula:
    """Past-tense ``until``: right transposes instead of left ones."""
    return concat(
        SStar(atom(right(*vars), hold)), atom(right(*vars), goal)
    )


def previous_along(vars: Sequence[Var], test: WindowFormula) -> StringFormula:
    """Past-tense ``next``."""
    return atom(right(*vars), test)


def occurs_in_temporal(x: Var, y: Var) -> StringFormula:
    """Example 7 rephrased with modalities, as printed in Section 6.

    ``eventually along y (x=y along x,y until x=ε)``.
    """
    return eventually_along(
        [y], until_along([x, y], SameChar(x, y), IsEmpty(x))
    )


def reverse_of(x: Var, y: Var) -> StringFormula:
    """``x`` is the reversal of ``y``.

    Winds ``y`` to its right end, then walks ``x`` forward while
    walking ``y`` backward, comparing windows.  ``y`` is bidirectional;
    the formula stays right-restricted, so — unlike in the
    constant-limit safety notion the paper criticizes at the end of
    Section 3 — reversal is certified safe here by Theorem 5.2.
    """
    return concat(
        SStar(atom(left(y), not_empty(y))),
        atom(left(y), IsEmpty(y)),
        SStar(
            concat(
                atom(left(x), WTrue()),
                atom(right(y), SameChar(x, y)),
            )
        ),
        atom(left(x), IsEmpty(x)),
        atom(right(y), IsEmpty(y)),
    )
