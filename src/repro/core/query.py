"""Queries over string databases.

A query (paper, Section 2) is an expression ``x_{i1}, …, x_{ik} | φ``
whose answer on a database ``db`` is the set of head-variable tuples
for which ``φ`` holds in some full interpretation (Eq. 1).  Evaluation
here follows the truncation semantics ``⟦φ⟧^l_db``: quantifiers and
head variables range over ``Σ^{<=l}``.  For domain-independent queries
the two agree once ``l`` reaches the limit function ``W_φ(db)``
(Definition 3.2); the :mod:`repro.safety` package derives such bounds
automatically where the paper's theory allows.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.core.database import Database
from repro.core.semantics import evaluate_naive
from repro.core.syntax import Formula, Var, free_variables
from repro.errors import EvaluationError, SafetyError


@dataclass(frozen=True)
class Query:
    """A query ``head | formula`` over a fixed alphabet.

    >>> from repro.core.alphabet import AB
    >>> from repro.core import shorthands as sh
    >>> from repro.core.syntax import And, lift, rel
    >>> q = Query(("x", "y"), And(rel("R1", "x", "y"), lift(sh.equals("x", "y"))), AB)
    """

    head: tuple[Var, ...]
    formula: Formula
    alphabet: Alphabet

    def __post_init__(self) -> None:
        free = free_variables(self.formula)
        extra = set(self.head) - free
        missing = free - set(self.head)
        if missing:
            raise EvaluationError(
                f"free variables {sorted(missing)} missing from query head"
            )
        if extra:
            raise EvaluationError(
                f"head variables {sorted(extra)} are not free in the formula"
            )
        if len(set(self.head)) != len(self.head):
            raise EvaluationError("query head repeats a variable")

    def evaluate(
        self,
        db: Database,
        length: int | None = None,
        engine: str = "naive",
        domain: Sequence[str] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """The truncated answer ``⟦φ⟧^l_db``.

        ``length`` fixes the truncation bound ``l``; when omitted, the
        safety analysis of :mod:`repro.safety` is consulted for a limit
        function and evaluation is exact (raises :class:`SafetyError`
        when no bound can be certified).  ``domain`` may supply an
        explicit candidate string pool instead, bypassing ``Σ^{<=l}``
        enumeration.

        ``engine`` selects the implementation:

        * ``"naive"`` — the direct model checker of
          :mod:`repro.core.semantics` (reference oracle).
        * ``"algebra"`` — translate to alignment algebra (Theorem 4.2)
          and evaluate the expression (the paper's procedural route).
        * ``"planner"`` — the conjunctive planner of
          :mod:`repro.core.planner` (joins, then machine generation).

        When no ``length``/``domain`` is given, the safety analysis
        certifies a bound and the planner is tried first — certified
        bounds are sound but loose, and only generation-based
        evaluation stays practical under them.
        """
        if domain is None:
            if length is None:
                length = self.certified_length(db)
                if engine == "naive":
                    planned = self._plan(db, length)
                    if planned is not None:
                        return planned
            domain = tuple(self.alphabet.strings(length))
        if engine == "planner":
            bound = length
            if bound is None:
                bound = max((len(s) for s in domain), default=0)
            planned = self._plan(db, bound)
            if planned is None:
                raise EvaluationError(
                    "query shape not supported by the conjunctive planner"
                )
            return planned
        if engine == "naive":
            return evaluate_naive(self.formula, self.head, db, domain)
        if engine == "algebra":
            from repro.algebra.translate import calculus_to_algebra
            from repro.algebra.evaluate import evaluate_expression

            expression = calculus_to_algebra(
                self.formula, self.head, self.alphabet
            )
            bound = max((len(s) for s in domain), default=0)
            return evaluate_expression(
                expression, db, length=bound, domain=tuple(domain)
            )
        raise EvaluationError(f"unknown engine {engine!r}")

    def _plan(self, db: Database, cap: int) -> frozenset | None:
        from repro.core.planner import evaluate_conjunctive

        return evaluate_conjunctive(
            self.formula, self.head, db, self.alphabet, cap
        )

    def certified_length(self, db: Database) -> int:
        """A truncation bound from the safety analysis, if derivable."""
        from repro.safety.domain_independence import limit_function

        report = limit_function(self.formula, self.alphabet)
        if report is None:
            raise SafetyError(
                "no limit function could be certified for this query; "
                "pass an explicit length"
            )
        return report.bound(db)

    def __str__(self) -> str:
        return f"{', '.join(self.head)} | {self.formula}"
