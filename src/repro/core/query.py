"""Queries over string databases.

A query (paper, Section 2) is an expression ``x_{i1}, …, x_{ik} | φ``
whose answer on a database ``db`` is the set of head-variable tuples
for which ``φ`` holds in some full interpretation (Eq. 1).  Evaluation
here follows the truncation semantics ``⟦φ⟧^l_db``: quantifiers and
head variables range over ``Σ^{<=l}``.  For domain-independent queries
the two agree once ``l`` reaches the limit function ``W_φ(db)``
(Definition 3.2); the :mod:`repro.safety` package derives such bounds
automatically where the paper's theory allows.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.core.database import Database
from repro.core.syntax import Formula, Var, free_variables
from repro.errors import EvaluationError


@dataclass(frozen=True)
class Query:
    """A query ``head | formula`` over a fixed alphabet.

    >>> from repro.core.alphabet import AB
    >>> from repro.core import shorthands as sh
    >>> from repro.core.syntax import And, lift, rel
    >>> q = Query(("x", "y"), And(rel("R1", "x", "y"), lift(sh.equals("x", "y"))), AB)
    """

    head: tuple[Var, ...]
    formula: Formula
    alphabet: Alphabet

    def __post_init__(self) -> None:
        free = free_variables(self.formula)
        extra = set(self.head) - free
        missing = free - set(self.head)
        if missing:
            raise EvaluationError(
                f"free variables {sorted(missing)} missing from query head"
            )
        if extra:
            raise EvaluationError(
                f"head variables {sorted(extra)} are not free in the formula"
            )
        if len(set(self.head)) != len(self.head):
            raise EvaluationError("query head repeats a variable")

    def evaluate(
        self,
        db: Database,
        length: int | None = None,
        engine: "str | object" = "auto",
        domain: Sequence[str] | None = None,
    ) -> frozenset[tuple[str, ...]]:
        """The truncated answer ``⟦φ⟧^l_db``.

        ``length`` fixes the truncation bound ``l``; when omitted, the
        safety analysis of :mod:`repro.safety` is consulted for a limit
        function and evaluation is exact (raises :class:`SafetyError`
        when no bound can be certified).  ``domain`` may supply an
        explicit candidate string pool instead, bypassing ``Σ^{<=l}``
        enumeration.

        ``engine`` names a strategy from the :mod:`repro.engine`
        registry, or is an :class:`~repro.engine.Engine` object:

        * ``"auto"`` (default) — planner-first with naive fallback when
          no ``length``/``domain`` is given; plain naive otherwise.
        * ``"naive"`` — the direct model checker of
          :mod:`repro.core.semantics` (reference oracle).
        * ``"algebra"`` — translate to alignment algebra (Theorem 4.2)
          and evaluate the expression (the paper's procedural route).
        * ``"planner"`` — the conjunctive planner of
          :mod:`repro.core.planner` (joins, then machine generation).

        Evaluation routes through the process-wide
        :class:`repro.engine.QueryEngine` session, so compiled
        machines, limit reports and domain enumerations are reused
        across calls; hold a dedicated session for isolated workloads
        or batch evaluation (``QueryEngine.evaluate_many``).
        """
        from repro.engine import default_engine

        return default_engine().evaluate(
            self, db, length=length, engine=engine, domain=domain
        )

    def certified_length(self, db: Database) -> int:
        """A truncation bound from the safety analysis, if derivable."""
        from repro.engine import default_engine

        return default_engine().certified_length(self, db)

    def __str__(self) -> str:
        return f"{', '.join(self.head)} | {self.formula}"
