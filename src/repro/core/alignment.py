"""Alignments: the states of alignment calculus.

An *alignment* (paper, Section 2) is a partial function
``A : N × Z → Σ`` placing, for each row ``i``, one finite string on a
contiguous interval ``K_i`` of columns, such that the distinguished
*window* column 0 at least touches the defined area
(``K_i ∩ {-1, 0, 1} ≠ ∅``) unless the row is empty.

Internally each row is stored in *head coordinates*: a pair
``(string, head)`` with ``0 <= head <= len(string) + 1`` where the
window column shows ``string[head - 1]`` when ``1 <= head <=
len(string)`` and nothing otherwise.  ``head == 0`` means the window is
just left of the string (the *initial* position, ``min K_i = 1``) and
``head == len(string) + 1`` means it is just right of it.  The empty
string always has ``head == 0``; as the paper notes, alignments — in
contrast to FSA tapes — do not distinguish the two ends of ``ε``.

The head-coordinate view is exactly the tape-configuration
correspondence of Theorem 3.1 (Figure 3), which is why the same class
doubles as the pedagogical rendering of Figures 1 and 2 and as the
semantic substrate of the model checker.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.errors import AssignmentError


@dataclass(frozen=True)
class Row:
    """One row of an alignment: a string plus the window position.

    ``head`` follows the conventions documented in the module
    docstring.  Instances are immutable; the transpose operations on
    :class:`Alignment` produce new rows.
    """

    string: str
    head: int = 0

    def __post_init__(self) -> None:
        limit = len(self.string) + 1 if self.string else 0
        if not 0 <= self.head <= limit:
            raise ValueError(
                f"head {self.head} out of range for string {self.string!r}"
            )

    @property
    def window_char(self) -> str | None:
        """Character in the window column, or ``None`` if undefined."""
        if 1 <= self.head <= len(self.string):
            return self.string[self.head - 1]
        return None

    def char_at(self, column: int) -> str | None:
        """The partial function ``A(row, column)`` for this row.

        With the string occupying columns ``1 - head … len - head``,
        column ``j`` shows character index ``head - 1 + j``.
        """
        index = self.head - 1 + column
        if 0 <= index < len(self.string):
            return self.string[index]
        return None

    @property
    def columns(self) -> range:
        """The interval ``K_i`` of columns where this row is defined."""
        if not self.string:
            return range(0)
        return range(1 - self.head, len(self.string) - self.head + 1)

    def slid_left(self) -> "Row":
        """Shift one position left unless the window passed the right end.

        Implements the clamping in the paper's definition of a left
        transpose: the row moves only while ``K_i ∩ {0, 1} ≠ ∅``, i.e.
        while ``head <= len(string)``.
        """
        if self.string and self.head <= len(self.string):
            return Row(self.string, self.head + 1)
        return self

    def slid_right(self) -> "Row":
        """Shift one position right unless the window passed the left end."""
        if self.string and self.head >= 1:
            return Row(self.string, self.head - 1)
        return self


_EMPTY_ROW = Row("", 0)


class Alignment:
    """An immutable alignment of finitely many explicitly-set rows.

    Rows that were never set behave as the empty string (``K_i = ∅``);
    queries only ever inspect rows bound to variables, so the lazily
    empty remainder is unobservable, exactly as in the paper's remark
    that the structure of unused rows "can safely be ignored".

    >>> a = Alignment.initial({0: "abc", 1: "abb", 2: "cacd"})
    >>> a = a.transpose_left([0, 1, 2]).transpose_left([2])
    >>> a.window_char(2)
    'a'
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: Mapping[int, Row]) -> None:
        for index in rows:
            if index < 0:
                raise AssignmentError(f"row indices must be natural, got {index}")
        # Drop rows indistinguishable from the default so that equality
        # of alignments is equality of observable behaviour.
        self._rows: dict[int, Row] = {
            i: row for i, row in rows.items() if row != _EMPTY_ROW
        }

    # -- construction ---------------------------------------------------

    @classmethod
    def initial(cls, strings: Mapping[int, str]) -> "Alignment":
        """The initial alignment ``A0``: every string starts at column 1.

        This is the starting position the paper fixes for query
        evaluation — the leftmost symbol of each row sits one position
        to the right of the window.
        """
        return cls({i: Row(s, 0) for i, s in strings.items()})

    @classmethod
    def from_rows(cls, rows: Mapping[int, Row]) -> "Alignment":
        """Build an alignment from explicit head-positioned rows."""
        return cls(dict(rows))

    # -- observation ----------------------------------------------------

    def row(self, index: int) -> Row:
        """The row at ``index`` (empty if never set)."""
        return self._rows.get(index, _EMPTY_ROW)

    def sigma(self, index: int) -> str:
        """``σ_A(i)``: the string represented by row ``index``."""
        return self.row(index).string

    def window_char(self, index: int) -> str | None:
        """``A(index, 0)`` — the window character, or ``None``."""
        return self.row(index).window_char

    def char_at(self, index: int, column: int) -> str | None:
        """The partial function ``A(index, column)``."""
        return self.row(index).char_at(column)

    @property
    def set_rows(self) -> tuple[int, ...]:
        """Indices of rows that were explicitly set, ascending."""
        return tuple(sorted(self._rows))

    def is_initial(self) -> bool:
        """True iff every row is at the starting position ``min K_i = 1``."""
        return all(row.head == 0 for row in self._rows.values())

    # -- state transitions ----------------------------------------------

    def transpose_left(self, indices: Iterable[int]) -> "Alignment":
        """The left transpose ``[i1, …, ik]_l`` applied to this alignment."""
        rows = dict(self._rows)
        for index in indices:
            rows[index] = self.row(index).slid_left()
        return Alignment(rows)

    def transpose_right(self, indices: Iterable[int]) -> "Alignment":
        """The right transpose ``[i1, …, ik]_r`` applied to this alignment."""
        rows = dict(self._rows)
        for index in indices:
            rows[index] = self.row(index).slid_right()
        return Alignment(rows)

    def transpose(self, direction: str, indices: Iterable[int]) -> "Alignment":
        """Apply a transpose by direction tag ``'l'`` or ``'r'``."""
        if direction == "l":
            return self.transpose_left(indices)
        if direction == "r":
            return self.transpose_right(indices)
        raise ValueError(f"unknown transpose direction {direction!r}")

    def with_row(self, index: int, string: str) -> "Alignment":
        """Functional update: set row ``index`` to ``string`` at start."""
        rows = dict(self._rows)
        rows[index] = Row(string, 0)
        return Alignment(rows)

    def truncate(self, length: int) -> "Alignment":
        """The truncation ``A^l``: keep only the first ``l`` characters.

        Only meaningful for initial alignments, matching the paper's
        definition of ``A0^l``.
        """
        return Alignment(
            {i: Row(row.string[:length], 0) for i, row in self._rows.items()}
        )

    # -- comparison -----------------------------------------------------

    def _key(self) -> tuple:
        return tuple(sorted(self._rows.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alignment):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{i}: {row.string!r}@{row.head}" for i, row in sorted(self._rows.items())
        )
        return f"Alignment({{{inner}}})"

    # -- rendering (Figures 1 and 2) ------------------------------------

    def render(self, indices: Iterable[int] | None = None) -> str:
        """ASCII rendering in the style of the paper's Figure 1.

        Rows are drawn stacked with the window column marked by ``|``
        guides above and below, e.g.::

                |
             a b c
             a b b
           c a c d
                |
        """
        rows = list(indices) if indices is not None else list(self.set_rows)
        if not rows:
            return "|\n|"
        columns = [self.row(i).columns for i in rows]
        low = min((c.start for c in columns if len(c)), default=0)
        high = max((c.stop - 1 for c in columns if len(c)), default=0)
        low, high = min(low, 0), max(high, 0)
        width = 2  # one char plus one space per column
        lines = []
        marker = " " * ((0 - low) * width) + "|"
        lines.append(marker)
        for index in rows:
            cells = []
            for col in range(low, high + 1):
                char = self.char_at(index, col)
                cells.append(char if char is not None else " ")
            lines.append(" ".join(cells).rstrip())
        lines.append(marker)
        return "\n".join(lines)


def initial_alignment_for(
    strings: Iterable[str], alphabet: Alphabet | None = None
) -> Alignment:
    """Initial alignment with ``strings`` on rows ``0, 1, 2, …``.

    If ``alphabet`` is given the strings are validated against it.
    """
    listed = list(strings)
    if alphabet is not None:
        for string in listed:
            alphabet.validate_string(string)
    return Alignment.initial(dict(enumerate(listed)))
