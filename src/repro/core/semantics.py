"""Direct model-checking semantics of alignment calculus.

This module implements the paper's truth definitions 1-13 *literally*:
string formulae are checked by searching for a satisfying formula word
over the actual alignment state space, and the relational layer
recurses over ``∧``, ``¬`` and ``∃`` with quantifiers ranging over an
explicitly supplied finite domain (the truncated interpretation
``Σ^{<=l}`` of the paper's Section 2).

It is deliberately independent of the FSA pipeline of Section 3, so the
two engines can be cross-checked against each other — the library's
main internal consistency property (Theorems 3.1/3.2 made executable).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.alignment import Alignment
from repro.core.database import Database
from repro.core.syntax import (
    And,
    Exists,
    Formula,
    Lambda,
    Not,
    RelAtom,
    SAtom,
    SConcat,
    SStar,
    SUnion,
    StringAtom,
    StringFormula,
    Var,
    evaluate_window,
    free_variables,
    string_variables,
)
from repro.errors import AssignmentError


# ---------------------------------------------------------------------------
# Assignments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assignment:
    """An injection from variables to alignment rows (paper, Section 2).

    Injectivity guarantees no two distinct variables denote the same
    row; it is checked at construction time.
    """

    mapping: tuple[tuple[Var, int], ...]

    def __init__(self, mapping: Mapping[Var, int]) -> None:
        items = tuple(sorted(mapping.items()))
        rows = [row for _, row in items]
        if len(set(rows)) != len(rows):
            raise AssignmentError(f"assignment is not injective: {mapping!r}")
        object.__setattr__(self, "mapping", items)

    def __getitem__(self, var: Var) -> int:
        for name, row in self.mapping:
            if name == var:
                return row
        raise AssignmentError(f"variable {var!r} is unassigned")

    def __contains__(self, var: Var) -> bool:
        return any(name == var for name, _ in self.mapping)

    def extended(self, var: Var, row: int) -> "Assignment":
        """``θ[x = i]``: the assignment updated at ``var``."""
        base = {name: r for name, r in self.mapping if name != var}
        base[var] = row
        return Assignment(base)

    def rows(self) -> tuple[int, ...]:
        return tuple(row for _, row in self.mapping)


# ---------------------------------------------------------------------------
# String-formula satisfaction (truth definitions 1-9)
# ---------------------------------------------------------------------------


class _RegexNFA:
    """A Thompson NFA whose letters are atomic string formulae.

    States are integers; ``edges[state]`` lists ``(atom-or-None, next)``
    pairs where ``None`` marks an ε-edge.  Only used internally by the
    direct checker; the full FSA machinery of Section 3 lives in
    :mod:`repro.fsa`.
    """

    __slots__ = ("edges", "start", "final")

    def __init__(self) -> None:
        self.edges: list[list[tuple[SAtom | None, int]]] = []
        self.start = self._new_state()
        self.final = self._new_state()

    def _new_state(self) -> int:
        self.edges.append([])
        return len(self.edges) - 1

    def _add(self, src: int, label: SAtom | None, dst: int) -> None:
        self.edges[src].append((label, dst))

    def build(self, formula: StringFormula, src: int, dst: int) -> None:
        """Wire ``formula`` between states ``src`` and ``dst``."""
        if isinstance(formula, SAtom):
            self._add(src, formula, dst)
        elif isinstance(formula, Lambda):
            self._add(src, None, dst)
        elif isinstance(formula, SConcat):
            current = src
            for part in formula.parts[:-1]:
                nxt = self._new_state()
                self.build(part, current, nxt)
                current = nxt
            self.build(formula.parts[-1], current, dst)
        elif isinstance(formula, SUnion):
            for part in formula.parts:
                self.build(part, src, dst)
        elif isinstance(formula, SStar):
            hub = self._new_state()
            self._add(src, None, hub)
            self._add(hub, None, dst)
            self.build(formula.inner, hub, hub)
        else:
            raise TypeError(f"not a string formula: {formula!r}")

    def closure(self, states: frozenset[int]) -> frozenset[int]:
        """ε-closure of a state set."""
        seen = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for label, nxt in self.edges[state]:
                if label is None and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)


def _compile_regex(formula: StringFormula) -> _RegexNFA:
    nfa = _RegexNFA()
    nfa.build(formula, nfa.start, nfa.final)
    return nfa


_REGEX_CACHE: dict[StringFormula, _RegexNFA] = {}


def _regex_for(formula: StringFormula) -> _RegexNFA:
    nfa = _REGEX_CACHE.get(formula)
    if nfa is None:
        nfa = _compile_regex(formula)
        _REGEX_CACHE[formula] = nfa
    return nfa


def _apply_atom(
    alignment: Alignment, atom: SAtom, assignment: Assignment
) -> Alignment | None:
    """One step of truth definition 8: transpose, then test the window.

    Returns the transposed alignment when the window test succeeds,
    else ``None``.
    """
    rows = [assignment[v] for v in atom.transpose.variables]
    moved = alignment.transpose(atom.transpose.direction, rows)
    chars = {
        var: moved.window_char(assignment[var])
        for var in _test_variables(atom)
    }
    if evaluate_window(atom.test, chars):
        return moved
    return None


def _test_variables(atom: SAtom) -> frozenset[Var]:
    from repro.core.syntax import window_variables

    return window_variables(atom.test)


def satisfies_string(
    alignment: Alignment,
    formula: StringFormula,
    assignment: Assignment,
) -> bool:
    """Truth definition 9: ``A ⊨ φθ`` for a string formula ``φ``.

    Searches for a formula word in ``L(φ)`` that is true in
    ``alignment`` under ``assignment``.  The search runs over pairs
    (regex state, alignment); because every row's head is clamped to a
    finite range, the reachable state space is finite and breadth-first
    search terminates.
    """
    for var in string_variables(formula):
        if var not in assignment:
            raise AssignmentError(f"string formula uses unassigned {var!r}")
    nfa = _regex_for(formula)
    start = nfa.closure(frozenset({nfa.start}))
    if nfa.final in start:
        # λ ∈ L(φ): vacuously true in every alignment.
        return True
    frontier: list[tuple[int, Alignment]] = [
        (state, alignment) for state in start
    ]
    visited: set[tuple[int, Alignment]] = set(frontier)
    while frontier:
        state, current = frontier.pop()
        for label, nxt in nfa.edges[state]:
            if label is None:
                continue
            moved = _apply_atom(current, label, assignment)
            if moved is None:
                continue
            for closed in nfa.closure(frozenset({nxt})):
                if closed == nfa.final:
                    return True
                key = (closed, moved)
                if key not in visited:
                    visited.add(key)
                    frontier.append(key)
    return False


def satisfying_alignments(
    alignment: Alignment,
    formula: StringFormula,
    assignment: Assignment,
) -> frozenset[Alignment]:
    """All alignments reachable at acceptance — used by tests.

    Returns the set of final alignments ``τ_m(…(τ_1 A)…)`` over the
    satisfying formula words of ``L(φ)``; empty iff ``A ⊭ φθ``.
    """
    nfa = _regex_for(formula)
    start = nfa.closure(frozenset({nfa.start}))
    results: set[Alignment] = set()
    if nfa.final in start:
        results.add(alignment)
    frontier: list[tuple[int, Alignment]] = [
        (state, alignment) for state in start
    ]
    visited: set[tuple[int, Alignment]] = set(frontier)
    while frontier:
        state, current = frontier.pop()
        for label, nxt in nfa.edges[state]:
            if label is None:
                continue
            moved = _apply_atom(current, label, assignment)
            if moved is None:
                continue
            for closed in nfa.closure(frozenset({nxt})):
                if closed == nfa.final:
                    results.add(moved)
                key = (closed, moved)
                if key not in visited:
                    visited.add(key)
                    frontier.append(key)
    return frozenset(results)


# ---------------------------------------------------------------------------
# Full calculus satisfaction (truth definitions 10-13, truncated domain)
# ---------------------------------------------------------------------------


def check_string_formula(
    formula: StringFormula, env: Mapping[Var, str]
) -> bool:
    """Check a string formula from the *initial* alignment of ``env``.

    Because the calculus layer (``∧``, ``¬``, ``∃``) never changes the
    alignment, every embedded string formula of a query is evaluated
    from the initial alignment — this helper builds that alignment with
    one fresh row per variable.
    """
    variables = sorted(string_variables(formula))
    alignment = Alignment.initial(
        {row: env[var] for row, var in enumerate(variables)}
    )
    assignment = Assignment({var: row for row, var in enumerate(variables)})
    return satisfies_string(alignment, formula, assignment)


def satisfies(
    formula: Formula,
    env: Mapping[Var, str],
    db: Database,
    domain: Sequence[str],
) -> bool:
    """``(A0^l, db) ⊨ φθ`` with quantifiers ranging over ``domain``.

    ``env`` supplies the strings bound to the free variables; the
    fullness condition of the paper (every string available on
    infinitely many rows) is realized by letting ``∃`` draw any string
    from ``domain`` into a fresh row.
    """
    if isinstance(formula, RelAtom):
        return db.contains(formula.name, tuple(env[v] for v in formula.args))
    if isinstance(formula, StringAtom):
        return check_string_formula(formula.formula, env)
    if isinstance(formula, And):
        return satisfies(formula.left, env, db, domain) and satisfies(
            formula.right, env, db, domain
        )
    if isinstance(formula, Not):
        return not satisfies(formula.inner, env, db, domain)
    if isinstance(formula, Exists):
        inner_env = dict(env)
        for candidate in domain:
            inner_env[formula.var] = candidate
            if satisfies(formula.inner, inner_env, db, domain):
                return True
        return False
    raise TypeError(f"not a calculus formula: {formula!r}")


def evaluate_naive(
    formula: Formula,
    head: Sequence[Var],
    db: Database,
    domain: Sequence[str],
) -> frozenset[tuple[str, ...]]:
    """Brute-force query answer over a finite domain (Eq. 1 truncated).

    Enumerates every assignment of ``domain`` strings to the head
    variables and keeps those satisfying ``formula``.  Exponential in
    the number of free variables — the reference oracle the efficient
    engines are validated against.
    """
    from itertools import product

    free = free_variables(formula)
    missing = free - set(head)
    if missing:
        raise AssignmentError(
            f"free variables {sorted(missing)} are not in the query head"
        )
    answers: set[tuple[str, ...]] = set()
    for values in product(domain, repeat=len(head)):
        env = dict(zip(head, values))
        if satisfies(formula, env, db, domain):
            answers.add(tuple(values))
    return frozenset(answers)
