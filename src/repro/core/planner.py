"""A conjunctive query planner for alignment calculus.

The theoretical evaluation routes — brute-force enumeration over
``Σ^{<=l}`` (Section 2's truncation semantics) and the Theorem 4.2
algebra translation — both materialize candidate strings per variable,
which is hopeless once the certified truncation bound is loose.  This
planner implements the evaluation strategy the paper's Eq. (6) hints
at for the common query shape

    ∃ y₁ … y_n . (L₁ ∧ L₂ ∧ … ∧ L_m)

where each literal ``Lᵢ`` is a relational atom, a string formula, or a
negation of either:

1. relational atoms are joined first (they ground variables in
   database strings);
2. a string formula with unbound variables is turned into a
   *generator*: its compiled machine runs as a generalized Mealy
   machine (Definition 3.1), producing the unbound variables from the
   bound ones — capped by the certified limit so unsafe generation
   cannot run away;
3. fully-bound literals (including negations) filter.

Queries outside this shape fall back to the caller's naive engine.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.core.database import Database
from repro.core.syntax import (
    And,
    Exists,
    Formula,
    Not,
    RelAtom,
    StringAtom,
    Var,
    string_variables,
)

Binding = dict[Var, str]


@dataclass(frozen=True)
class _Literal:
    atom: Formula
    negated: bool

    def variables(self) -> frozenset[Var]:
        if isinstance(self.atom, RelAtom):
            return frozenset(self.atom.args)
        return string_variables(self.atom.formula)


def decompose_conjunctive(
    formula: Formula,
) -> tuple[list[Var], list[_Literal]] | None:
    """Strip the ∃-prefix and flatten the conjunction of literals.

    Returns ``None`` when the formula does not have the supported
    shape (e.g. nested quantifiers under negation, disjunctions).
    The result is a pure function of the formula — engine sessions
    cache it as the query's *plan*.  Recorded as a ``plan``-stage span
    on the ambient tracer.
    """
    from repro.observability import current_tracer

    with current_tracer().span("plan.decompose", stage="plan"):
        return _decompose_conjunctive(formula)


def _decompose_conjunctive(
    formula: Formula,
) -> tuple[list[Var], list[_Literal]] | None:
    """The uninstrumented shape analysis behind :func:`decompose_conjunctive`."""
    quantified: list[Var] = []
    body = formula
    while isinstance(body, Exists):
        quantified.append(body.var)
        body = body.inner

    literals: list[_Literal] = []

    def flatten(node: Formula) -> bool:
        if isinstance(node, And):
            return flatten(node.left) and flatten(node.right)
        if isinstance(node, (RelAtom, StringAtom)):
            literals.append(_Literal(node, False))
            return True
        if isinstance(node, Not) and isinstance(
            node.inner, (RelAtom, StringAtom)
        ):
            literals.append(_Literal(node.inner, True))
            return True
        return False

    if not flatten(body):
        return None
    return quantified, literals


def _join_relational(
    bindings: list[Binding],
    literal: _Literal,
    db: Database,
    restrict_rows: frozenset[tuple[str, ...]] | None = None,
) -> list[Binding]:
    """Extend bindings with the rows of the literal's relation.

    When the literal is a :class:`~repro.ir.plan.PlanStep` carrying
    pushed-down index ``prefilter`` factors *and* the relation's
    storage backend answers candidate probes, only the candidate rows
    are scanned — the ``index.pruned`` counter records how many rows
    the probe excluded.  Backends without an index (or literals
    without prefilters) scan the full relation, exactly as before.

    ``restrict_rows`` replaces the scanned row set entirely — the
    semi-naive maintenance hook: incremental re-execution feeds the
    delta's rows through this one step while every other step sees
    the full database.
    """
    from repro.observability import current_tracer
    from repro.storage import probe_candidates

    atom: RelAtom = literal.atom
    view = db.relation(atom.name)
    rows = view if restrict_rows is None else restrict_rows
    prefilter = getattr(literal, "prefilter", ())
    if prefilter and restrict_rows is None:
        storage = view.storage
        rows_for = getattr(storage, "rows_for", None)
        candidates: frozenset[int] | None = None
        for column, factors in prefilter:
            found = probe_candidates(storage, column, factors)
            if found is None:
                continue
            candidates = (
                found if candidates is None else candidates & found
            )
            if not candidates:
                break
        if candidates is not None and rows_for is not None:
            current_tracer().add(
                "index.pruned", storage.size() - len(candidates)
            )
            rows = tuple(rows_for(candidates))
    out: list[Binding] = []
    for binding in bindings:
        for row in rows:
            extended = dict(binding)
            for var, value in zip(atom.args, row):
                if extended.get(var, value) != value:
                    break
                extended[var] = value
            else:
                out.append(extended)
    return out


def _filter_bound(
    bindings: list[Binding],
    literal: _Literal,
    db: Database,
    alphabet: Alphabet | None = None,
    session=None,
    restrict_rows: frozenset[tuple[str, ...]] | None = None,
) -> list[Binding]:
    """Keep the bindings on which the fully-bound literal holds.

    Relational atoms test membership against the database.  String
    atoms run the compiled machine's integer acceptance kernel in one
    batch when a ``session`` (and the query ``alphabet``) is available
    — Theorem 3.1 makes machine acceptance coincide with formula
    satisfaction — and fall back to the reference checker otherwise.

    ``restrict_rows`` narrows a *positive* relational membership test
    to the given rows (the semi-naive maintenance hook); it is never
    applied to negated or string literals.
    """
    from repro.core.semantics import check_string_formula

    out: list[Binding] = []
    if isinstance(literal.atom, RelAtom):
        for binding in bindings:
            row = tuple(binding[v] for v in literal.atom.args)
            if restrict_rows is not None and not literal.negated:
                held = row in restrict_rows
            else:
                held = db.contains(literal.atom.name, row)
            if held != literal.negated:
                out.append(binding)
        return out
    if session is not None and alphabet is not None and bindings:
        compiled = session.compile(literal.atom.formula, alphabet)
        if compiled.variables:
            kernel = session.kernel(compiled.fsa)
            rows = [
                tuple(binding[var] for var in compiled.variables)
                for binding in bindings
            ]
            verdicts = kernel.accepts_batch(rows)
            return [
                binding
                for binding, held in zip(bindings, verdicts)
                if held != literal.negated
            ]
    for binding in bindings:
        held = check_string_formula(literal.atom.formula, binding)
        if held != literal.negated:
            out.append(binding)
    return out


def _generate(
    bindings: list[Binding],
    literal: _Literal,
    alphabet: Alphabet,
    cap: int,
    session=None,
    executor=None,
) -> list[Binding]:
    """Extend bindings with the literal's unbound variables via the
    compiled machine's output generation.

    With a ``session`` (a :class:`repro.engine.QueryEngine`), the
    compiled machine, its specializations on already-bound values, and
    the generated answer sets are all served from the session's caches
    — the generator-machine reuse that makes repeated traffic fast.
    With an ``executor`` (a :class:`repro.parallel.ParallelExecutor`)
    the per-binding generator runs — independent by construction — are
    sharded across its worker pool, cache hits resolved in-process
    first and worker results folded back into the session cache.
    """
    from repro.fsa.compile import compile_string_formula
    from repro.fsa.generate import accepted_tuples

    if session is not None:
        compiled = session.compile(literal.atom.formula, alphabet)
    else:
        compiled = compile_string_formula(literal.atom.formula, alphabet)
    fixed_list: list[dict[int, str]] = []
    free_orders: list[list[Var]] = []
    for binding in bindings:
        fixed_list.append(
            {
                compiled.tape_of(var): binding[var]
                for var in compiled.variables
                if var in binding
            }
        )
        free_orders.append(
            [var for var in compiled.variables if var not in binding]
        )
    if executor is not None:
        from repro.parallel.generation import generated_for_fixed

        values_sets = generated_for_fixed(
            compiled.fsa, cap, fixed_list, session=session, executor=executor
        )
    elif session is not None:
        values_sets = [
            session.generated(compiled.fsa, cap, fixed)
            for fixed in fixed_list
        ]
    else:
        values_sets = [
            accepted_tuples(compiled.fsa, max_length=cap, fixed=fixed)
            for fixed in fixed_list
        ]
    out: list[Binding] = []
    for binding, free_order, values_set in zip(
        bindings, free_orders, values_sets
    ):
        for values in values_set:
            extended = dict(binding)
            extended.update(zip(free_order, values))
            out.append(extended)
    return out


def evaluate_conjunctive(
    formula: Formula,
    head: Sequence[Var],
    db: Database,
    alphabet: Alphabet,
    cap: int,
    session=None,
    executor=None,
) -> frozenset[tuple[str, ...]] | None:
    """Evaluate a conjunctive query, or ``None`` if unsupported.

    ``cap`` bounds generated string lengths (supply the certified limit
    function's value ``W(db)``; for safe queries generation halts long
    before the cap is reached).  ``session`` — when given — is a
    :class:`repro.engine.QueryEngine` whose plan, compile, specialize
    and generate caches back every stage.  ``executor`` — when given —
    is a :class:`repro.parallel.ParallelExecutor` that shards the
    generate stages across worker processes; joins and filters stay
    in-process (they are cheap dictionary passes over materialized
    bindings).
    """
    from repro.observability import current_tracer

    tracer = current_tracer()
    if session is not None:
        decomposed = session.plan(formula)
    else:
        decomposed = decompose_conjunctive(formula)
    if decomposed is None:
        return None
    _, literals = decomposed
    pending = list(literals)
    bindings: list[Binding] = [{}]
    progress = True
    while pending and progress:
        progress = False
        bound_vars = set().union(*(set(b) for b in bindings)) if bindings else set()

        def pick():
            # 1. fully bound literals (cheap filters, incl. negations)
            for item in pending:
                if item.variables() <= bound_vars:
                    return item, "filter"
            # 2. positive relational atoms (ground new variables)
            for item in pending:
                if isinstance(item.atom, RelAtom) and not item.negated:
                    return item, "join"
            # 3. positive string formulae: generate, fewest unbound first
            candidates = [
                item
                for item in pending
                if isinstance(item.atom, StringAtom) and not item.negated
            ]
            if candidates:
                best = min(
                    candidates,
                    key=lambda item: len(item.variables() - bound_vars),
                )
                return best, "generate"
            return None, None

        literal, action = pick()
        if literal is None:
            break
        pending.remove(literal)
        progress = True
        with tracer.span(
            f"execute.{action}", stage="execute", bindings=len(bindings)
        ):
            if action == "filter":
                bindings = _filter_bound(
                    bindings, literal, db, alphabet, session
                )
            elif action == "join":
                bindings = _join_relational(bindings, literal, db)
            else:
                bindings = _generate(
                    bindings, literal, alphabet, cap, session, executor
                )
        if not bindings:
            return frozenset()
        # Joins and generators can produce duplicate bindings; dedupe
        # to keep the intermediate result a relation.
        unique = {tuple(sorted(b.items())): b for b in bindings}
        bindings = list(unique.values())
    if pending:
        return None  # e.g. a negation with forever-unbound variables
    answers = set()
    for binding in bindings:
        if any(var not in binding for var in head):
            return None
        answers.add(tuple(binding[var] for var in head))
    return frozenset(answers)
