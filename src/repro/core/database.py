"""String databases.

A database (paper, Section 2) maps each relation symbol ``R_i`` of
arity ``a(R_i)`` to a *finite* subset of ``(Σ*)^{a(R_i)}``: every
column of every tuple holds a finite string over the fixed alphabet.

How each finite set is physically held is delegated to the
:mod:`repro.storage` protocol: the constructor validates raw tuple
iterables and hands them to a *storage factory* (in-memory frozensets
by default, positional n-gram indexes via ``storage="ngram"`` or
:func:`repro.storage.storage_factory`), while already-constructed
storages are adopted as-is — which is what makes functional updates
O(changed relation).  :meth:`relation` returns a
:class:`~repro.storage.base.Relation` view that iterates, sizes,
membership-tests and compares like the frozenset it used to be.

Databases stay immutable under *updates* too: :meth:`Database.apply`
takes a :class:`~repro.delta.Delta` and returns a **new** version
sharing every untouched storage, with per-relation monotone version
counters (:meth:`relation_version`) and a shared :attr:`lineage` id
that let the engine's caches and materialized answers tell database
states apart cheaply.  Equality and hashing remain content-based —
two equal-content databases from different lineages still compare
equal.
"""

from __future__ import annotations

import itertools
import json
import os
from collections.abc import Iterable, Mapping
from typing import TYPE_CHECKING

from repro.core.alphabet import Alphabet
from repro.errors import ArityError, AlphabetError
from repro.storage import (
    EMPTY_STORAGE,
    InMemoryStorage,
    Relation,
    RelationStorage,
    StorageFactory,
    is_storage,
    resolve_storage_factory,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delta import Delta

#: Sentinel distinguishing "no default given" in :meth:`Database.arity`.
_MISSING = object()

#: Process-wide lineage ids: databases related by :meth:`Database.apply`
#: share one lineage, every other construction starts a fresh one.
#: ``next`` on an ``itertools.count`` is a single C call, so handing
#: out ids is atomic under the GIL.
_LINEAGES = itertools.count(1)

#: Process-wide monotone version ticks.  Every relation touched by an
#: ``apply`` gets the next tick as its new version, so versions are
#: strictly increasing along (and unique across) every lineage.
_VERSION_TICKS = itertools.count(1)


class Database:
    """An immutable string database.

    >>> from repro.core.alphabet import AB
    >>> db = Database(AB, {"R1": [("ab", "ba")], "R2": [("a",), ("bb",)]})
    >>> db.arity("R1"), len(db.relation("R2"))
    (2, 2)
    """

    __slots__ = ("_alphabet", "_relations", "_hash", "_versions", "_lineage")

    def __init__(
        self,
        alphabet: Alphabet,
        relations: "Mapping[str, Iterable[tuple[str, ...]] | RelationStorage]",
        storage: "str | StorageFactory | None" = None,
        *,
        versions: "Mapping[str, int] | None" = None,
        lineage: int | None = None,
    ) -> None:
        factory = resolve_storage_factory(storage)
        self._alphabet = alphabet
        self._relations: dict[str, RelationStorage] = {}
        self._hash: int | None = None
        self._versions: dict[str, int] = dict(versions) if versions else {}
        self._lineage = lineage if lineage is not None else next(_LINEAGES)
        for name, value in relations.items():
            if is_storage(value):
                # Adopted storages are pre-validated — the O(changed
                # relation) path with_relation/declare rely on.
                self._relations[name] = value
            else:
                frozen = frozenset(tuple(t) for t in value)
                self._check_relation(name, frozen)
                self._relations[name] = factory(name, frozen, alphabet)

    def _check_relation(
        self, name: str, tuples: frozenset[tuple[str, ...]]
    ) -> int:
        arities = {len(t) for t in tuples}
        if len(arities) > 1:
            raise ArityError(
                f"relation {name!r} mixes tuple arities {sorted(arities)}"
            )
        for row in tuples:
            for value in row:
                if not isinstance(value, str):
                    raise AlphabetError(
                        f"relation {name!r} holds non-string value {value!r}"
                    )
                self._alphabet.validate_string(value)
        return arities.pop() if arities else 0

    # -- observation ----------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        """The fixed alphabet every stored string is drawn from."""
        return self._alphabet

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Relation symbols with an assigned value, sorted."""
        return tuple(sorted(self._relations))

    def relation(self, name: str) -> Relation:
        """The finite relation assigned to ``name``, as a view.

        Unknown symbols denote the empty relation, mirroring the paper
        where ``db`` is total on the infinite supply of symbols.  The
        returned :class:`~repro.storage.base.Relation` iterates, sizes
        and compares like a frozenset; use its ``.tuples`` property
        when an actual frozenset is required.
        """
        return Relation(name, self._relations.get(name, EMPTY_STORAGE))

    def storage(self, name: str) -> RelationStorage:
        """The raw storage backend behind ``name`` (empty when unknown)."""
        return self._relations.get(name, EMPTY_STORAGE)

    def arity(self, name: str, default: object = _MISSING) -> int:
        """Arity of ``name``; raises for symbols never mentioned.

        Args:
            name: The relation symbol.
            default: When given, returned instead of raising for
                unknown symbols — so planners can cost queries over
                undeclared relations without try/except.

        Returns:
            The relation's column count (or ``default``).

        Raises:
            ArityError: For unknown symbols when no default is given.
        """
        found = self._relations.get(name)
        if found is not None:
            return found.arity
        if default is not _MISSING:
            return default
        raise ArityError(
            f"relation {name!r} has no tuples and no known arity"
        )

    def declare(self, name: str, arity: int) -> "Database":
        """Functionally declare ``name`` with an explicit arity.

        Returns a database where ``name`` exists (empty unless already
        populated) with the given arity, so :meth:`arity` stops
        raising.  Existing storages are reused — the update is O(1).

        Args:
            name: The relation symbol to declare.
            arity: Its column count.

        Returns:
            The updated database (``self`` when already consistent).

        Raises:
            ArityError: If ``name`` already has a different arity.
        """
        existing = self._relations.get(name)
        if existing is not None:
            if existing.arity != arity and existing.size() > 0:
                raise ArityError(
                    f"relation {name!r} holds tuples of arity "
                    f"{existing.arity}, cannot redeclare as {arity}"
                )
            if existing.arity == arity:
                return self
        relations = dict(self._relations)
        relations[name] = InMemoryStorage(frozenset(), arity=arity)
        return Database(self._alphabet, relations)

    def contains(self, name: str, row: tuple[str, ...]) -> bool:
        """Membership test ``row ∈ db(name)``."""
        return self._relations.get(name, EMPTY_STORAGE).contains(row)

    # -- versioned mutation (repro.delta) -------------------------------

    @property
    def lineage(self) -> int:
        """The update-lineage id this version belongs to.

        Databases derived through :meth:`apply` share their ancestor's
        lineage; every other construction (including
        :meth:`with_relation` and :meth:`declare`) starts a fresh one.
        Together with :meth:`relation_version` this lets caches and
        materialized answers key "which database state" without
        hashing tuple sets.
        """
        return self._lineage

    def relation_version(self, name: str) -> int:
        """The monotone version counter of relation ``name``.

        Versions start at 0 and advance to a fresh process-wide tick
        for every relation an :meth:`apply` actually changes, so two
        different descendants of one database never share a version.
        """
        return self._versions.get(name, 0)

    @property
    def versions(self) -> dict[str, int]:
        """``{relation: version}`` for every relation in the database."""
        return {
            name: self._versions.get(name, 0)
            for name in self.relation_names
        }

    def insert(self, name: str, row: Iterable[str]) -> "Database":
        """Functionally insert one row; see :meth:`apply`.

        >>> from repro.core.alphabet import AB
        >>> db = Database(AB, {"R": [("a",)]}).insert("R", ("b",))
        >>> sorted(db.relation("R"))
        [('a',), ('b',)]
        """
        from repro.delta import Delta

        return self.apply(Delta(inserts=((name, tuple(row)),)))

    def delete(self, name: str, row: Iterable[str]) -> "Database":
        """Functionally delete one row; see :meth:`apply`."""
        from repro.delta import Delta

        return self.apply(Delta(deletes=((name, tuple(row)),)))

    def apply(self, delta: "Delta") -> "Database":
        """Apply a :class:`~repro.delta.Delta`, returning a new version.

        Deletes apply before inserts.  Inserted rows are validated
        against the alphabet and the target relation's arity; deleting
        an absent row (or from an unknown relation) is a no-op.  Each
        storage backend derives its successor through its
        ``apply_delta`` hook when it has one (in-memory and n-gram
        backends do), falling back to a rebuilt
        :class:`~repro.storage.InMemoryStorage` otherwise.

        The result shares this database's :attr:`lineage`; every
        relation that actually changed gets a fresh monotone
        :meth:`relation_version`.  A net no-op delta returns ``self``
        unchanged — and unchanged relations keep their exact storage
        objects, so the update costs O(changed relations), not
        O(database).

        Args:
            delta: The canonical insert/delete sets to apply.

        Returns:
            The new database version (``self`` when nothing changed).

        Raises:
            ArityError: If inserted rows mix arities or contradict the
                relation's known arity.
            AlphabetError: If an inserted string leaves the alphabet.
        """
        if delta.is_empty:
            return self
        relations = dict(self._relations)
        versions = dict(self._versions)
        changed = False
        for name in delta.relations():
            inserts = delta.inserts_for(name)
            deletes = delta.deletes_for(name)
            self._check_relation(name, frozenset(inserts))
            current = relations.get(name)
            if current is None:
                if not inserts:
                    continue
                updated: RelationStorage = InMemoryStorage(inserts)
            else:
                if inserts:
                    want = len(next(iter(inserts)))
                    known = current.arity
                    if known != want and (current.size() > 0 or known != 0):
                        raise ArityError(
                            f"relation {name!r} has arity {known}, cannot "
                            f"insert rows of arity {want}"
                        )
                apply_hook = getattr(current, "apply_delta", None)
                if apply_hook is not None:
                    updated = apply_hook(inserts, deletes)
                else:
                    frozen = (current.tuples - deletes) | inserts
                    if frozen == current.tuples:
                        continue
                    updated = InMemoryStorage(
                        frozen, arity=current.arity or None
                    )
                if updated is current:
                    continue
            relations[name] = updated
            versions[name] = next(_VERSION_TICKS)
            changed = True
        if not changed:
            return self
        return Database(
            self._alphabet,
            relations,
            versions=versions,
            lineage=self._lineage,
        )

    def max_string_length(self, *names: str) -> int:
        """``max(R, db)`` of the paper's Eq. (2), over the given relations.

        With no arguments, ranges over every relation in the database.
        Returns 0 for empty relations — the longest string in no tuples
        is the empty one.  Answered from storage statistics, so indexed
        backends never decode their tuples for it.
        """
        selected = names if names else self.relation_names
        longest = 0
        for name in selected:
            stats = self._relations.get(name, EMPTY_STORAGE).stats()
            for column in stats.columns:
                longest = max(longest, column.max_length)
        return longest

    def active_strings(self, *names: str) -> frozenset[str]:
        """Every string occurring in the selected relations."""
        selected = names if names else self.relation_names
        found: set[str] = set()
        for name in selected:
            for row in self._relations.get(name, EMPTY_STORAGE).scan():
                found.update(row)
        return frozenset(found)

    # -- JSON interchange -----------------------------------------------

    @classmethod
    def from_json(
        cls,
        source: "str | os.PathLike[str] | Mapping",
        alphabet: Alphabet | None = None,
        storage_factory: "str | StorageFactory | None" = None,
    ) -> "Database":
        """Build a database from a JSON file path or a parsed mapping.

        Two layouts are accepted:

        * the **bare** form ``{"R1": [["ab", "ba"], …], …}`` (the CLI's
          historical ``--db`` format) — requires ``alphabet``;
        * the **self-describing** form produced by :meth:`to_json`,
          ``{"alphabet": "ab", "relations": {…}}`` — ``alphabet`` is
          then optional, and must match the embedded one when given.

        Every stored string is validated against the alphabet (the
        constructor's usual boundary check), so a successful round trip
        through ``to_json``/``from_json`` reproduces the database
        exactly.

        Args:
            source: The JSON path or parsed mapping.
            alphabet: The alphabet (required for the bare layout).
            storage_factory: Forwarded to the constructor's
                ``storage=`` — a kind name (``"memory"``, ``"ngram"``)
                or a factory callable deciding how each relation is
                held.

        Returns:
            The populated database.
        """
        if isinstance(source, (str, os.PathLike)):
            with open(source) as handle:
                raw = json.load(handle)
        elif isinstance(source, Mapping):
            raw = source
        else:
            raise AlphabetError(
                f"from_json expects a path or mapping, got {type(source).__name__}"
            )
        if not isinstance(raw, Mapping):
            raise ArityError("database JSON must be an object of relations")
        if (
            set(raw) <= {"alphabet", "relations"}
            and isinstance(raw.get("relations"), Mapping)
        ):
            embedded = raw.get("alphabet")
            if embedded is not None:
                candidate = Alphabet(embedded)
                if alphabet is not None and alphabet != candidate:
                    raise AlphabetError(
                        f"database declares alphabet {candidate}, "
                        f"caller supplied {alphabet}"
                    )
                alphabet = candidate
            relations = raw["relations"]
        else:
            relations = raw
        if alphabet is None:
            raise AlphabetError(
                "no alphabet: pass one explicitly or use the "
                '{"alphabet": …, "relations": …} layout'
            )
        frozen: dict[str, list[tuple[str, ...]]] = {}
        for name, rows in relations.items():
            if not isinstance(rows, (list, tuple)):
                raise ArityError(
                    f"relation {name!r} must be a list of rows, got "
                    f"{type(rows).__name__}"
                )
            frozen[name] = [tuple(row) for row in rows]
        return cls(alphabet, frozen, storage=storage_factory)

    def to_json(self) -> dict:
        """The self-describing JSON mapping of this database.

        Rows are sorted, so the output is deterministic and
        ``Database.from_json(db.to_json()) == db``.
        """
        return {
            "alphabet": "".join(self._alphabet.symbols),
            "relations": {
                name: [list(row) for row in sorted(store.tuples)]
                for name, store in sorted(self._relations.items())
            },
        }

    def dump_json(self, path: "str | os.PathLike[str]") -> None:
        """Write :meth:`to_json` to ``path`` (UTF-8, indented)."""
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, ensure_ascii=False)
            handle.write("\n")

    def with_relation(
        self,
        name: str,
        tuples: "Iterable[tuple[str, ...]] | RelationStorage",
        storage: "str | StorageFactory | None" = None,
    ) -> "Database":
        """Functional update returning a new database.

        Only the *changed* relation is validated and (re)stored; every
        other relation's already-validated storage is adopted untouched,
        so the update costs O(changed relation), not O(database).

        Args:
            name: The relation symbol to replace.
            tuples: Its new rows (or a pre-built storage to adopt).
            storage: How to hold the new rows; defaults to in-memory.

        Returns:
            The updated database.
        """
        relations: dict = dict(self._relations)
        relations[name] = tuples
        return Database(self._alphabet, relations, storage=storage)

    def with_storage(
        self, storage: "str | StorageFactory | None"
    ) -> "Database":
        """Re-house every relation under a different storage backend.

        The tuples are already validated, so only the backends are
        rebuilt — e.g. ``db.with_storage("ngram")`` indexes an existing
        in-memory database.

        Args:
            storage: The kind name or factory for the new backends.

        Returns:
            An equal database over the new storages.
        """
        factory = resolve_storage_factory(storage)
        relations = {
            name: factory(name, store.tuples, self._alphabet)
            for name, store in self._relations.items()
        }
        return Database(self._alphabet, relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        if self._alphabet != other._alphabet:
            return False
        if set(self._relations) != set(other._relations):
            return False
        return all(
            store.tuples == other._relations[name].tuples
            and store.arity == other._relations[name].arity
            for name, store in self._relations.items()
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self._alphabet,
                    tuple(
                        (name, store.arity, store.tuples)
                        for name, store in sorted(self._relations.items())
                    ),
                )
            )
        return self._hash

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{store.arity}]:{store.size()}"
            for name, store in sorted(self._relations.items())
        )
        return f"Database({parts})"


def empty_database(alphabet: Alphabet) -> Database:
    """A database assigning every symbol the empty relation."""
    return Database(alphabet, {})
