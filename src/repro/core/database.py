"""String databases.

A database (paper, Section 2) maps each relation symbol ``R_i`` of
arity ``a(R_i)`` to a *finite* subset of ``(Σ*)^{a(R_i)}``: every
column of every tuple holds a finite string over the fixed alphabet.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Mapping

from repro.core.alphabet import Alphabet
from repro.errors import ArityError, AlphabetError


class Database:
    """An immutable string database.

    >>> from repro.core.alphabet import AB
    >>> db = Database(AB, {"R1": [("ab", "ba")], "R2": [("a",), ("bb",)]})
    >>> db.arity("R1"), len(db.relation("R2"))
    (2, 2)
    """

    __slots__ = ("_alphabet", "_relations", "_arities")

    def __init__(
        self,
        alphabet: Alphabet,
        relations: Mapping[str, Iterable[tuple[str, ...]]],
    ) -> None:
        self._alphabet = alphabet
        self._relations: dict[str, frozenset[tuple[str, ...]]] = {}
        self._arities: dict[str, int] = {}
        for name, tuples in relations.items():
            frozen = frozenset(tuple(t) for t in tuples)
            arity = self._check_relation(name, frozen)
            self._relations[name] = frozen
            self._arities[name] = arity

    def _check_relation(
        self, name: str, tuples: frozenset[tuple[str, ...]]
    ) -> int:
        arities = {len(t) for t in tuples}
        if len(arities) > 1:
            raise ArityError(
                f"relation {name!r} mixes tuple arities {sorted(arities)}"
            )
        for row in tuples:
            for value in row:
                if not isinstance(value, str):
                    raise AlphabetError(
                        f"relation {name!r} holds non-string value {value!r}"
                    )
                self._alphabet.validate_string(value)
        return arities.pop() if arities else 0

    # -- observation ----------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        """The fixed alphabet every stored string is drawn from."""
        return self._alphabet

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Relation symbols with an assigned value, sorted."""
        return tuple(sorted(self._relations))

    def relation(self, name: str) -> frozenset[tuple[str, ...]]:
        """The finite relation assigned to ``name``.

        Unknown symbols denote the empty relation, mirroring the paper
        where ``db`` is total on the infinite supply of symbols.
        """
        return self._relations.get(name, frozenset())

    def arity(self, name: str) -> int:
        """Arity of ``name``; raises for symbols never mentioned."""
        try:
            return self._arities[name]
        except KeyError:
            raise ArityError(f"relation {name!r} has no tuples and no known arity") from None

    def contains(self, name: str, row: tuple[str, ...]) -> bool:
        """Membership test ``row ∈ db(name)``."""
        return row in self.relation(name)

    def max_string_length(self, *names: str) -> int:
        """``max(R, db)`` of the paper's Eq. (2), over the given relations.

        With no arguments, ranges over every relation in the database.
        Returns 0 for empty relations — the longest string in no tuples
        is the empty one.
        """
        selected = names if names else self.relation_names
        longest = 0
        for name in selected:
            for row in self.relation(name):
                for value in row:
                    longest = max(longest, len(value))
        return longest

    def active_strings(self, *names: str) -> frozenset[str]:
        """Every string occurring in the selected relations."""
        selected = names if names else self.relation_names
        found: set[str] = set()
        for name in selected:
            for row in self.relation(name):
                found.update(row)
        return frozenset(found)

    # -- JSON interchange -----------------------------------------------

    @classmethod
    def from_json(
        cls,
        source: "str | os.PathLike[str] | Mapping",
        alphabet: Alphabet | None = None,
    ) -> "Database":
        """Build a database from a JSON file path or a parsed mapping.

        Two layouts are accepted:

        * the **bare** form ``{"R1": [["ab", "ba"], …], …}`` (the CLI's
          historical ``--db`` format) — requires ``alphabet``;
        * the **self-describing** form produced by :meth:`to_json`,
          ``{"alphabet": "ab", "relations": {…}}`` — ``alphabet`` is
          then optional, and must match the embedded one when given.

        Every stored string is validated against the alphabet (the
        constructor's usual boundary check), so a successful round trip
        through ``to_json``/``from_json`` reproduces the database
        exactly.
        """
        if isinstance(source, (str, os.PathLike)):
            with open(source) as handle:
                raw = json.load(handle)
        elif isinstance(source, Mapping):
            raw = source
        else:
            raise AlphabetError(
                f"from_json expects a path or mapping, got {type(source).__name__}"
            )
        if not isinstance(raw, Mapping):
            raise ArityError("database JSON must be an object of relations")
        if (
            set(raw) <= {"alphabet", "relations"}
            and isinstance(raw.get("relations"), Mapping)
        ):
            embedded = raw.get("alphabet")
            if embedded is not None:
                candidate = Alphabet(embedded)
                if alphabet is not None and alphabet != candidate:
                    raise AlphabetError(
                        f"database declares alphabet {candidate}, "
                        f"caller supplied {alphabet}"
                    )
                alphabet = candidate
            relations = raw["relations"]
        else:
            relations = raw
        if alphabet is None:
            raise AlphabetError(
                "no alphabet: pass one explicitly or use the "
                '{"alphabet": …, "relations": …} layout'
            )
        frozen: dict[str, list[tuple[str, ...]]] = {}
        for name, rows in relations.items():
            if not isinstance(rows, (list, tuple)):
                raise ArityError(
                    f"relation {name!r} must be a list of rows, got "
                    f"{type(rows).__name__}"
                )
            frozen[name] = [tuple(row) for row in rows]
        return cls(alphabet, frozen)

    def to_json(self) -> dict:
        """The self-describing JSON mapping of this database.

        Rows are sorted, so the output is deterministic and
        ``Database.from_json(db.to_json()) == db``.
        """
        return {
            "alphabet": "".join(self._alphabet.symbols),
            "relations": {
                name: [list(row) for row in sorted(rows)]
                for name, rows in sorted(self._relations.items())
            },
        }

    def dump_json(self, path: "str | os.PathLike[str]") -> None:
        """Write :meth:`to_json` to ``path`` (UTF-8, indented)."""
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, ensure_ascii=False)
            handle.write("\n")

    def with_relation(
        self, name: str, tuples: Iterable[tuple[str, ...]]
    ) -> "Database":
        """Functional update returning a new database."""
        relations: dict[str, Iterable[tuple[str, ...]]] = dict(self._relations)
        relations[name] = tuples
        return Database(self._alphabet, relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return (
            self._alphabet == other._alphabet
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        return hash(
            (self._alphabet, tuple(sorted(self._relations.items())))
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{self._arities[name]}]:{len(rows)}"
            for name, rows in sorted(self._relations.items())
        )
        return f"Database({parts})"


def empty_database(alphabet: Alphabet) -> Database:
    """A database assigning every symbol the empty relation."""
    return Database(alphabet, {})
