"""A concrete text syntax for alignment calculus.

The paper writes formulae in LaTeX; a library needs a plain-text form
that round-trips.  The grammar (ASCII throughout):

Window formulae (inside an atom's parentheses)::

    x = 'a'            character test
    x = eps            the undefined-window test  (paper: x = ε)
    x = y              window equality
    x = y = eps        chains, as in the paper's shorthand
    true               the tautology ⊤
    !w, w & w, w | w   boolean structure, ( ) for grouping

String formulae::

    [x,y]l(x = y)      atomic: transpose then test
    [x]r               test omitted: ⊤
    []l(x = eps)       the empty transpose (identity)
    a . b              concatenation
    a + b              selection (union)
    a*                 Kleene closure
    _                  the empty formula word λ

Calculus formulae::

    R(x, y)            relational atom
    [x,y]l(...) . ...  a string formula is an atom (starts with '[')
    { ... }            any string formula, braced (for λ etc.)
    f & g, f | g, !f   connectives (& binds tighter than |)
    exists x, y: f     quantifiers
    forall x: f

``parse_formula`` / ``parse_string_formula`` / ``parse_window``
produce the ASTs of :mod:`repro.core.syntax`; ``formula_to_text`` and
friends render them back; parsing the rendering yields an equal AST
(tested property).
"""

from __future__ import annotations

from repro.core.syntax import (
    And,
    Exists,
    Formula,
    IsChar,
    IsEmpty,
    Lambda,
    Not,
    RelAtom,
    SameChar,
    SAtom,
    SConcat,
    SStar,
    StringAtom,
    StringFormula,
    SUnion,
    Transpose,
    WAnd,
    WindowFormula,
    WNot,
    WTrue,
    atom,
    concat,
    exists,
    f_or,
    forall,
    union,
    w_and,
    w_or,
)
from repro.errors import ParseError

_KEYWORDS = {"exists", "forall", "true", "eps"}


class _Tokens:
    """A hand-rolled tokenizer with one-token lookahead."""

    _PUNCT = "[](){}=&|!*+._:,~"

    def __init__(self, text: str) -> None:
        self.text = text
        self.items: list[tuple[str, str]] = []
        self.position = 0
        self._scan()

    def _scan(self) -> None:
        i, text = 0, self.text
        while i < len(text):
            char = text[i]
            if char.isspace():
                i += 1
            elif char == "'":
                end = text.find("'", i + 1)
                if end != i + 2:
                    raise ParseError(
                        f"expected a quoted single character at {i} in {text!r}"
                    )
                self.items.append(("char", text[i + 1]))
                i = end + 1
            elif char in self._PUNCT:
                self.items.append(("punct", char))
                i += 1
            elif char.isalnum():
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                word = text[i:j]
                kind = "keyword" if word in _KEYWORDS else "name"
                self.items.append((kind, word))
                i = j
            else:
                raise ParseError(f"unexpected character {char!r} in {text!r}")

    def peek(self, offset: int = 0) -> tuple[str, str] | None:
        index = self.position + offset
        return self.items[index] if index < len(self.items) else None

    def take(self, kind: str | None = None, value: str | None = None):
        item = self.peek()
        if item is None:
            raise ParseError(f"unexpected end of input in {self.text!r}")
        if kind is not None and item[0] != kind:
            raise ParseError(f"expected {kind}, got {item} in {self.text!r}")
        if value is not None and item[1] != value:
            raise ParseError(f"expected {value!r}, got {item} in {self.text!r}")
        self.position += 1
        return item

    def accept(self, kind: str, value: str | None = None) -> bool:
        item = self.peek()
        if item is None or item[0] != kind:
            return False
        if value is not None and item[1] != value:
            return False
        self.position += 1
        return True

    def done(self) -> bool:
        return self.position >= len(self.items)


# ---------------------------------------------------------------------------
# Window formulae
# ---------------------------------------------------------------------------


def _parse_window(tokens: _Tokens) -> WindowFormula:
    return _window_or(tokens)


def _window_or(tokens: _Tokens) -> WindowFormula:
    parts = [_window_and(tokens)]
    while tokens.accept("punct", "|"):
        parts.append(_window_and(tokens))
    return parts[0] if len(parts) == 1 else w_or(*parts)


def _window_and(tokens: _Tokens) -> WindowFormula:
    parts = [_window_unary(tokens)]
    while tokens.accept("punct", "&"):
        parts.append(_window_unary(tokens))
    return parts[0] if len(parts) == 1 else w_and(*parts)


def _window_unary(tokens: _Tokens) -> WindowFormula:
    if tokens.accept("punct", "!"):
        return WNot(_window_unary(tokens))
    if tokens.accept("punct", "("):
        inner = _parse_window(tokens)
        tokens.take("punct", ")")
        return inner
    if tokens.accept("keyword", "true"):
        return WTrue()
    return _window_chain(tokens)


def _window_chain(tokens: _Tokens) -> WindowFormula:
    """``x = y = … = 'a'|eps`` chains, as the paper abbreviates them."""
    variables = [tokens.take("name")[1]]
    terminal: tuple[str, str] | None = None
    tokens.take("punct", "=")
    while True:
        item = tokens.peek()
        if item is None:
            raise ParseError(f"dangling '=' in {tokens.text!r}")
        if item[0] == "char" or item == ("keyword", "eps"):
            terminal = tokens.take()
            break
        variables.append(tokens.take("name")[1])
        if not tokens.accept("punct", "="):
            break
    pieces: list[WindowFormula] = []
    for left_var, right_var in zip(variables, variables[1:]):
        pieces.append(SameChar(left_var, right_var))
    if terminal is not None:
        # Pinning the last variable suffices: the pairwise chain
        # propagates the constraint (undefined windows compare equal,
        # so this also covers the paper's "x = y = eps").
        if terminal[0] == "char":
            pieces.append(IsChar(variables[-1], terminal[1]))
        else:
            pieces.append(IsEmpty(variables[-1]))
    if not pieces:
        raise ParseError(f"empty window test in {tokens.text!r}")
    return pieces[0] if len(pieces) == 1 else w_and(*pieces)


# ---------------------------------------------------------------------------
# String formulae
# ---------------------------------------------------------------------------


def _parse_string(tokens: _Tokens) -> StringFormula:
    parts = [_string_term(tokens)]
    while tokens.accept("punct", "+"):
        parts.append(_string_term(tokens))
    return parts[0] if len(parts) == 1 else union(*parts)


def _string_term(tokens: _Tokens) -> StringFormula:
    parts = [_string_factor(tokens)]
    while tokens.accept("punct", "."):
        parts.append(_string_factor(tokens))
    return parts[0] if len(parts) == 1 else concat(*parts)


def _string_factor(tokens: _Tokens) -> StringFormula:
    base = _string_base(tokens)
    while tokens.accept("punct", "*"):
        base = SStar(base)
    return base


def _string_base(tokens: _Tokens) -> StringFormula:
    if tokens.accept("punct", "_"):
        return Lambda()
    if tokens.accept("punct", "("):
        inner = _parse_string(tokens)
        tokens.take("punct", ")")
        return inner
    return _string_atom(tokens)


def _string_atom(tokens: _Tokens) -> SAtom:
    tokens.take("punct", "[")
    variables: list[str] = []
    if not tokens.accept("punct", "]"):
        variables.append(tokens.take("name")[1])
        while tokens.accept("punct", ","):
            variables.append(tokens.take("name")[1])
        tokens.take("punct", "]")
    direction = tokens.take("name")[1]
    if direction not in ("l", "r"):
        raise ParseError(
            f"transpose direction must be l or r, got {direction!r}"
        )
    test: WindowFormula = WTrue()
    if tokens.accept("punct", "("):
        test = _parse_window(tokens)
        tokens.take("punct", ")")
    return atom(Transpose(direction, tuple(variables)), test)


# ---------------------------------------------------------------------------
# Calculus formulae
# ---------------------------------------------------------------------------


def _parse_calculus(tokens: _Tokens) -> Formula:
    item = tokens.peek()
    if item in (("keyword", "exists"), ("keyword", "forall")):
        quantifier = tokens.take()[1]
        names = [tokens.take("name")[1]]
        while tokens.accept("punct", ","):
            names.append(tokens.take("name")[1])
        tokens.take("punct", ":")
        body = _parse_calculus(tokens)
        return exists(names, body) if quantifier == "exists" else forall(
            names, body
        )
    return _calculus_or(tokens)


def _calculus_or(tokens: _Tokens) -> Formula:
    parts = [_calculus_and(tokens)]
    while tokens.accept("punct", "|"):
        parts.append(_calculus_and(tokens))
    return parts[0] if len(parts) == 1 else f_or(*parts)


def _calculus_and(tokens: _Tokens) -> Formula:
    parts = [_calculus_unary(tokens)]
    while tokens.accept("punct", "&"):
        parts.append(_calculus_unary(tokens))
    result = parts[0]
    for part in parts[1:]:
        result = And(result, part)
    return result


def _calculus_unary(tokens: _Tokens) -> Formula:
    if tokens.accept("punct", "!"):
        return Not(_calculus_unary(tokens))
    item = tokens.peek()
    if item == ("punct", "{"):
        tokens.take()
        inner = _parse_string(tokens)
        tokens.take("punct", "}")
        return StringAtom(inner)
    if item == ("punct", "["):
        return StringAtom(_parse_string(tokens))
    if item == ("punct", "("):
        # Ambiguous: both "(calculus)" and a parenthesized string
        # formula start here.  Try the string-formula reading first
        # (it only succeeds on transpose syntax) and fall back.
        saved = tokens.position
        try:
            return StringAtom(_parse_string(tokens))
        except ParseError:
            tokens.position = saved
        tokens.take()
        inner = _parse_calculus(tokens)
        tokens.take("punct", ")")
        return inner
    if item is not None and item[0] == "name":
        name = tokens.take("name")[1]
        tokens.take("punct", "(")
        args: list[str] = []
        if not tokens.accept("punct", ")"):
            args.append(tokens.take("name")[1])
            while tokens.accept("punct", ","):
                args.append(tokens.take("name")[1])
            tokens.take("punct", ")")
        return RelAtom(name, tuple(args))
    raise ParseError(f"unexpected {item} in {tokens.text!r}")


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def parse_window(text: str) -> WindowFormula:
    """Parse a window formula."""
    tokens = _Tokens(text)
    result = _parse_window(tokens)
    if not tokens.done():
        raise ParseError(f"trailing input after window formula: {text!r}")
    return result


def parse_string_formula(text: str) -> StringFormula:
    """Parse a string formula."""
    tokens = _Tokens(text)
    result = _parse_string(tokens)
    if not tokens.done():
        raise ParseError(f"trailing input after string formula: {text!r}")
    return result


def parse_formula(text: str) -> Formula:
    """Parse a full alignment calculus formula."""
    tokens = _Tokens(text)
    result = _parse_calculus(tokens)
    if not tokens.done():
        raise ParseError(f"trailing input after formula: {text!r}")
    return result


# ---------------------------------------------------------------------------
# Rendering (round-trips with the parsers)
# ---------------------------------------------------------------------------


def window_to_text(formula: WindowFormula) -> str:
    """Render a window formula in the concrete syntax."""
    if isinstance(formula, WTrue):
        return "true"
    if isinstance(formula, IsEmpty):
        return f"{formula.var} = eps"
    if isinstance(formula, IsChar):
        return f"{formula.var} = '{formula.char}'"
    if isinstance(formula, SameChar):
        return f"{formula.left} = {formula.right}"
    if isinstance(formula, WAnd):
        return (
            f"({window_to_text(formula.left)} & {window_to_text(formula.right)})"
        )
    if isinstance(formula, WNot):
        return f"!({window_to_text(formula.inner)})"
    raise TypeError(f"not a window formula: {formula!r}")


def string_to_text(formula: StringFormula) -> str:
    """Render a string formula in the concrete syntax."""
    if isinstance(formula, SAtom):
        variables = ",".join(formula.transpose.variables)
        test = (
            ""
            if isinstance(formula.test, WTrue)
            else f"({window_to_text(formula.test)})"
        )
        return f"[{variables}]{formula.transpose.direction}{test}"
    if isinstance(formula, Lambda):
        return "_"
    if isinstance(formula, SConcat):
        return " . ".join(
            f"({string_to_text(p)})" if isinstance(p, (SUnion,)) else string_to_text(p)
            for p in formula.parts
        )
    if isinstance(formula, SUnion):
        return "(" + " + ".join(string_to_text(p) for p in formula.parts) + ")"
    if isinstance(formula, SStar):
        inner = string_to_text(formula.inner)
        if isinstance(formula.inner, (SConcat, SUnion)):
            return f"({inner})*"
        return f"{inner}*"
    raise TypeError(f"not a string formula: {formula!r}")


def formula_to_text(formula: Formula) -> str:
    """Render a calculus formula in the concrete syntax."""
    if isinstance(formula, RelAtom):
        return f"{formula.name}({', '.join(formula.args)})"
    if isinstance(formula, StringAtom):
        return "{" + string_to_text(formula.formula) + "}"
    if isinstance(formula, And):
        return f"({formula_to_text(formula.left)} & {formula_to_text(formula.right)})"
    if isinstance(formula, Not):
        return f"!({formula_to_text(formula.inner)})"
    if isinstance(formula, Exists):
        names = [formula.var]
        inner = formula.inner
        while isinstance(inner, Exists):
            names.append(inner.var)
            inner = inner.inner
        return f"exists {', '.join(names)}: ({formula_to_text(inner)})"
    raise TypeError(f"not a calculus formula: {formula!r}")
