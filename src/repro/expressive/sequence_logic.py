"""Theorem 6.4: embedding Ginsburg-Wang sequence logic.

Sequence logic works over an *infinite* universe ``U`` of atoms;
its sequence predicates ``x_{n+1} ∈ A^n(x₁, …, x_n)`` declare the
output sequence to be a "regular shuffle" of the inputs, following a
pattern ``A`` — a regular expression over channel symbols
``α₁ … α_n``.  The embedding chooses an injection ``e : U → Σ*`` and a
separator ``> ∉ Σ``, encodes ``[a₁, …, a_m]`` as
``e(a₁) > … > e(a_m) >``, and replaces every ``αᵢ`` of the pattern by
the copy-one-atom subformula
``([xᵢ, x_{n+1}]_l x_{n+1} = xᵢ ≠ >)* . [xᵢ, x_{n+1}]_l x_{n+1} = xᵢ = >``.

Both the direct sequence-logic semantics and the translated alignment
calculus formula are implemented, so the theorem's equivalence claim
is executable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.core.syntax import (
    IsChar,
    Lambda,
    SameChar,
    SStar,
    StringFormula,
    Var,
    all_empty,
    atom,
    concat,
    left,
    union,
    w_and,
)
from repro.errors import ReproError
from repro.expressive.regular import (
    NFA,
    RChar,
    RConcat,
    REmpty,
    REpsilon,
    RStar,
    RUnion,
    Regex,
    regex_to_nfa,
)

#: Sequences of atoms; atoms are arbitrary hashable values.
Sequence = tuple[object, ...]


class AtomEncoding:
    """A stable injection ``e : U → Σ*`` built on demand.

    Atoms are numbered in first-seen order and encoded as their index
    in base ``|Σ|`` (fixed width grows as needed, so the encoding stays
    injective).
    """

    def __init__(self, alphabet: Alphabet, separator: str = ">") -> None:
        if separator in alphabet:
            raise ReproError("separator must not belong to the alphabet")
        self.alphabet = alphabet
        self.separator = separator
        self._codes: dict[object, str] = {}

    def encode_atom(self, atom_value: object) -> str:
        code = self._codes.get(atom_value)
        if code is None:
            index = len(self._codes)
            code = self._to_base(index)
            self._codes[atom_value] = code
        return code

    def _to_base(self, index: int) -> str:
        symbols = self.alphabet.symbols
        base = len(symbols)
        digits = [symbols[index % base]]
        index //= base
        while index:
            digits.append(symbols[index % base])
            index //= base
        # Prefix-free by construction is not needed — the separator
        # delimits atoms — but a fixed first symbol keeps ε out.
        return "".join(reversed(digits))

    def encode_sequence(self, sequence: Sequence) -> str:
        """``e([a₁, …, a_m]) = e(a₁) > … > e(a_m) >``."""
        return "".join(
            self.encode_atom(a) + self.separator for a in sequence
        )

    def full_alphabet(self) -> Alphabet:
        """Σ extended with the separator (the formulas' alphabet)."""
        return Alphabet(self.alphabet.symbols + (self.separator,))


@dataclass(frozen=True)
class SequencePredicate:
    """``x_{n+1} ∈ A^n(x₁, …, x_n)`` with ``A`` over channel numbers.

    ``pattern`` is a :class:`Regex` whose characters are the decimal
    digits ``"1" … "9"`` naming input channels.
    """

    channels: int
    pattern: Regex

    def __post_init__(self) -> None:
        if not 1 <= self.channels <= 9:
            raise ReproError("sequence predicates support 1-9 channels")
        for char in _pattern_chars(self.pattern):
            if not char.isdigit() or not 1 <= int(char) <= self.channels:
                raise ReproError(
                    f"pattern channel {char!r} outside 1..{self.channels}"
                )

    # -- direct Ginsburg-Wang semantics ---------------------------------

    def holds(self, inputs: tuple[Sequence, ...], output: Sequence) -> bool:
        """The paper's two conditions, decided by NFA search.

        There must be ``β ∈ L(A)`` whose ``αᵢ`` occurrences count
        ``len(inputs[i])`` and whose ``j``-th ``αᵢ`` occurrence sits at
        the positions where ``output`` carries ``inputs[i][j]``.
        """
        if len(inputs) != self.channels:
            raise ReproError(
                f"predicate has {self.channels} channels, got {len(inputs)}"
            )
        nfa = regex_to_nfa(self.pattern)
        start = (nfa.closure(frozenset({nfa.start})), (0,) * self.channels)
        frontier = [start]
        seen = {start}
        while frontier:
            states, counts = frontier.pop()
            position = sum(counts)
            if position == len(output):
                if nfa.final in states and all(
                    counts[i] == len(inputs[i]) for i in range(self.channels)
                ):
                    return True
                continue
            for channel in range(self.channels):
                count = counts[channel]
                if count >= len(inputs[channel]):
                    continue
                if inputs[channel][count] != output[position]:
                    continue
                label = str(channel + 1)
                moved = nfa.closure(
                    frozenset(
                        target
                        for state in states
                        for lab, target in nfa.edges[state]
                        if lab == label
                    )
                )
                if not moved:
                    continue
                nxt = (
                    moved,
                    counts[:channel] + (count + 1,) + counts[channel + 1 :],
                )
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False


def _pattern_chars(regex: Regex) -> frozenset[str]:
    if isinstance(regex, RChar):
        return frozenset({regex.char})
    if isinstance(regex, (REpsilon, REmpty)):
        return frozenset()
    if isinstance(regex, (RConcat, RUnion)):
        out: frozenset[str] = frozenset()
        for part in regex.parts:
            out |= _pattern_chars(part)
        return out
    if isinstance(regex, RStar):
        return _pattern_chars(regex.inner)
    raise TypeError(f"not a regex: {regex!r}")


# ---------------------------------------------------------------------------
# Theorem 6.4 translation
# ---------------------------------------------------------------------------


def copy_atom_formula(
    source: Var, target: Var, separator: str
) -> StringFormula:
    """Copy one encoded atom (plus separator) from ``source`` to
    ``target`` — the paper's replacement for one ``αᵢ``."""
    inside = atom(
        left(source, target),
        w_and(SameChar(target, source), ~IsChar(target, separator)),
    )
    boundary = atom(
        left(source, target),
        w_and(SameChar(target, source), IsChar(target, separator)),
    )
    return concat(SStar(inside), boundary)


def predicate_to_formula(
    predicate: SequencePredicate,
    variables: tuple[Var, ...] | None = None,
    separator: str = ">",
) -> StringFormula:
    """Theorem 6.4: ``φ_P`` over ``x₁ … x_n, x_{n+1}``.

    ``(e(s₁), …, e(s_{n+1})) ∈ ⟦φ_P⟧`` iff the predicate holds on the
    original sequences.
    """
    if variables is None:
        variables = tuple(f"x{i + 1}" for i in range(predicate.channels + 1))
    if len(variables) != predicate.channels + 1:
        raise ReproError(
            f"need {predicate.channels + 1} variables, got {len(variables)}"
        )
    output = variables[-1]

    def build(node: Regex) -> StringFormula:
        if isinstance(node, RChar):
            return copy_atom_formula(
                variables[int(node.char) - 1], output, separator
            )
        if isinstance(node, REpsilon):
            return Lambda()
        if isinstance(node, REmpty):
            from repro.fsa.decompile import unsatisfiable

            return unsatisfiable()
        if isinstance(node, RConcat):
            return concat(*(build(p) for p in node.parts))
        if isinstance(node, RUnion):
            return union(*(build(p) for p in node.parts))
        if isinstance(node, RStar):
            return SStar(build(node.inner))
        raise TypeError(f"not a regex: {node!r}")

    return concat(
        build(predicate.pattern),
        atom(left(*variables), all_empty(*variables)),
    )


def concatenation_predicate() -> SequencePredicate:
    """``x₃ ∈ α₁* α₂* (x₁, x₂)`` — sequence concatenation."""
    return SequencePredicate(
        2, RConcat((RStar(RChar("1")), RStar(RChar("2"))))
    )


def shuffle_predicate() -> SequencePredicate:
    """``x₃ ∈ (α₁ | α₂)* (x₁, x₂)`` — arbitrary interleaving."""
    return SequencePredicate(2, RStar(RUnion((RChar("1"), RChar("2")))))


def alternation_predicate() -> SequencePredicate:
    """``x₃ ∈ (α₁ α₂)* (x₁, x₂)`` — strict alternation."""
    return SequencePredicate(2, RStar(RConcat((RChar("1"), RChar("2")))))
