"""Unrestricted grammars, Turing machines and LBAs.

The substrate for the paper's reductions: Theorem 5.1 encodes
unrestricted-grammar derivations into string formulae and simulates
Turing machines backwards with grammars; Theorem 6.2 uses the same
encoding for recursive enumerability; Theorem 6.6 encodes linear
bounded automata.  Everything here is a plain, executable
implementation with its own semantics, so the logical encodings can be
cross-checked against direct simulation.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import ReproError


class GrammarError(ReproError):
    """A grammar or machine definition is malformed."""


@dataclass(frozen=True)
class Grammar:
    """An unrestricted (type-0) grammar over single-character symbols.

    ``rules`` rewrite any occurrence of ``lhs`` into ``rhs``; both may
    be arbitrary strings (``lhs`` non-empty).  ``start`` is the start
    symbol.
    """

    start: str
    rules: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if len(self.start) != 1:
            raise GrammarError("start symbol must be a single character")
        for lhs, _rhs in self.rules:
            if not lhs:
                raise GrammarError("rule left-hand sides must be non-empty")

    @property
    def symbols(self) -> frozenset[str]:
        """Every symbol occurring in the grammar."""
        found = {self.start}
        for lhs, rhs in self.rules:
            found.update(lhs)
            found.update(rhs)
        return frozenset(found)

    def rewrites(self, sentential: str) -> Iterator[str]:
        """All one-step rewritings of ``sentential``."""
        for lhs, rhs in self.rules:
            position = sentential.find(lhs)
            while position != -1:
                yield sentential[:position] + rhs + sentential[position + len(lhs):]
                position = sentential.find(lhs, position + 1)

    def derives_in(self, word: str, max_steps: int, max_length: int) -> bool:
        """Bounded derivation search: ``start ⇒* word``.

        Breadth-first over sentential forms no longer than
        ``max_length``, at most ``max_steps`` levels deep.  Sound but
        (necessarily) incomplete: unrestricted derivability is only
        semi-decidable.
        """
        frontier = {self.start}
        seen = {self.start}
        for _ in range(max_steps):
            if word in frontier:
                return True
            nxt: set[str] = set()
            for sentential in frontier:
                for rewritten in self.rewrites(sentential):
                    if len(rewritten) <= max_length and rewritten not in seen:
                        seen.add(rewritten)
                        nxt.add(rewritten)
            if not nxt:
                break
            frontier = nxt
        return word in frontier

    def derivation(
        self, word: str, max_steps: int, max_length: int
    ) -> list[str] | None:
        """A derivation chain ``start ⇒ … ⇒ word``, or ``None``."""
        parents: dict[str, str | None] = {self.start: None}
        frontier = [self.start]
        for _ in range(max_steps):
            if word in parents:
                break
            nxt: list[str] = []
            for sentential in frontier:
                for rewritten in self.rewrites(sentential):
                    if len(rewritten) <= max_length and rewritten not in parents:
                        parents[rewritten] = sentential
                        nxt.append(rewritten)
            frontier = nxt
            if not frontier:
                break
        if word not in parents:
            return None
        chain = [word]
        while parents[chain[-1]] is not None:
            chain.append(parents[chain[-1]])
        chain.reverse()
        return chain


@dataclass(frozen=True)
class TMTransition:
    """One Turing machine transition: read, write, move, change state."""

    state: str
    read: str
    next_state: str
    write: str
    move: int  # +1 right, -1 left

    def __post_init__(self) -> None:
        if self.move not in (-1, +1):
            raise GrammarError("TM moves must be -1 or +1")


@dataclass(frozen=True)
class TuringMachine:
    """A single-tape Turing machine with single-character symbols.

    The tape is right-infinite; ``blank`` fills unvisited squares.
    Acceptance is by halting (no applicable transition).
    """

    states: frozenset[str]
    input_alphabet: frozenset[str]
    tape_alphabet: frozenset[str]
    blank: str
    start: str
    transitions: tuple[TMTransition, ...]

    def __post_init__(self) -> None:
        if self.blank not in self.tape_alphabet:
            raise GrammarError("blank must be in the tape alphabet")
        if not self.input_alphabet <= self.tape_alphabet:
            raise GrammarError("input alphabet must be within the tape alphabet")
        for t in self.transitions:
            if t.state not in self.states or t.next_state not in self.states:
                raise GrammarError(f"transition uses unknown state: {t}")
            if t.read not in self.tape_alphabet or t.write not in self.tape_alphabet:
                raise GrammarError(f"transition uses unknown symbol: {t}")

    def _step(
        self, tape: list[str], head: int, state: str
    ) -> tuple[list[str], int, str] | None:
        read = tape[head] if head < len(tape) else self.blank
        for t in self.transitions:
            if t.state == state and t.read == read:
                while head >= len(tape):
                    tape.append(self.blank)
                tape[head] = t.write
                new_head = head + t.move
                if new_head < 0:
                    return None  # fell off the left end: reject
                return tape, new_head, t.next_state
        return None

    def run(self, word: str, max_steps: int) -> bool:
        """Does the machine halt on ``word`` within ``max_steps``?

        (Acceptance by halting, matching the Theorem 5.1 usage where
        totality — halting on every input — is the undecidable
        property.)
        """
        tape = list(word) if word else [self.blank]
        head, state = 0, self.start
        for _ in range(max_steps):
            nxt = self._step(tape, head, state)
            if nxt is None:
                return True
            tape, head, state = nxt
        return False

    def configurations(self, word: str, max_steps: int) -> list[str]:
        """The configuration encodings of the run, oldest first.

        Encoding matches :func:`backward_grammar`: the state symbol sits
        immediately left of the scanned square.
        """
        tape = list(word) if word else [self.blank]
        head, state = 0, self.start
        out = [self._encode(tape, head, state)]
        for _ in range(max_steps):
            nxt = self._step(list(tape), head, state)
            if nxt is None:
                break
            tape, head, state = nxt
            out.append(self._encode(tape, head, state))
        return out

    @staticmethod
    def _encode(tape: list[str], head: int, state: str) -> str:
        cells = list(tape)
        while head >= len(cells):
            cells.append("_")
        return "".join(cells[:head]) + state + "".join(cells[head:])


def backward_grammar(
    machine: TuringMachine,
    left_marker: str = "<",
    unvisited_marker: str = ">",
    snippet_symbol: str = "T",
    finish_symbol: str = "F",
    start_symbol: str = "S",
) -> Grammar:
    """Theorem 5.1's grammar simulating a Turing machine backwards.

    The grammar derives exactly the inputs of ``machine``, and its
    derivation chains are (reversed) partial computations — so a
    sentential form has unboundedly many derivations iff the machine
    runs forever on it, reducing TM totality to the limitation problem.

    Marker/auxiliary symbols must not clash with the machine alphabet.
    """
    specials = {left_marker, unvisited_marker, snippet_symbol, finish_symbol, start_symbol}
    if len(specials) != 5 or specials & (machine.tape_alphabet | machine.states):
        raise GrammarError("marker symbols clash with the machine alphabet")
    rules: list[tuple[str, str]] = []
    # Initial rules: generate an arbitrary visited-tape snippet with the
    # head somewhere inside it.
    for state in sorted(machine.states):
        rules.append(
            (start_symbol, left_marker + snippet_symbol + state + snippet_symbol + unvisited_marker)
        )
    for symbol in sorted(machine.tape_alphabet):
        rules.append((snippet_symbol, symbol + snippet_symbol))
    rules.append((snippet_symbol, ""))
    # Final rules: succeed when the start state sits at the left end.
    rules.append((left_marker + machine.start, finish_symbol))
    for symbol in sorted(machine.input_alphabet):
        rules.append((finish_symbol + symbol, symbol + finish_symbol))
    rules.append((finish_symbol + unvisited_marker, ""))
    # One backward rule per machine transition.  Encoding: the state
    # symbol sits immediately left of the scanned square.
    for t in machine.transitions:
        if t.move == +1:
            # forward: q X -> Y p   (head moves onto the square after X)
            rules.append((t.write + t.next_state, t.state + t.read))
            if t.read == machine.blank:
                # The forward step may have extended the visited area.
                rules.append(
                    (
                        t.write + t.next_state + unvisited_marker,
                        t.state + unvisited_marker,
                    )
                )
        else:
            # forward: Z q X -> p Z Y   for every tape symbol Z
            for context in sorted(machine.tape_alphabet):
                rules.append(
                    (
                        t.next_state + context + t.write,
                        context + t.state + t.read,
                    )
                )
                if t.read == machine.blank:
                    rules.append(
                        (
                            t.next_state + context + t.write + unvisited_marker,
                            context + t.state + unvisited_marker,
                        )
                    )
    return Grammar(start_symbol, tuple(rules))


def anbn_grammar() -> Grammar:
    """The textbook grammar for ``{aⁿbⁿ : n ≥ 1}`` — a test workhorse."""
    return Grammar("S", (("S", "aSb"), ("S", "ab")))


def copy_grammar() -> Grammar:
    """A non-context-free grammar for ``{w c w : w ∈ {a,b}*}``.

    Uses marker symbols to shuttle copies across — exercising genuine
    type-0 behaviour in the derivation search.
    """
    rules = [
        ("S", "cM"),  # empty w
        ("S", "aSA"),
        ("S", "bSB"),
        ("Aa", "aA"),
        ("Ab", "bA"),
        ("Ba", "aB"),
        ("Bb", "bB"),
        ("AM", "Ma"),
        ("BM", "Mb"),
        ("cM", "c"),
    ]
    # Rewritten: generate w c w' with w' reversed marker trail, then
    # normalize.  Simpler checked variant below.
    return Grammar("S", tuple(rules))
