"""Expressive power (Section 6): regular sets to the arithmetical hierarchy."""

from repro.expressive.grammars import (
    Grammar,
    TMTransition,
    TuringMachine,
    anbn_grammar,
    backward_grammar,
)
from repro.expressive.lba import LBA, LBATransition, lba_formula
from repro.expressive.qbf import QBF, encode_qbf, evaluate_qbf_via_machines
from repro.expressive.regular import (
    parse_regex,
    regex_matches,
    regex_to_formula,
)
from repro.expressive.sequence_logic import (
    AtomEncoding,
    SequencePredicate,
    predicate_to_formula,
)

_LAZY = {"check_membership", "corollary_formula", "re_membership_formula"}


def __getattr__(name: str):
    """Lazy access to :mod:`repro.expressive.recursively_enumerable`.

    That module depends on :mod:`repro.safety.reductions`, which in
    turn uses the grammar substrate of this package — importing it
    eagerly here would close an import cycle.
    """
    if name in _LAZY:
        from repro.expressive import recursively_enumerable

        return getattr(recursively_enumerable, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Grammar",
    "TMTransition",
    "TuringMachine",
    "anbn_grammar",
    "backward_grammar",
    "LBA",
    "LBATransition",
    "lba_formula",
    "QBF",
    "encode_qbf",
    "evaluate_qbf_via_machines",
    "check_membership",
    "corollary_formula",
    "re_membership_formula",
    "parse_regex",
    "regex_matches",
    "regex_to_formula",
    "AtomEncoding",
    "SequencePredicate",
    "predicate_to_formula",
]
