"""Theorem 6.5: quantifier-limited formulae and the polynomial hierarchy.

The paper shows that alignment calculus formulae whose quantifiers are
*limited* by right-restricted type qualifiers capture exactly the
levels ``Σ^p_k`` / ``Π^p_k``.  The hard direction exhibits, for each
level, a formula deciding quantified Boolean formulae (QBF) with
``k-1`` alternations.  Its ingredients are machines (string formulae
via Theorem 3.2):

* ``M_i`` — a unidirectional 2-FSA checking that tape 2 holds a truth
  value block ``{T,F}^{m_i}`` sized to the ``i``-th quantifier block
  of the QBF instance on tape 1; the limitation ``[1] ↝ [2]`` makes it
  a legal type qualifier.
* ``M^k`` — a unidirectional ``(2+k)``-FSA checking that tape 2
  interleaves the instance's variable indices with the truth values
  from tapes ``3 … 2+k`` (``[1] ↝ [2, …, 2+k]``).
* ``M^k_∃`` / ``M^k_∀`` — right-restricted 2-FSAs whose bidirectional
  tape 2 serves as random-access memory: they check the alternation
  pattern and evaluate the CNF/DNF matrix under the assignment.

All three are constructed here as genuine FSAs and composed by an
evaluator that mirrors the paper's quantifier-limited formula — each
quantifier's domain is *generated from its type-qualifier machine*
(Definition 3.1), and the innermost matrix test is a plain machine
acceptance.  A recursive QBF evaluator provides the baseline oracle.

Simplification versus the paper: instances are produced by
:func:`encode_qbf`, which guarantees the ascending-index well-formedness
that ``M^k_σ``'s first condition re-checks for raw inputs; the machine
here verifies the alternation pattern and evaluates the matrix (its
conditions 2-4).  See EXPERIMENTS.md, item T65.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core.alphabet import LEFT_END, RIGHT_END, Alphabet
from repro.errors import ReproError
from repro.fsa.builder import MachineBuilder
from repro.fsa.machine import FSA

#: The fixed alphabet of QBF encodings.
QBF_ALPHABET = Alphabet("01EA;#()+-TF")

EXISTS, FORALL = "E", "A"
TRUE, FALSE = "T", "F"
DIGITS = ("0", "1")


@dataclass(frozen=True)
class QBF:
    """A prenex QBF with blocks listed outermost first.

    ``blocks``: ``(quantifier, variable-names)`` pairs with strictly
    alternating quantifiers; ``matrix``: clauses (CNF) or terms (DNF)
    of signed literals ``(positive, variable)``.  The paper's normal
    form ties the matrix to the innermost quantifier: CNF under an
    innermost ``∃``, DNF under an innermost ``∀``.
    """

    blocks: tuple[tuple[str, tuple[str, ...]], ...]
    matrix: tuple[tuple[tuple[bool, str], ...], ...]

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ReproError("QBF needs at least one quantifier block")
        seen: set[str] = set()
        previous = None
        for quantifier, names in self.blocks:
            if quantifier not in (EXISTS, FORALL):
                raise ReproError(f"unknown quantifier {quantifier!r}")
            if quantifier == previous:
                raise ReproError("quantifier blocks must alternate")
            if not names:
                raise ReproError("empty quantifier block")
            previous = quantifier
            for name in names:
                if name in seen:
                    raise ReproError(f"variable {name!r} quantified twice")
                seen.add(name)
        for group in self.matrix:
            for _, name in group:
                if name not in seen:
                    raise ReproError(f"free variable {name!r} in matrix")

    @property
    def level(self) -> int:
        """``k``: the number of quantifier blocks (``k-1`` alternations)."""
        return len(self.blocks)

    @property
    def sigma(self) -> bool:
        """Σ-form (leading ∃) or Π-form (leading ∀)?"""
        return self.blocks[0][0] == EXISTS

    @property
    def cnf(self) -> bool:
        """Matrix interpretation per the paper's normal form."""
        return self.blocks[-1][0] == EXISTS

    def variables(self) -> tuple[str, ...]:
        return tuple(
            name for _, names in self.blocks for name in names
        )

    # -- the recursive baseline oracle -----------------------------------

    def evaluate(self) -> bool:
        """Classical recursive QBF evaluation (the oracle)."""
        return self._evaluate(0, {})

    def _evaluate(self, index: int, assignment: dict[str, bool]) -> bool:
        if index == len(self.blocks):
            return self._matrix_value(assignment)
        quantifier, names = self.blocks[index]
        combine = any if quantifier == EXISTS else all
        return combine(
            self._evaluate(
                index + 1, {**assignment, **dict(zip(names, values))}
            )
            for values in product((False, True), repeat=len(names))
        )

    def _matrix_value(self, assignment: dict[str, bool]) -> bool:
        def literal(positive: bool, name: str) -> bool:
            return assignment[name] is positive

        if self.cnf:
            return all(
                any(literal(p, n) for p, n in group) for group in self.matrix
            )
        return any(
            all(literal(p, n) for p, n in group) for group in self.matrix
        )


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def index_string(position: int) -> str:
    """``I(i, j)``: the canonical binary index of the n-th variable."""
    return bin(position + 1)[2:]


def encode_qbf(qbf: QBF) -> str:
    """The instance encoding: prefix, ``#``, parenthesized matrix.

    Variables get ascending canonical binary indices in prefix order,
    realizing the paper's ordering restriction by construction.
    """
    indices = {
        name: index_string(i) for i, name in enumerate(qbf.variables())
    }
    prefix = "".join(
        quantifier + "".join(indices[name] + ";" for name in names)
        for quantifier, names in qbf.blocks
    )
    matrix = "".join(
        "("
        + "".join(
            ("+" if positive else "-") + indices[name] + ";"
            for positive, name in group
        )
        + ")"
        for group in qbf.matrix
    )
    return prefix + "#" + matrix


def encode_assignment(qbf: QBF, values: dict[str, bool]) -> str:
    """The assignment string ``y``: indices interleaved with T/F."""
    indices = {
        name: index_string(i) for i, name in enumerate(qbf.variables())
    }
    return "".join(
        indices[name] + (TRUE if values[name] else FALSE)
        for name in qbf.variables()
    )


def encode_block_values(names: tuple[str, ...], values) -> str:
    """One quantifier block's raw value string ``{T,F}^m``."""
    return "".join(TRUE if v else FALSE for v in values)


# ---------------------------------------------------------------------------
# The machines
# ---------------------------------------------------------------------------


def build_block_machine(block_index: int, total_blocks: int) -> FSA:
    """``M_i``: tape 2 ∈ {T,F}* sized to quantifier block ``block_index``.

    1-based ``block_index``; the machine is unidirectional and
    satisfies the limitation ``[tape 1] ↝ [tape 2]``, making it a type
    qualifier in the Theorem 6.5 formula.
    """
    if not 1 <= block_index <= total_blocks:
        raise ReproError("block index out of range")
    b = MachineBuilder(2, QBF_ALPHABET, "start")
    b.add("start", (LEFT_END, LEFT_END), ("seek", 1), (+1, +1))
    for j in range(1, block_index):
        # Skip earlier blocks: everything except quantifier characters.
        b.add(("seek", j), (("0", "1", ";"), "*"), ("seek", j), (+1, 0))
        nxt = ("seek", j + 1) if j + 1 < block_index else "count_intro"
        b.add(("seek", j), ((EXISTS, FORALL), "*"), nxt, (+1, 0))
    if block_index == 1:
        b.add(("seek", 1), ((EXISTS, FORALL), "*"), "count", (+1, 0))
    else:
        b.add("count_intro", ((EXISTS, FORALL), "*"), "count", (+1, 0))
        b.add("count_intro", (("0", "1", ";"), "*"), "count_intro", (+1, 0))
    b.add("count", (DIGITS, "*"), "count", (+1, 0))
    b.add("count", (";", (TRUE, FALSE)), "count", (+1, +1))
    b.add("count", ((EXISTS, FORALL, "#"), RIGHT_END), "done", (0, 0))
    b.final("done")
    return b.build()


def build_interleaving_machine(total_blocks: int) -> FSA:
    """``M^k``: tape 2 interleaves the prefix's indices with the block
    value tapes ``3 … 2+k``.

    Requires the instance to have exactly ``total_blocks`` blocks (our
    evaluator always matches machine level to instance level).  The
    limitation ``[1] ↝ [2, …, 2+k]`` holds: every output is paced by
    the formula tape.
    """
    k = total_blocks
    arity = 2 + k
    b = MachineBuilder(arity, QBF_ALPHABET, "start")

    def reads(**kw):
        spec: list = ["*"] * arity
        for tape, value in kw.items():
            spec[int(tape[1:])] = value
        return spec

    def moves(**kw):
        spec = [0] * arity
        for tape, value in kw.items():
            spec[int(tape[1:])] = value
        return spec

    # Step every head off its ⊢: tape 2's and the value tapes' first
    # characters are read by the comparisons below.
    b.add("start", [LEFT_END] * arity, ("quant", 1), [+1] * arity)
    for i in range(1, k + 1):
        z = 1 + i  # tape index of the i-th block's values
        b.add(
            ("quant", i),
            reads(t0=(EXISTS, FORALL)),
            ("idx", i),
            moves(t0=+1),
        )
        for digit in DIGITS:
            b.add(
                ("idx", i),
                reads(t0=digit, t1=digit),
                ("idx", i),
                moves(t0=+1, t1=+1),
            )
        for value in (TRUE, FALSE):
            b.add(
                ("idx", i),
                reads(**{"t0": ";", "t1": value, f"t{z}": value}),
                ("idx", i),
                moves(**{"t0": +1, "t1": +1, f"t{z}": +1}),
            )
        if i < k:
            b.add(
                ("idx", i),
                reads(**{"t0": (EXISTS, FORALL), f"t{z}": RIGHT_END}),
                ("idx", i + 1),
                moves(t0=+1),
            )
        else:
            b.add(
                ("idx", i),
                reads(**{"t0": "#", "t1": RIGHT_END, f"t{z}": RIGHT_END}),
                "done",
                moves(),
            )
    b.final("done")
    return b.build()


def build_matrix_machine(total_blocks: int, leading: str) -> FSA:
    """``M^k_∃`` / ``M^k_∀``: check alternations, evaluate the matrix.

    Tape 1 carries the instance, tape 2 the assignment; tape 2 is used
    as random-access memory through rewinding (the machine's only
    bidirectional tape — the formula stays right-restricted).  The
    matrix is CNF when the innermost quantifier is ``∃`` (one satisfied
    literal guessed per clause), DNF when it is ``∀`` (one fully
    verified term guessed).
    """
    if leading not in (EXISTS, FORALL):
        raise ReproError("leading quantifier must be E or A")
    k = total_blocks
    quantifiers = [
        leading if j % 2 == 1 else (FORALL if leading == EXISTS else EXISTS)
        for j in range(1, k + 1)
    ]
    cnf = quantifiers[-1] == EXISTS
    b = MachineBuilder(2, QBF_ALPHABET, "start")
    b.add("start", (LEFT_END, LEFT_END), ("prefix", 1), (+1, 0))
    for j in range(1, k + 1):
        b.add(("prefix", j), (quantifiers[j - 1], "*"), ("inblock", j), (+1, 0))
        b.add(("inblock", j), (("0", "1", ";"), "*"), ("inblock", j), (+1, 0))
        if j < k:
            b.add(
                ("inblock", j),
                (quantifiers[j], "*"),
                ("inblock", j + 1),
                (+1, 0),
            )
        else:
            b.add(("inblock", j), ("#", "*"), "matrix", (+1, 0))

    def add_lookup(tag: str, sign: str, done_state) -> None:
        """Rewind tape 2, find the literal's index, check its value.

        Entered with tape 1 on the first index digit; leaves with tape
        1 just past the literal's ``;``.
        """
        want = TRUE if sign == "+" else FALSE
        rewinding = (tag, sign, "rewind")
        seek = (tag, sign, "seek")
        skip = (tag, sign, "skip")
        match = (tag, sign, "match")
        b.add(rewinding, ("*", [s for s in QBF_ALPHABET.tape_symbols() if s != LEFT_END]), rewinding, (0, -1))
        b.add(rewinding, ("*", LEFT_END), seek, (0, +1))
        # skip one index-value entry on tape 2
        b.add(seek, ("*", DIGITS), skip, (0, 0))
        b.add(skip, ("*", DIGITS), skip, (0, +1))
        b.add(skip, ("*", (TRUE, FALSE)), seek, (0, +1))
        # or compare the entry with the literal's index
        for digit in DIGITS:
            b.add(seek, (digit, digit), match, (+1, +1))
            b.add(match, (digit, digit), match, (+1, +1))
        b.add(match, (";", want), done_state, (+1, 0))

    if cnf:
        b.add("matrix", ("(", "*"), "choose", (+1, 0))
        # skip an unused literal
        b.add("choose", (("+", "-"), "*"), "skiplit", (+1, 0))
        b.add("skiplit", (DIGITS, "*"), "skiplit", (+1, 0))
        b.add("skiplit", (";", "*"), "choose", (+1, 0))
        # or select the satisfied literal
        for sign in ("+", "-"):
            b.add("choose", (sign, "*"), ("cnf", sign, "rewind"), (+1, 0))
            add_lookup("cnf", sign, "afterlit")
        b.add("afterlit", (("+", "-", "0", "1", ";"), "*"), "afterlit", (+1, 0))
        b.add("afterlit", (")", "*"), "nextclause", (+1, 0))
        b.add("nextclause", ("(", "*"), "choose", (+1, 0))
        b.add("nextclause", (RIGHT_END, "*"), "done", (0, 0))
        # an empty matrix is vacuously true
        b.add("matrix", (RIGHT_END, "*"), "done", (0, 0))
    else:
        # DNF: skip whole terms until the chosen one, verify it fully.
        b.add("matrix", ("(", "*"), "termchoice", (+1, 0))
        # skip this term entirely
        b.add("termchoice", (("+", "-"), "*"), "termskip", (+1, 0))
        b.add("termskip", (("+", "-", "0", "1", ";"), "*"), "termskip", (+1, 0))
        b.add("termskip", (")", "*"), "matrix2", (+1, 0))
        b.add("matrix2", ("(", "*"), "termchoice", (+1, 0))
        # or verify it: every literal must hold
        b.add("termchoice", (("+", "-"), "*"), "verify", (0, 0))
        for sign in ("+", "-"):
            b.add("verify", (sign, "*"), ("dnf", sign, "rewind"), (+1, 0))
            add_lookup("dnf", sign, "verify")
        b.add("verify", (")", "*"), "tail", (+1, 0))
        # after a verified term, the rest of the input is irrelevant
        b.add("tail", (("(", ")", "+", "-", "0", "1", ";"), "*"), "tail", (+1, 0))
        b.add("tail", (RIGHT_END, "*"), "done", (0, 0))
    b.final("done")
    return b.build()


# ---------------------------------------------------------------------------
# The Theorem 6.5 evaluator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PHMachines:
    """The machine family for one hierarchy level."""

    level: int
    leading: str
    block_machines: tuple[FSA, ...]
    interleaver: FSA
    matrix_machine: FSA


def machines_for_level(level: int, leading: str) -> PHMachines:
    """Construct the Theorem 6.5 machines for ``Σ^p``/``Π^p`` level
    ``level`` (``leading`` picks Σ — ``E`` — or Π — ``A``)."""
    return PHMachines(
        level,
        leading,
        tuple(
            build_block_machine(i, level) for i in range(1, level + 1)
        ),
        build_interleaving_machine(level),
        build_matrix_machine(level, leading),
    )


def evaluate_qbf_via_machines(qbf: QBF) -> bool:
    """Decide the QBF through the Theorem 6.5 formula structure.

    Mirrors the quantifier-limited formula level by level: each block's
    domain is *generated* from its type-qualifier machine ``M_i``
    (Definition 3.1 — the machines are limited, so the domains are
    finite), and the innermost step asks for an assignment string ``y``
    accepted by both ``M^k`` and the matrix machine.
    """
    from repro.fsa.generate import accepted_tuples
    from repro.fsa.simulate import accepts

    machines = machines_for_level(qbf.level, qbf.blocks[0][0])
    instance = encode_qbf(qbf)
    block_sizes = [len(names) for _, names in qbf.blocks]
    y_bound = len(encode_assignment(qbf, {v: True for v in qbf.variables()}))

    def level(index: int, chosen: list[str]) -> bool:
        if index == qbf.level:
            fixed = {0: instance}
            for i, values in enumerate(chosen):
                fixed[2 + i] = values
            assignments = accepted_tuples(
                machines.interleaver, max_length=y_bound, fixed=fixed
            )
            return any(
                accepts(machines.matrix_machine, (instance, y))
                for (y,) in assignments
            )
        qualifier = machines.block_machines[index]
        domain = accepted_tuples(
            qualifier, max_length=block_sizes[index], fixed={0: instance}
        )
        quantifier = qbf.blocks[index][0]
        combine = any if quantifier == EXISTS else all
        return combine(
            level(index + 1, chosen + [values])
            for (values,) in sorted(domain)
        )

    return level(0, [])
