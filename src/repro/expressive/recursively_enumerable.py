"""Theorem 6.2 and Corollary 6.1: recursively enumerable languages.

``∃x₂, x₃ . φ_G`` defines derivability in the unrestricted grammar
``G`` — so pure alignment calculus with two quantified bidirectional
variables captures every r.e. language.  Membership is only
semi-decidable; this module provides the bounded witness search that
makes the construction executable, plus the Corollary 6.1 variant
where the two conjuncts are separate *unidirectional* string formulae
(the rewinding subformula (C) replaced by a logical ∧, as in
Example 9's copy trick).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.semantics import check_string_formula
from repro.core.syntax import And, Formula, StringFormula, exists, lift
from repro.expressive.grammars import Grammar
from repro.safety.reductions import (
    derivation_encoding,
    phi_1,
    phi_2,
    phi_g,
)


@dataclass(frozen=True)
class MembershipWitness:
    """A successful bounded membership check with its evidence."""

    word: str
    encoded_chain: str
    steps: int


def re_membership_formula(grammar: Grammar) -> Formula:
    """Theorem 6.2's formula ``∃x₂, x₃ . φ_G`` with free ``x₁``."""
    return exists(["x2", "x3"], lift(phi_g(grammar)))


def corollary_formula(grammar: Grammar) -> Formula:
    """Corollary 6.1: ``∃x₂, x₃ (φ ∧ ψ)`` with unidirectional conjuncts.

    The rewinding subformula (C) — the only right transposes of
    ``φ_G`` — is replaced by a conjunction: ``φ⁽¹⁾`` and ``φ⁽²⁾`` are
    evaluated from their own initial alignments, so neither needs to
    reset the chains.  ``ψ = φ⁽²⁾`` does not mention ``x₁`` at all,
    matching the corollary's final remark.
    """
    checker: StringFormula = phi_1("x1", "x2", "x3", grammar.start)
    stepper: StringFormula = phi_2("x2", "x3", grammar)
    return exists(["x2", "x3"], And(lift(checker), lift(stepper)))


def check_membership(
    grammar: Grammar,
    word: str,
    max_steps: int,
    max_length: int | None = None,
    formula_builder=re_membership_formula,
) -> MembershipWitness | None:
    """Bounded semi-decision of ``word ∈ L(grammar)`` via the formula.

    Searches derivation chains up to ``max_steps`` applications (and
    sentential forms up to ``max_length``), then *verifies* the found
    chain through the alignment calculus formula — the logic is the
    checker, the grammar search only supplies the witness.
    """
    if max_length is None:
        max_length = max(len(word) + 2, 4) * 2
    chain = grammar.derivation(word, max_steps, max_length)
    if chain is None:
        return None
    encoded = derivation_encoding(chain)
    formula = formula_builder(grammar)
    if not _verify(formula, word, encoded):
        return None
    return MembershipWitness(word, encoded, len(chain) - 1)


def _verify(formula: Formula, word: str, encoded: str) -> bool:
    """Check the quantified formula with the explicit witness plugged in.

    ``∃x₂,x₃`` is verified by direct substitution rather than domain
    enumeration, which keeps the check cheap for long chains.
    """
    from repro.core.syntax import Exists, StringAtom

    inner = formula
    while isinstance(inner, Exists):
        inner = inner.inner
    env = {"x1": word, "x2": encoded, "x3": encoded}
    if isinstance(inner, StringAtom):
        return check_string_formula(inner.formula, env)
    if isinstance(inner, And):
        return all(
            check_string_formula(part.formula, env)
            for part in (inner.left, inner.right)
            if isinstance(part, StringAtom)
        )
    raise TypeError(f"unexpected membership formula shape: {inner!r}")
