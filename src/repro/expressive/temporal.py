"""Theorem 6.3: temporal logic inside alignment calculus.

The modalities themselves live in :mod:`repro.core.shorthands`
(``next/until/eventually/henceforth/since along``); this module adds
the expressiveness landmarks the paper cites:

* Wolper's *even-position* property — inexpressible with plain
  ``next``/``until`` but a two-atom starred formula here;
* the strict-subsumption witnesses of Theorem 6.3: string equality and
  the manifold predicate, relations no (extended) temporal logic on a
  single sequence can express.
"""

from __future__ import annotations

from repro.core.shorthands import (
    eventually_along,
    henceforth_along,
    next_along,
    until_along,
)
from repro.core.syntax import (
    IsEmpty,
    SStar,
    StringFormula,
    Var,
    WindowFormula,
    WTrue,
    atom,
    concat,
    left,
)

__all__ = [
    "next_along",
    "until_along",
    "eventually_along",
    "henceforth_along",
    "every_even_position",
    "every_odd_position",
]


def every_even_position(var: Var, test: WindowFormula) -> StringFormula:
    """Wolper's example: ``test`` holds at every even position.

    Positions are counted from 1, so the formula constrains positions
    2, 4, 6, …: ``([x]_l ⊤ . [x]_l (test ∨ x=ε))* . [x]_l x=ε`` —
    stepping two at a time, checking the second of each pair; the
    trailing exhaustion test forces the loop to cover the whole string
    (checks beyond the end are vacuous thanks to the ``∨ x=ε``).
    Inexpressible in temporal logic with only ``next`` and ``until``
    (Wolper 1983); a starred two-atom formula in alignment calculus.
    """
    from repro.core.syntax import w_or

    pair = concat(
        atom(left(var), WTrue()),
        atom(left(var), w_or(test, IsEmpty(var))),
    )
    return concat(SStar(pair), atom(left(var), IsEmpty(var)))


def every_odd_position(var: Var, test: WindowFormula) -> StringFormula:
    """The mirrored property: ``test`` at positions 1, 3, 5, …"""
    from repro.core.syntax import w_or

    pair = concat(
        atom(left(var), w_or(test, IsEmpty(var))),
        atom(left(var), WTrue()),
    )
    return concat(SStar(pair), atom(left(var), IsEmpty(var)))
