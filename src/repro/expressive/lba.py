"""Theorem 6.6: linear bounded automata and PSPACE expression complexity.

An LBA works on a tape exactly as long as its input, fenced by the
markers ``⊲`` and ``⊳``.  The theorem encodes "the LBA accepts input
I" as the truth of ``∃x₁ . φ``, where ``φ`` is a right-restricted
string formula (one variable, transposed both ways) of size
``O(n · t · |Γ|)`` whose models are the accepting computations of the
machine written as a sequence of fixed-width configurations.

Construction, following the paper:

* ``ψ(L, a, b)`` checks that the current position holds ``a``, the
  position ``L`` squares to the right holds ``b``, and returns to the
  right neighbour of ``a`` — relating one configuration to the next
  (``L`` is the configuration width).
* ``χ_r`` encodes one transition as a local two/three-cell rewrite.
* ``χ'`` applies one rewrite somewhere between the markers while
  copying every other cell.
* ``φ`` pins the first configuration to the initial one, iterates
  ``χ'``, and finally checks the last configuration reaches the
  accepting state.

Deviation from the printed formula: the paper's tail
``([x₁]_l ⊤)* . [x₁]_l x₁ = p_m`` would also accept paddings with a
planted ``p_m``; we anchor the tail inside the final configuration and
require the string to end there (see EXPERIMENTS.md, item T66).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.alphabet import Alphabet
from repro.core.syntax import (
    IsChar,
    IsEmpty,
    SStar,
    StringFormula,
    Var,
    WTrue,
    atom,
    concat,
    left,
    right,
    union,
)
from repro.errors import ReproError

LEFT_MARK = "<"
RIGHT_MARK = ">"


@dataclass(frozen=True)
class LBATransition:
    """One LBA transition; moves are ``-1``, ``0`` or ``+1``."""

    state: str
    read: str
    next_state: str
    write: str
    move: int

    def __post_init__(self) -> None:
        if self.move not in (-1, 0, +1):
            raise ReproError("LBA moves must be -1, 0 or +1")


@dataclass(frozen=True)
class LBA:
    """A nondeterministic linear bounded automaton.

    The head ranges over tape cells ``1 … n`` plus the right marker;
    reading ``⊲`` or ``⊳`` forces the head back inside, and markers are
    never overwritten.  ``accept`` is a state without outgoing
    transitions.
    """

    states: frozenset[str]
    tape_alphabet: frozenset[str]
    start: str
    accept: str
    transitions: tuple[LBATransition, ...]

    def __post_init__(self) -> None:
        for t in self.transitions:
            if t.state == self.accept:
                raise ReproError("the accepting state must have no outgoing")
            if t.state not in self.states or t.next_state not in self.states:
                raise ReproError(f"unknown state in {t}")
            for symbol in (t.read, t.write):
                if symbol in (LEFT_MARK, RIGHT_MARK):
                    if t.read != t.write:
                        raise ReproError("markers cannot be overwritten")
                elif symbol not in self.tape_alphabet:
                    raise ReproError(f"unknown symbol in {t}")
            if t.read == LEFT_MARK:
                raise ReproError(
                    "heads range over the cells and ⊳ only; reading ⊲ "
                    "would put the state symbol before the configuration's "
                    "left marker (see module docstring)"
                )
            if t.read == RIGHT_MARK and t.move == +1:
                raise ReproError("cannot move right from ⊳")

    # -- direct simulation (the complete baseline decision) --------------

    def accepts(self, word: str) -> bool:
        """Complete acceptance decision by configuration-space search.

        LBA configurations on a fixed input are finitely many, so
        breadth-first search decides acceptance exactly — the baseline
        the Theorem 6.6 encoding is checked against.
        """
        run = self.accepting_run(word)
        return run is not None

    def accepting_run(self, word: str) -> list[str] | None:
        """An accepting computation as encoded configurations, or None."""
        start = (tuple(word), 1, self.start)
        parents: dict = {start: None}
        frontier = deque([start])
        goal = None
        while frontier:
            config = frontier.popleft()
            if config[2] == self.accept:
                goal = config
                break
            for nxt in self._steps(config):
                if nxt not in parents:
                    parents[nxt] = config
                    frontier.append(nxt)
        if goal is None:
            return None
        chain = [goal]
        while parents[chain[-1]] is not None:
            chain.append(parents[chain[-1]])
        chain.reverse()
        return [self.encode_configuration(c) for c in chain]

    def _steps(self, config):
        tape, head, state = config
        n = len(tape)
        read = RIGHT_MARK if head == n + 1 else tape[head - 1]
        for t in self.transitions:
            if t.state != state or t.read != read:
                continue
            new_tape = tape
            if 1 <= head <= n:
                new_tape = tape[: head - 1] + (t.write,) + tape[head:]
            new_head = head + t.move
            if not 1 <= new_head <= n + 1:
                continue  # the head never sits on ⊲
            yield (new_tape, new_head, t.next_state)

    @staticmethod
    def encode_configuration(config) -> str:
        """``⊲ u q v ⊳`` with the state just left of the scanned cell."""
        tape, head, state = config
        cells = [LEFT_MARK, *tape, RIGHT_MARK]
        return "".join(cells[:head]) + state + "".join(cells[head:])

    def encode_computation(self, word: str) -> str | None:
        """The witness string ``x₁``: accepting configurations, abutted."""
        run = self.accepting_run(word)
        if run is None:
            return None
        return "".join(run)

    def formula_alphabet(self) -> Alphabet:
        """Tape symbols, states and markers — the alphabet of ``φ``.

        States must be single characters for the encoding; multi-
        character state names raise.
        """
        for state in self.states:
            if len(state) != 1:
                raise ReproError(
                    "Theorem 6.6 encoding needs single-character states"
                )
        return Alphabet(
            sorted(self.tape_alphabet | self.states) + [LEFT_MARK, RIGHT_MARK]
        )


# ---------------------------------------------------------------------------
# The Theorem 6.6 formula
# ---------------------------------------------------------------------------


def psi(x: Var, width: int, a: str, b: str) -> StringFormula:
    """``ψ``: current cell ``a``, the cell ``width`` ahead ``b``, then
    step to the right neighbour of ``a``."""
    return concat(
        atom(left(), IsChar(x, a)),
        concat(*(atom(left(x), ~IsEmpty(x)) for _ in range(width - 1))),
        atom(left(x), IsChar(x, b)),
        concat(*(atom(right(x), WTrue()) for _ in range(width - 1))),
    )


def chi_rules(
    x: Var, width: int, lba: LBA, covering_end: bool
) -> StringFormula:
    """``χ``: one transition as a local rewrite between configurations.

    ``covering_end`` selects the rewrites whose window includes the
    right marker (the head was scanning ``⊳``); their ``ψ(⊳, ⊳)`` tail
    already verifies the configuration boundary, so ``χ'`` must not
    demand it again.
    """
    alternatives: list[StringFormula] = []
    for t in lba.transitions:
        if (t.read == RIGHT_MARK) != covering_end:
            continue
        if t.move == 0:
            # forward: q X -> p Y
            alternatives.append(
                concat(
                    psi(x, width, t.state, t.next_state),
                    psi(x, width, t.read, t.write),
                )
            )
        elif t.move == +1:
            # forward: q X -> Y p
            alternatives.append(
                concat(
                    psi(x, width, t.state, t.write),
                    psi(x, width, t.read, t.next_state),
                )
            )
        else:
            # forward: Z q X -> p Z Y, for every context symbol Z
            for context in sorted(lba.tape_alphabet):
                alternatives.append(
                    concat(
                        psi(x, width, context, t.next_state),
                        psi(x, width, t.state, context),
                        psi(x, width, t.read, t.write),
                    )
                )
    if not alternatives:
        from repro.fsa.decompile import unsatisfiable

        return unsatisfiable()
    return union(*alternatives)


def chi_step(x: Var, width: int, lba: LBA) -> StringFormula:
    """``χ'``: one full configuration rewritten into the next.

    Anchored at a configuration's ``⊲``; copies unchanged cells with
    ``ψ(a, a)``, applies one rule, copies to ``⊳`` — ending at the
    start of the next configuration.
    """
    copy = union(
        *(psi(x, width, a, a) for a in sorted(lba.tape_alphabet))
    )
    interior = concat(
        chi_rules(x, width, lba, covering_end=False),
        SStar(copy),
        psi(x, width, RIGHT_MARK, RIGHT_MARK),
    )
    at_end = chi_rules(x, width, lba, covering_end=True)
    return concat(
        psi(x, width, LEFT_MARK, LEFT_MARK),
        SStar(copy),
        union(interior, at_end),
    )


def final_configuration(x: Var, lba: LBA) -> StringFormula:
    """The corrected tail: the last configuration is well-formed,
    contains the accepting state, and the string ends with it.

    Entered with the window *on* the configuration's ``⊲`` (the
    position every ``ψ``-chain returns to), hence the in-place first
    test.
    """
    cell = union(
        *(atom(left(x), IsChar(x, a)) for a in sorted(lba.tape_alphabet))
    )
    return concat(
        atom(left(), IsChar(x, LEFT_MARK)),
        SStar(cell),
        atom(left(x), IsChar(x, lba.accept)),
        SStar(cell),
        atom(left(x), IsChar(x, RIGHT_MARK)),
        atom(left(x), IsEmpty(x)),
    )


def lba_formula(lba: LBA, word: str, x: Var = "x1") -> StringFormula:
    """Theorem 6.6's ``φ``: true of ``x₁`` iff it encodes an accepting
    computation of ``lba`` on ``word``."""
    width = len(word) + 3
    initial = [atom(left(x), IsChar(x, LEFT_MARK)),
               atom(left(x), IsChar(x, lba.start))]
    initial.extend(atom(left(x), IsChar(x, char)) for char in word)
    initial.append(atom(left(x), IsChar(x, RIGHT_MARK)))
    rewind_all = SStar(atom(right(x), ~IsEmpty(x)))
    return concat(
        *initial,
        rewind_all,
        SStar(chi_step(x, width, lba)),
        final_configuration(x, lba),
    )


def formula_size(formula: StringFormula) -> int:
    """Number of atomic string formulae — the paper's ``|φ|`` proxy."""
    from repro.core.syntax import atoms_of

    return len(atoms_of(formula))


def verify_acceptance_via_formula(lba: LBA, word: str) -> bool:
    """Decide acceptance through the logic (with simulation witnesses).

    Truth of ``∃x₁ φ`` is established positively by checking the
    simulated accepting computation against ``φ``; rejection is
    certified by the complete configuration-space search (LBA
    configuration spaces are finite).  Cross-checking both directions
    is the executable content of Theorem 6.6.
    """
    from repro.core.semantics import check_string_formula

    witness = lba.encode_computation(word)
    if witness is None:
        return False
    formula = lba_formula(lba, word)
    if not check_string_formula(formula, {"x1": witness}):
        raise ReproError(
            "simulation produced a witness the formula rejects — "
            "encoding mismatch"
        )
    return True
