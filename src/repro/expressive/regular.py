"""Regular languages and Theorem 6.1.

A self-contained classical regular-expression engine (parser, Thompson
NFA, matcher) serves as the independent baseline; the theorem's two
directions are then:

* ``regex_to_formula`` — replace every character ``c`` of the regex by
  ``[x]_l x=c`` and append ``[x]_l x=ε`` (the paper's construction);
* ``one_tape_to_nfa`` — a unidirectional 1-FSA is a classical NFA with
  endmarkers; this converts it to a plain NFA (handling ``⊢``/``⊣``
  reads and stationary "peek" transitions), witnessing that
  unidirectional one-variable string formulae define only regular
  sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import LEFT_END, RIGHT_END, Alphabet
from repro.core.syntax import (
    IsChar,
    IsEmpty,
    Lambda,
    SStar,
    StringFormula,
    Var,
    atom,
    concat,
    left,
    union,
)
from repro.errors import LimitationError, ParseError
from repro.fsa.machine import FSA


# ---------------------------------------------------------------------------
# Regex AST and parser
# ---------------------------------------------------------------------------


class Regex:
    """Base class for regular expressions over single characters."""

    __slots__ = ()


@dataclass(frozen=True)
class RChar(Regex):
    char: str

    def __str__(self) -> str:
        return self.char


@dataclass(frozen=True)
class REpsilon(Regex):
    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class REmpty(Regex):
    def __str__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class RConcat(Regex):
    parts: tuple[Regex, ...]

    def __str__(self) -> str:
        return "".join(
            f"({p})" if isinstance(p, RUnion) else str(p) for p in self.parts
        )


@dataclass(frozen=True)
class RUnion(Regex):
    parts: tuple[Regex, ...]

    def __str__(self) -> str:
        return "|".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class RStar(Regex):
    inner: Regex

    def __str__(self) -> str:
        inner = str(self.inner)
        if isinstance(self.inner, (RChar, REpsilon)):
            return f"{inner}*"
        return f"({inner})*"


def parse_regex(text: str) -> Regex:
    """Parse the usual concrete syntax: literals, ``|``, ``*``, ``+``,
    ``?`` and parentheses.  The empty string parses to ``ε``."""
    position = 0

    def peek() -> str | None:
        return text[position] if position < len(text) else None

    def take() -> str:
        nonlocal position
        char = text[position]
        position += 1
        return char

    def parse_union() -> Regex:
        parts = [parse_concat()]
        while peek() == "|":
            take()
            parts.append(parse_concat())
        return parts[0] if len(parts) == 1 else RUnion(tuple(parts))

    def parse_concat() -> Regex:
        parts: list[Regex] = []
        while peek() is not None and peek() not in "|)":
            parts.append(parse_postfix())
        if not parts:
            return REpsilon()
        return parts[0] if len(parts) == 1 else RConcat(tuple(parts))

    def parse_postfix() -> Regex:
        base = parse_atom()
        while peek() in ("*", "+", "?"):
            op = take()
            if op == "*":
                base = RStar(base)
            elif op == "+":
                base = RConcat((base, RStar(base)))
            else:
                base = RUnion((base, REpsilon()))
        return base

    def parse_atom() -> Regex:
        char = peek()
        if char is None:
            raise ParseError(f"unexpected end of pattern in {text!r}")
        if char == "(":
            take()
            inner = parse_union()
            if peek() != ")":
                raise ParseError(f"unbalanced parenthesis in {text!r}")
            take()
            return inner
        if char in "*+?)|":
            raise ParseError(f"unexpected {char!r} in {text!r}")
        return RChar(take())

    result = parse_union()
    if position != len(text):
        raise ParseError(f"trailing input in {text!r}")
    return result


# ---------------------------------------------------------------------------
# Thompson NFA matcher
# ---------------------------------------------------------------------------


class NFA:
    """A classical ε-NFA over single characters."""

    def __init__(self) -> None:
        self.edges: list[list[tuple[str | None, int]]] = []
        self.start = self.new_state()
        self.final = self.new_state()

    def new_state(self) -> int:
        self.edges.append([])
        return len(self.edges) - 1

    def add(self, source: int, label: str | None, target: int) -> None:
        self.edges[source].append((label, target))

    def closure(self, states: frozenset[int]) -> frozenset[int]:
        seen = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for label, target in self.edges[state]:
                if label is None and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def matches(self, word: str) -> bool:
        current = self.closure(frozenset({self.start}))
        for char in word:
            moved = {
                target
                for state in current
                for label, target in self.edges[state]
                if label == char
            }
            current = self.closure(frozenset(moved))
            if not current:
                return False
        return self.final in current


def regex_to_nfa(regex: Regex) -> NFA:
    """Thompson construction."""
    nfa = NFA()

    def build(node: Regex, source: int, target: int) -> None:
        if isinstance(node, RChar):
            nfa.add(source, node.char, target)
        elif isinstance(node, REpsilon):
            nfa.add(source, None, target)
        elif isinstance(node, REmpty):
            pass
        elif isinstance(node, RConcat):
            current = source
            for part in node.parts[:-1]:
                nxt = nfa.new_state()
                build(part, current, nxt)
                current = nxt
            build(node.parts[-1], current, target)
        elif isinstance(node, RUnion):
            for part in node.parts:
                build(part, source, target)
        elif isinstance(node, RStar):
            hub = nfa.new_state()
            nfa.add(source, None, hub)
            nfa.add(hub, None, target)
            build(node.inner, hub, hub)
        else:
            raise TypeError(f"not a regex: {node!r}")

    build(regex, nfa.start, nfa.final)
    return nfa


def regex_matches(regex: Regex, word: str) -> bool:
    """Full-match of ``word`` against ``regex`` (the baseline oracle)."""
    return regex_to_nfa(regex).matches(word)


def regex_language(
    regex: Regex, alphabet: Alphabet, max_length: int
) -> frozenset[str]:
    """``L(regex) ∩ Σ^{<=max_length}`` by enumeration."""
    nfa = regex_to_nfa(regex)
    return frozenset(
        word for word in alphabet.strings(max_length) if nfa.matches(word)
    )


# ---------------------------------------------------------------------------
# Theorem 6.1, direction 1: regex → string formula
# ---------------------------------------------------------------------------


def regex_to_formula(regex: Regex, var: Var = "x") -> StringFormula:
    """The paper's translation: ``φ_A . []_l x=ε`` with characters
    replaced by ``[x]_l x=c``.

    The resulting formula is unidirectional, unquantified and uses one
    variable — the exact class Theorem 6.1 equates with the regular
    languages.
    """
    return concat(_regex_body(regex, var), atom(left(var), IsEmpty(var)))


def _regex_body(regex: Regex, var: Var) -> StringFormula:
    if isinstance(regex, RChar):
        return atom(left(var), IsChar(var, regex.char))
    if isinstance(regex, REpsilon):
        return Lambda()
    if isinstance(regex, REmpty):
        from repro.fsa.decompile import unsatisfiable

        return unsatisfiable()
    if isinstance(regex, RConcat):
        return concat(*(_regex_body(p, var) for p in regex.parts))
    if isinstance(regex, RUnion):
        return union(*(_regex_body(p, var) for p in regex.parts))
    if isinstance(regex, RStar):
        return SStar(_regex_body(regex.inner, var))
    raise TypeError(f"not a regex: {regex!r}")


# ---------------------------------------------------------------------------
# Theorem 6.1, direction 2: unidirectional 1-FSA → classical NFA
# ---------------------------------------------------------------------------


def one_tape_to_nfa(fsa: FSA) -> NFA:
    """Convert a unidirectional 1-FSA into an equivalent classical NFA.

    Endmarker reads become ε-moves with positional bookkeeping: the NFA
    state tracks whether the head sits on ``⊢``, over the next
    unconsumed symbol, over a symbol already *peeked* by a stationary
    transition, or on ``⊣``.  Because the machine accepts by halting in
    a final state wherever its head is, acceptance mid-word lets the
    remainder of the word be arbitrary (the tape beyond the head was
    never inspected).
    """
    if fsa.arity != 1:
        raise LimitationError("one_tape_to_nfa needs a 1-FSA")
    if not fsa.is_unidirectional():
        raise LimitationError("one_tape_to_nfa needs a unidirectional machine")
    if any(fsa.outgoing(state) for state in fsa.finals):
        from repro.fsa.decompile import normalize_for_decompile

        fsa = normalize_for_decompile(fsa)
    machine = fsa.pruned()
    nfa = NFA()
    ids: dict = {}

    def state_of(key) -> int:
        if key not in ids:
            ids[key] = nfa.new_state()
        return ids[key]

    sink = state_of(("sink",))
    for char in machine.alphabet.symbols:
        nfa.add(sink, char, sink)
    nfa.add(sink, None, nfa.final)

    def accept_from(key) -> None:
        q, mode = key
        if q not in machine.finals:
            return
        if mode in ("L", "M"):
            nfa.add(state_of(key), None, sink)
        elif mode == "E":
            nfa.add(state_of(key), None, nfa.final)
        else:  # peeked character: it must still appear, then anything
            nfa.add(state_of(key), mode[1], sink)

    start_key = (machine.start, "L")
    nfa.add(nfa.start, None, state_of(start_key))
    frontier = [start_key]
    seen = {start_key}

    def push(key, edge_label, source_key):
        nfa.add(state_of(source_key), edge_label, state_of(key))
        if key not in seen:
            seen.add(key)
            frontier.append(key)

    while frontier:
        key = frontier.pop()
        accept_from(key)
        q, mode = key
        for t in machine.outgoing(q):
            (read,) = t.reads
            (move,) = t.moves
            if mode == "L":
                if read != LEFT_END:
                    continue
                if move == +1:
                    push((t.target, "M"), None, key)
                else:
                    push((t.target, "L"), None, key)
            elif mode == "M":
                if read in machine.alphabet:
                    if move == +1:
                        push((t.target, "M"), read, key)
                    else:
                        push((t.target, ("P", read)), None, key)
                elif read == RIGHT_END:
                    # The unconsumed symbol is the right endmarker.
                    push((t.target, "E"), None, key)
            elif mode == "E":
                if read == RIGHT_END and move == 0:
                    push((t.target, "E"), None, key)
            else:  # ("P", char): the head sits on a peeked character
                char = mode[1]
                if read != char:
                    continue
                if move == +1:
                    push((t.target, "M"), char, key)
                else:
                    push((t.target, ("P", char)), None, key)
    return nfa


def formula_language_via_nfa(
    formula: StringFormula, alphabet: Alphabet, max_length: int, var: Var = "x"
) -> frozenset[str]:
    """``⟦φ⟧ ∩ Σ^{<=max_length}`` through the NFA route of Theorem 6.1."""
    from repro.fsa.compile import compile_string_formula

    compiled = compile_string_formula(formula, alphabet, variables=(var,))
    nfa = one_tape_to_nfa(compiled.fsa)
    return frozenset(
        word for word in alphabet.strings(max_length) if nfa.matches(word)
    )


def one_variable_language(
    formula: StringFormula,
    alphabet: Alphabet,
    max_length: int,
    var: Var | None = None,
) -> frozenset[str]:
    """``⟦φ⟧ ∩ Σ^{<=max_length}`` for *any* one-variable string formula.

    The paper notes after Theorem 6.1 that "moving the only tape back
    and forth does not increase expressivity (as proved implicitly in
    Theorem 5.2)": a bidirectional 1-FSA is a classical two-way NFA,
    and its crossing automaton ``A″`` is an equivalent one-way NFA.
    Unidirectional formulae take the direct NFA route instead.
    """
    from repro.core.syntax import string_variables
    from repro.fsa.compile import compile_string_formula

    if var is None:
        variables = sorted(string_variables(formula))
        if len(variables) != 1:
            raise LimitationError(
                f"one_variable_language needs one variable, got {variables}"
            )
        var = variables[0]
    compiled = compile_string_formula(formula, alphabet, variables=(var,))
    machine = compiled.fsa.pruned()
    if machine.is_unidirectional():
        nfa = one_tape_to_nfa(machine)
        return frozenset(
            word for word in alphabet.strings(max_length) if nfa.matches(word)
        )
    from repro.safety.crossing import build_crossing_automaton

    crossing = build_crossing_automaton(machine, 0, set(), {0})
    return frozenset(
        word
        for word in alphabet.strings(max_length)
        if crossing.accepts(word)
    )
