"""Picklable shard tasks — the work descriptors shipped to workers.

Every task is a frozen dataclass over the library's immutable value
objects (formulae, databases, machines), so it crosses the process
boundary by ordinary pickling; the worker entry point
:func:`execute_task` is a module-level function for the same reason.
Three task kinds cover the parallel surface:

* :class:`NaiveShardTask` — a contiguous range of the naive engine's
  head-tuple candidate space ``domain^k``, decoded in the worker by
  mixed-radix indexing and filtered through the reference semantics;
* :class:`GenerateShardTask` — a batch of Lemma 3.1 specializations of
  one generator machine (the planner's and the algebra's
  ``σ_A(F × (Σ*)^n)`` inner loop), one ``fixed`` binding per item;
* :class:`SimulateShardTask` — a batch of acceptance checks of one
  machine on concrete rows (the algebra's non-generative selection).

Results of the positional task kinds are ``(global_index, value)``
pairs, so the parent can merge shard outputs without caring how the
shards were split or re-split.

Databases ride along by value, but their storage backends control
their own pickling: an artifact-backed
:class:`~repro.storage.NGramIndexStorage` reduces to *open this
artifact path read-only*, so every worker mmaps the one on-disk index
(sharing OS page cache) instead of receiving a serialized tuple set —
the parent builds once, the fleet loads instantly.

:class:`ChaosPolicy` is a first-class fault-injection hook: because
worker processes share no state with the tests, deterministic chaos is
keyed on the shard itself (its ``generation`` and plan ``index``) —
"every generation-0 shard fails" needs no cross-process coordination
and heals naturally once the executor re-splits.
"""

from __future__ import annotations

import os
import time
from collections.abc import Mapping
from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.errors import ParallelExecutionError
from repro.parallel.sharding import Shard, decode_candidate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import Database
    from repro.core.syntax import Formula, Var
    from repro.fsa.machine import FSA

FixedItems = tuple[tuple[int, str], ...]


class ChaosFailure(RuntimeError):
    """The deliberate failure raised by a ``fail``-mode chaos policy."""


@dataclass(frozen=True)
class ChaosPolicy:
    """Deterministic fault injection for executor tests.

    ``fail_generations`` / ``hang_generations`` / ``crash_generations``
    select shard generations to sabotage; ``only_indices`` (when set)
    further restricts sabotage to shards whose plan ``index`` matches.
    A policy listing only generation 0 therefore fails every shard of
    the original plan and lets all re-split children succeed — the
    retry path in one picklable value.
    """

    fail_generations: tuple[int, ...] = ()
    hang_generations: tuple[int, ...] = ()
    crash_generations: tuple[int, ...] = ()
    only_indices: tuple[int, ...] | None = None
    hang_seconds: float = 2.0

    def _matches(self, shard: Shard) -> bool:
        return self.only_indices is None or shard.index in self.only_indices

    def apply(self, shard: Shard, in_worker: bool = True) -> None:
        """Sabotage the current worker according to the policy.

        In the executor's sequential fallback (``in_worker=False``) a
        ``crash`` downgrade to an ordinary failure — exiting would take
        the caller's process with it.
        """
        if not self._matches(shard):
            return
        if shard.generation in self.crash_generations:
            if in_worker:
                os._exit(13)  # a hard worker death, not an exception
            raise ChaosFailure(
                f"injected crash for shard {shard.index} "
                f"generation {shard.generation} (sequential mode)"
            )
        if shard.generation in self.hang_generations:
            time.sleep(self.hang_seconds)
        if shard.generation in self.fail_generations:
            raise ChaosFailure(
                f"injected failure for shard {shard.index} "
                f"generation {shard.generation}"
            )


@dataclass(frozen=True)
class NaiveShardTask:
    """Reference-semantics evaluation of candidate range ``shard``.

    The embedded ``db`` pickles through its storage backends — an
    artifact-backed index storage ships as a path and is re-opened
    (mmap, read-only) in the worker rather than serialized row by row.
    """

    shard: Shard
    formula: "Formula"
    head: "tuple[Var, ...]"
    db: "Database"
    domain: tuple[str, ...]

    def narrowed(self, shard: Shard) -> "NaiveShardTask":
        """A copy of this task restricted to the sub-range ``shard``."""
        return replace(self, shard=shard)

    def run(self) -> frozenset[tuple[str, ...]]:
        """The satisfying head tuples in this shard's candidate range."""
        from repro.core.semantics import satisfies

        width = len(self.head)
        answers = set()
        for index in range(self.shard.start, self.shard.stop):
            values = decode_candidate(self.domain, width, index)
            env = dict(zip(self.head, values))
            if satisfies(self.formula, env, self.db, self.domain):
                answers.add(values)
        return frozenset(answers)


@dataclass(frozen=True)
class GenerateShardTask:
    """Generator-machine runs for a slice of ``fixed`` bindings.

    ``fixed_batch[i]`` corresponds to global position ``shard.start + i``
    of the full binding list; results come back as ``(position,
    answers)`` pairs.
    """

    shard: Shard
    fsa: "FSA"
    max_length: int
    fixed_batch: tuple[FixedItems, ...]

    def __post_init__(self) -> None:
        if len(self.fixed_batch) != self.shard.size:
            raise ParallelExecutionError(
                f"generate shard carries {len(self.fixed_batch)} bindings "
                f"for a size-{self.shard.size} range"
            )

    def narrowed(self, shard: Shard) -> "GenerateShardTask":
        """A copy restricted to ``shard``, slicing the binding batch."""
        offset = shard.start - self.shard.start
        return replace(
            self,
            shard=shard,
            fixed_batch=self.fixed_batch[offset : offset + shard.size],
        )

    def run(self) -> tuple[tuple[int, frozenset[tuple[str, ...]]], ...]:
        """``(global position, answers)`` pairs for the binding batch."""
        from repro.fsa.generate import accepted_tuples_batch

        produced = accepted_tuples_batch(
            self.fsa, self.max_length, self.fixed_batch
        )
        return tuple(
            (self.shard.start + offset, answers)
            for offset, answers in enumerate(produced)
        )


@dataclass(frozen=True)
class SimulateShardTask:
    """Acceptance checks of one machine on a slice of concrete rows.

    ``kernel_mode`` rides along so a session pinned to ``"v1"`` (or
    forced to ``"v2"``) keeps that choice inside worker processes;
    the default ``"auto"`` picks the determinized scan kernel for
    in-fragment machines and the worklist kernel otherwise.
    """

    shard: Shard
    fsa: "FSA"
    rows: tuple[tuple[str, ...], ...]
    kernel_mode: str = "auto"

    def __post_init__(self) -> None:
        if len(self.rows) != self.shard.size:
            raise ParallelExecutionError(
                f"simulate shard carries {len(self.rows)} rows "
                f"for a size-{self.shard.size} range"
            )

    def narrowed(self, shard: Shard) -> "SimulateShardTask":
        """A copy restricted to ``shard``, slicing the row batch."""
        offset = shard.start - self.shard.start
        return replace(
            self,
            shard=shard,
            rows=self.rows[offset : offset + shard.size],
        )

    def run(self) -> tuple[tuple[int, bool], ...]:
        """``(global position, accepted?)`` verdicts for the row batch.

        The machine is compiled to its acceptance kernel once per
        shard in the worker (:func:`repro.fsa.kernel.kernel_for`
        caches it on the unpickled machine instance), so every row of
        the batch runs on the same dense tables — the v2 scan table
        for in-fragment machines under ``auto``/``v2``, the v1
        dispatch table otherwise.
        """
        from repro.fsa.kernel import kernel_for

        verdicts = kernel_for(self.fsa, self.kernel_mode).accepts_batch(
            self.rows
        )
        return tuple(
            (self.shard.start + offset, verdict)
            for offset, verdict in enumerate(verdicts)
        )


def fixed_items(fixed: Mapping[int, str] | None) -> FixedItems:
    """Canonical (sorted, hashable, picklable) form of a ``fixed`` map."""
    return tuple(sorted(fixed.items())) if fixed else ()


#: The picklable trace payload a traced worker ships back with its
#: result: ``(pid, records, counters, gauges)`` — the worker's process
#: id followed by the ``Tracer.export()`` triple — or ``None`` when
#: the run was untraced.
TraceState = "tuple[int, tuple, dict, dict] | None"


def execute_task(
    task: Any,
    chaos: ChaosPolicy | None = None,
    in_worker: bool = True,
    traced: bool = False,
) -> tuple[Any, float, Any]:
    """The worker entry point: run one task, timing (and tracing) it.

    Args:
        task: Any shard task from this module (``task.run()`` does the
            work, ``task.shard`` locates it in the plan).
        chaos: Optional fault-injection policy, applied before the run.
        in_worker: Whether this call executes inside a pool worker;
            the sequential fallback passes ``False`` to soften chaos
            crashes into exceptions.
        traced: When true, the run happens under a private worker-side
            :class:`~repro.observability.Tracer` whose exported state
            rides back with the result for the parent to
            ``absorb()`` — worker processes share no tracer with the
            parent, so the spans must travel by value.

    Returns:
        ``(result, seconds, trace_state)`` — the task's raw result,
        its compute time for :class:`~repro.parallel.executor
        .ExecutionReport` aggregation, and the worker's
        ``(pid, records, counters, gauges)`` trace payload (``None``
        when ``traced`` is false).
    """
    started = perf_counter()
    if not traced:
        if chaos is not None:
            chaos.apply(task.shard, in_worker=in_worker)
        return task.run(), perf_counter() - started, None
    from repro.observability import Tracer, activate

    tracer = Tracer()
    with activate(tracer):
        with tracer.span(
            "execute.shard",
            stage="execute",
            kind=type(task).__name__,
            start=task.shard.start,
            stop=task.shard.stop,
            generation=task.shard.generation,
        ):
            if chaos is not None:
                chaos.apply(task.shard, in_worker=in_worker)
            result = task.run()
    return result, perf_counter() - started, (os.getpid(), *tracer.export())
