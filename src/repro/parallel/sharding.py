"""Deterministic sharding of candidate spaces.

This is the planning half of :mod:`repro.parallel`.

The alignment-algebra semantics make evaluation embarrassingly
parallel: the ``Σ^{<=l}`` domain pool, the naive engine's head-tuple
cross product ``domain^k``, the planner's per-binding generator runs
and the algebra's ``σ_A(F × (Σ*)^n)`` row loop all iterate a finite
index space whose elements are independent.  A :class:`ShardPlanner`
splits any such space ``[0, total)`` into contiguous, near-equal
:class:`Shard` ranges that are

* **disjoint and covering** — every index lands in exactly one shard;
* **deterministic** — the same ``(total, shards)`` request always
  yields the same plan, so shard boundaries are stable enough to key
  caches by (:meth:`Shard.cache_key`);
* **re-splittable** — a shard that fails (worker crash, timeout) can
  be split into sub-shards covering exactly the same range, with a
  bumped ``generation`` recording the retry depth.

Candidate tuples are never materialized during planning: the naive
engine's ``i``-th candidate is recovered in the worker by mixed-radix
decoding (:func:`decode_candidate`), matching ``itertools.product``
order exactly.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.errors import ParallelExecutionError

#: Shards created per worker by the default plan, so stragglers can be
#: balanced across the pool instead of serializing behind one slot.
OVERSHARD_FACTOR = 4


@dataclass(frozen=True)
class Shard:
    """One contiguous slice ``[start, stop)`` of a candidate space.

    ``index``/``of`` locate the shard inside the plan that created it;
    ``generation`` counts how many failure-driven re-splits produced
    it (0 for shards straight from the planner).
    """

    start: int
    stop: int
    index: int
    of: int
    generation: int = 0

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ParallelExecutionError(
                f"malformed shard range [{self.start}, {self.stop})"
            )

    @property
    def size(self) -> int:
        """The number of indices the shard covers."""
        return self.stop - self.start

    def cache_key(self) -> tuple:
        """A structural key for per-shard artifacts.

        Deliberately independent of ``generation``: a re-split child
        covering the same range as an earlier attempt hits the same
        cache entries.
        """
        return ("shard", self.start, self.stop)

    def split(self, parts: int = 2) -> tuple["Shard", ...]:
        """Sub-shards covering exactly ``[start, stop)``.

        The children carry ``generation + 1``; a size-1 (or empty)
        shard cannot be split further and is returned as a single
        bumped-generation retry of itself.
        """
        parts = max(1, min(parts, self.size if self.size else 1))
        if parts == 1:
            return (replace(self, generation=self.generation + 1),)
        bounds = _balanced_bounds(self.start, self.stop, parts)
        return tuple(
            Shard(lo, hi, i, parts, self.generation + 1)
            for i, (lo, hi) in enumerate(bounds)
        )


def _balanced_bounds(
    start: int, stop: int, parts: int
) -> list[tuple[int, int]]:
    """``parts`` contiguous ranges covering ``[start, stop)``, sizes
    differing by at most one, larger shards first."""
    total = stop - start
    base, extra = divmod(total, parts)
    bounds = []
    cursor = start
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        bounds.append((cursor, cursor + size))
        cursor += size
    return bounds


class ShardPlanner:
    """Plans shard ranges for a worker pool.

    ``shards`` fixes the plan width outright; otherwise
    :meth:`suggested_shards` picks ``workers × OVERSHARD_FACTOR``
    capped by the space size.  Planning is a pure function of its
    arguments — two planners given the same request produce identical
    plans, which is what makes shard cache keys stable across
    sessions and retries.
    """

    def __init__(self, shards: int | None = None) -> None:
        if shards is not None and shards < 1:
            raise ParallelExecutionError(
                f"shard count must be positive, got {shards}"
            )
        self.shards = shards

    @staticmethod
    def suggested_shards(total: int, workers: int) -> int:
        """The default plan width: oversharded per worker, size-capped.

        Args:
            total: The candidate-space size.
            workers: The worker-process count.

        Returns:
            ``workers × OVERSHARD_FACTOR`` clamped to ``[1, total]``
            (0 for an empty space).
        """
        if total <= 0:
            return 0
        return max(1, min(total, max(1, workers) * OVERSHARD_FACTOR))

    def plan(self, total: int, workers: int = 1) -> tuple[Shard, ...]:
        """Shards covering ``[0, total)``; empty plan for an empty space."""
        if total < 0:
            raise ParallelExecutionError(
                f"candidate space size must be non-negative, got {total}"
            )
        if total == 0:
            return ()
        count = self.shards or self.suggested_shards(total, workers)
        count = max(1, min(count, total))
        bounds = _balanced_bounds(0, total, count)
        return tuple(
            Shard(lo, hi, i, count) for i, (lo, hi) in enumerate(bounds)
        )


def decode_candidate(
    domain: Sequence[str], width: int, index: int
) -> tuple[str, ...]:
    """The ``index``-th tuple of ``itertools.product(domain, repeat=width)``.

    Mixed-radix decoding in base ``len(domain)``, most significant
    digit first — workers reconstruct their candidate slice from plain
    integers instead of shipping materialized cross products.
    """
    base = len(domain)
    if width == 0:
        if index != 0:
            raise ParallelExecutionError(
                f"index {index} out of range for a width-0 space"
            )
        return ()
    if base == 0 or index < 0 or index >= base**width:
        raise ParallelExecutionError(
            f"index {index} out of range for {base}^{width} candidates"
        )
    digits = []
    for _ in range(width):
        index, digit = divmod(index, base)
        digits.append(domain[digit])
    return tuple(reversed(digits))
