"""Process-pool sharded evaluation (:mod:`repro.parallel`).

The paper's alignment-algebra semantics partition cleanly into
independent shards — the ``Σ^{<=l}`` candidate space of the naive
engine, the per-binding generator runs of the planner, the row loops
of algebra selection.  This package supplies the pieces:

* :class:`~repro.parallel.sharding.ShardPlanner` /
  :class:`~repro.parallel.sharding.Shard` — deterministic,
  cache-key-stable partitioning of any ``[0, total)`` index space;
* :mod:`~repro.parallel.tasks` — picklable shard task descriptors and
  the module-level worker entry point, plus the
  :class:`~repro.parallel.tasks.ChaosPolicy` fault-injection hook;
* :class:`~repro.parallel.executor.ParallelExecutor` — the
  ``concurrent.futures`` pool driver with per-shard timeouts, crash
  recovery, retry-with-re-splitting, a sequential fallback and the
  :class:`~repro.parallel.executor.ExecutionReport` accounting;
* :mod:`~repro.parallel.generation` — the cache-aware batch helpers
  the planner and algebra layers call into.

The user-facing entry point is the ``parallel`` engine registered in
:mod:`repro.engine.strategies` (and the ``workers=`` argument of
``QueryEngine.evaluate``); this package is engine-agnostic plumbing.
"""

from repro.parallel.executor import (
    ExecutionReport,
    ParallelExecutor,
    default_worker_count,
    shutdown_pools,
)
from repro.parallel.sharding import Shard, ShardPlanner, decode_candidate
from repro.parallel.tasks import (
    ChaosPolicy,
    GenerateShardTask,
    NaiveShardTask,
    SimulateShardTask,
)

__all__ = [
    "ChaosPolicy",
    "ExecutionReport",
    "GenerateShardTask",
    "NaiveShardTask",
    "ParallelExecutor",
    "Shard",
    "ShardPlanner",
    "SimulateShardTask",
    "decode_candidate",
    "default_worker_count",
    "shutdown_pools",
]
