"""The process-pool execution layer behind the ``parallel`` engine.

A :class:`ParallelExecutor` takes a list of shard tasks
(:mod:`repro.parallel.tasks`), runs them across a
:class:`concurrent.futures.ProcessPoolExecutor`, and merges nothing —
it hands back raw per-shard results and lets the caller fold them,
because the fold differs per task kind (set union for naive shards,
positional merge for generator batches).

Robustness is the point of this module rather than an afterthought:

* **per-shard timeouts** — every submitted shard carries a deadline;
  an overdue shard is abandoned (its worker finishes in the
  background) and re-run as smaller shards;
* **retry with re-splitting** — a failed or timed-out shard is split
  in half (:meth:`~repro.parallel.sharding.Shard.split`) and both
  halves retried with a bumped ``generation``; shards keep shrinking
  until they succeed or the generation budget ``max_retries`` is
  exhausted, at which point a typed
  :class:`~repro.errors.ParallelExecutionError` subclass propagates;
* **worker-crash recovery** — a :class:`BrokenProcessPool` invalidates
  the pool, a fresh one is built, and every in-flight shard is
  resubmitted;
* **sequential fallback** — with one worker, or when the total work is
  below ``min_parallel_items``, tasks run in-process through exactly
  the same retry machinery (timeouts excepted: an in-process shard
  cannot be interrupted).

Worker pools are shared per worker-count across the process (fork
start-up is cheap but not free); fault-injected runs always get a
private pool so abandoned hung workers cannot pollute later runs.

Every run accumulates into an :class:`ExecutionReport` — shard,
retry, timeout and wall/CPU-time accounting surfaced through
``QueryEngine.stats`` and the CLI ``--stats`` flag.
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Callable, Sequence
from contextlib import nullcontext
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from time import monotonic, perf_counter
from typing import Any

from repro.errors import (
    ParallelExecutionError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.observability import NULL_TRACER, activate
from repro.parallel.sharding import ShardPlanner
from repro.parallel.tasks import ChaosPolicy, execute_task

#: Below this many total candidate items a pool round trip costs more
#: than it saves and the executor falls back to in-process execution.
DEFAULT_MIN_PARALLEL_ITEMS = 32


@dataclass
class ExecutionReport:
    """Structured accounting for one parallel evaluation.

    ``task_seconds`` sums per-shard compute time across all workers —
    the CPU-time counterpart of ``wall_seconds``, so ``task_seconds /
    wall_seconds`` approximates achieved parallelism.  ``cache_hits``
    counts shard-sized units of work served from session caches
    instead of being dispatched at all.
    """

    mode: str = "sequential"
    workers: int = 1
    shards_planned: int = 0
    shards_completed: int = 0
    retries: int = 0
    resplits: int = 0
    timeouts: int = 0
    failures: int = 0
    wall_seconds: float = 0.0
    task_seconds: float = 0.0
    cache_hits: int = 0

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of the report, stable for tests and JSON."""
        return {
            "mode": self.mode,
            "workers": self.workers,
            "shards_planned": self.shards_planned,
            "shards_completed": self.shards_completed,
            "retries": self.retries,
            "resplits": self.resplits,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "wall_seconds": self.wall_seconds,
            "task_seconds": self.task_seconds,
            "cache_hits": self.cache_hits,
        }

    def describe(self) -> str:
        """The one-line human-readable summary used by ``--stats``."""
        return (
            f"parallel mode={self.mode} workers={self.workers} "
            f"shards={self.shards_completed}/{self.shards_planned} "
            f"retries={self.retries} resplits={self.resplits} "
            f"timeouts={self.timeouts} cache_hits={self.cache_hits} "
            f"wall={self.wall_seconds:.4f}s cpu={self.task_seconds:.4f}s"
        )


# -- shared worker pools ----------------------------------------------------

_POOLS: dict[int, ProcessPoolExecutor] = {}


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers: int, pool: ProcessPoolExecutor) -> None:
    if _POOLS.get(workers) is pool:
        del _POOLS[workers]
    pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every shared worker pool (used by tests/atexit)."""
    for workers in list(_POOLS):
        _discard_pool(workers, _POOLS[workers])


def default_worker_count() -> int:
    """The CPU count of this machine (at least 1)."""
    return os.cpu_count() or 1


class ParallelExecutor:
    """Runs shard tasks with retry, re-splitting and timeouts.

    One executor accumulates one :class:`ExecutionReport` across any
    number of :meth:`run` calls — the ``parallel`` engine creates an
    executor per query evaluation so the report describes exactly that
    evaluation.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        timeout: float | None = None,
        max_retries: int = 2,
        chaos: ChaosPolicy | None = None,
        min_parallel_items: int = DEFAULT_MIN_PARALLEL_ITEMS,
        planner: ShardPlanner | None = None,
        tracer=None,
    ) -> None:
        """Configure the executor; no workers start until :meth:`run`.

        Args:
            workers: Worker-process count (default: CPU count).
            timeout: Per-shard deadline in seconds; ``None`` disables
                timeout handling.
            max_retries: Retry-generation budget per shard chain.
            chaos: Optional deterministic fault-injection policy; its
                presence forces a private worker pool.
            min_parallel_items: Total-item threshold below which the
                sequential fallback is used.
            planner: Shard planner (default: a fresh
                :class:`~repro.parallel.sharding.ShardPlanner`).
            tracer: An :class:`~repro.observability.Tracer` recording
                shard planning and execution spans; worker-side spans
                are folded back into it.  Defaults to the no-op
                :data:`~repro.observability.NULL_TRACER`.

        Raises:
            ParallelExecutionError: If ``max_retries`` is negative or
                ``workers`` is not positive.
        """
        if max_retries < 0:
            raise ParallelExecutionError("max_retries must be non-negative")
        self.workers = workers if workers is not None else default_worker_count()
        if self.workers < 1:
            raise ParallelExecutionError("worker count must be positive")
        self.timeout = timeout
        self.max_retries = max_retries
        self.chaos = chaos
        self.min_parallel_items = min_parallel_items
        self.planner = planner or ShardPlanner()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.report = ExecutionReport(workers=self.workers)

    # -- planning helpers ----------------------------------------------

    def plan(self, total: int):
        """Shard ``[0, total)`` with this executor's planner + workers."""
        with self.tracer.span(
            "shard.plan", stage="shard", total=total, workers=self.workers
        ):
            shards = self.planner.plan(total, self.workers)
        self.tracer.add("shard.shards_planned", len(shards))
        return shards

    # -- execution ------------------------------------------------------

    def run(self, tasks: Sequence[Any]) -> list[Any]:
        """Execute ``tasks``, returning raw per-shard results.

        Results are unordered and may come from re-split sub-shards;
        positional task kinds embed global indices for exactly that
        reason.  Raises a :class:`ParallelExecutionError` subclass when
        any shard chain exhausts its retry budget.
        """
        if not tasks:
            return []
        self.report.shards_planned += len(tasks)
        total_items = sum(task.shard.size for task in tasks)
        use_pool = (
            self.workers > 1 and total_items >= self.min_parallel_items
        )
        started = perf_counter()
        with self.tracer.span(
            "executor.run",
            mode="parallel" if use_pool else "sequential",
            workers=self.workers,
            tasks=len(tasks),
            items=total_items,
        ):
            try:
                if use_pool:
                    self.report.mode = "parallel"
                    return self._run_pooled(list(tasks))
                return self._run_sequential(list(tasks))
            finally:
                self.report.wall_seconds += perf_counter() - started

    # -- shared failure handling ----------------------------------------

    def _giving_up(self, task: Any, kind: str) -> ParallelExecutionError:
        detail = (
            f"shard [{task.shard.start}, {task.shard.stop}) failed after "
            f"{task.shard.generation} retry generation(s) "
            f"(budget {self.max_retries})"
        )
        if kind == "timeout":
            return ShardTimeoutError(f"{detail}: last failure was a timeout")
        if kind == "crash":
            return WorkerCrashError(
                f"{detail}: last failure was a worker-process death"
            )
        return ParallelExecutionError(f"{detail}: last failure was an error")

    def _retry_tasks(self, task: Any, kind: str) -> list[Any]:
        """Re-split a failed task into retry tasks, or raise.

        Args:
            task: The failed shard task.
            kind: The failure class — ``"failure"``, ``"timeout"`` or
                ``"crash"`` — selecting the error type when the retry
                budget is exhausted.

        Returns:
            The replacement tasks (usually the two halves of the shard
            with a bumped generation).

        Raises:
            ParallelExecutionError: When ``task`` has already used its
                ``max_retries`` generations (a typed subclass matching
                ``kind``).
        """
        self.report.failures += 1
        self.tracer.add("executor.failures")
        if kind == "timeout":
            self.report.timeouts += 1
            self.tracer.add("executor.timeouts")
        if task.shard.generation >= self.max_retries:
            raise self._giving_up(task, kind)
        children = task.shard.split(2)
        if len(children) > 1:
            self.report.resplits += 1
            self.tracer.add("executor.resplits")
        self.report.retries += 1
        self.tracer.add("executor.retries")
        return [task.narrowed(shard) for shard in children]

    # -- sequential fallback --------------------------------------------

    def _run_sequential(self, tasks: list[Any]) -> list[Any]:
        """Run every task in-process under this executor's tracer."""
        tracer = self.tracer
        results: list[Any] = []
        queue = deque(tasks)
        # Only claim the ambient-tracer slot when actually tracing:
        # activating the null tracer would silence any caller-activated
        # tracer for the duration of the run.
        scope = activate(tracer) if tracer.enabled else nullcontext()
        with scope:
            while queue:
                task = queue.popleft()
                try:
                    with tracer.span(
                        "execute.shard",
                        stage="execute",
                        kind=type(task).__name__,
                        start=task.shard.start,
                        stop=task.shard.stop,
                        generation=task.shard.generation,
                    ):
                        result, seconds, _ = execute_task(
                            task, self.chaos, in_worker=False
                        )
                except Exception:
                    queue.extend(self._retry_tasks(task, "failure"))
                    continue
                results.append(result)
                self.report.shards_completed += 1
                self.report.task_seconds += seconds
        return results

    # -- pooled execution -----------------------------------------------

    def _run_pooled(self, tasks: list[Any]) -> list[Any]:
        private = self.chaos is not None
        pool = (
            ProcessPoolExecutor(max_workers=self.workers)
            if private
            else _shared_pool(self.workers)
        )
        try:
            return self._drive_pool(pool, tasks, private)
        finally:
            if private:
                pool.shutdown(wait=False, cancel_futures=True)

    def _drive_pool(
        self,
        pool: ProcessPoolExecutor,
        tasks: list[Any],
        private: bool,
    ) -> list[Any]:
        results: list[Any] = []
        pending: dict[Future, tuple[Any, float | None]] = {}
        traced = self.tracer.enabled

        def submit(task: Any) -> None:
            nonlocal pool
            deadline = (
                monotonic() + self.timeout if self.timeout is not None else None
            )
            try:
                future = pool.submit(
                    execute_task, task, self.chaos, traced=traced
                )
            except BrokenProcessPool:
                pool = self._replace_pool(pool, private)
                future = pool.submit(
                    execute_task, task, self.chaos, traced=traced
                )
            pending[future] = (task, deadline)

        for task in tasks:
            submit(task)

        while pending:
            now = monotonic()
            deadlines = [d for _, d in pending.values() if d is not None]
            wait_for = (
                max(0.0, min(deadlines) - now) if deadlines else None
            )
            done, _ = wait(
                set(pending), timeout=wait_for, return_when=FIRST_COMPLETED
            )
            retry_queue: list[Any] = []
            broken = False
            for future in done:
                task, _deadline = pending.pop(future)
                try:
                    result, seconds, trace = future.result()
                except BrokenProcessPool:
                    broken = True
                    retry_queue.extend(self._retry_tasks(task, "crash"))
                except Exception:
                    retry_queue.extend(self._retry_tasks(task, "failure"))
                else:
                    results.append(result)
                    self.report.shards_completed += 1
                    self.report.task_seconds += seconds
                    if trace is not None:
                        pid, records, counters, gauges = trace
                        self.tracer.absorb(
                            records, counters, gauges, worker=pid
                        )
            # Scan for overdue shards: abandon their futures (a running
            # worker cannot be interrupted) and re-split the work.
            now = monotonic()
            for future in [
                f
                for f, (_, deadline) in pending.items()
                if deadline is not None and deadline <= now
            ]:
                task, _deadline = pending.pop(future)
                future.cancel()
                retry_queue.extend(self._retry_tasks(task, "timeout"))
            if broken:
                pool = self._replace_pool(pool, private)
                # Every other in-flight future died with the pool;
                # recover their tasks for resubmission.
                for future, (task, _deadline) in list(pending.items()):
                    pending.pop(future)
                    retry_queue.extend(self._retry_tasks(task, "crash"))
            for task in retry_queue:
                submit(task)
        return results

    def _replace_pool(
        self, pool: ProcessPoolExecutor, private: bool
    ) -> ProcessPoolExecutor:
        if private:
            pool.shutdown(wait=False, cancel_futures=True)
            return ProcessPoolExecutor(max_workers=self.workers)
        _discard_pool(self.workers, pool)
        return _shared_pool(self.workers)


def run_sharded(
    executor: ParallelExecutor,
    total: int,
    task_for_shard: Callable[[Any], Any],
) -> list[Any]:
    """Plan ``[0, total)`` and run one task per shard."""
    shards = executor.plan(total)
    return executor.run([task_for_shard(shard) for shard in shards])
