"""Cache-aware sharded generation and simulation batches.

The planner's generate step and the algebra's generative selection
share one shape of work: *one* generator machine, *many* ``fixed``
bindings, one independent :func:`~repro.fsa.generate.accepted_tuples`
run per binding.  This module is the single implementation both layers
call when an executor is in play:

1. bindings already answered by the session's ``generate`` cache are
   served locally (and counted as ``cache_hits`` on the execution
   report — worker processes cannot see the parent's caches, so
   hit accounting has to happen before dispatch);
2. the remaining distinct bindings are sharded across the pool as
   :class:`~repro.parallel.tasks.GenerateShardTask` batches;
3. worker results are folded back into the session cache, so the next
   query — parallel or not — reuses them.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from repro.observability import current_tracer
from repro.parallel.sharding import Shard
from repro.parallel.tasks import (
    GenerateShardTask,
    SimulateShardTask,
    fixed_items,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.session import QueryEngine
    from repro.fsa.machine import FSA
    from repro.parallel.executor import ParallelExecutor

_MISS = object()


def generated_for_fixed(
    fsa: "FSA",
    max_length: int,
    fixed_list: Sequence[Mapping[int, str]],
    *,
    session: "QueryEngine | None" = None,
    executor: "ParallelExecutor | None" = None,
) -> list[frozenset[tuple[str, ...]]]:
    """Answer sets for each ``fixed`` binding, in input order.

    Args:
        fsa: The generator machine (shared by every binding).
        max_length: Generation cap passed to ``accepted_tuples``.
        fixed_list: One ``{tape: value}`` binding per requested run.
        session: Optional :class:`~repro.engine.QueryEngine` whose
            ``generate`` cache serves repeat bindings and absorbs
            worker results.
        executor: Optional :class:`~repro.parallel.ParallelExecutor`
            that shards the unresolved bindings across workers.

    Returns:
        The per-binding answer sets, positionally aligned with
        ``fixed_list``.
    """
    tracer = executor.tracer if executor is not None else current_tracer()
    keys = [fixed_items(fixed) for fixed in fixed_list]
    values: list = [_MISS] * len(keys)
    if session is not None:
        for position, key in enumerate(keys):
            hit = session.peek_generated(fsa, max_length, key)
            if hit is not None:
                values[position] = hit
    # Distinct unresolved bindings, first-seen order.
    unique: dict[tuple, frozenset | object] = {}
    for position, key in enumerate(keys):
        if values[position] is _MISS:
            unique.setdefault(key, _MISS)
    pending = list(unique)
    hits = sum(1 for value in values if value is not _MISS)
    if hits:
        tracer.add("generate.cache_hits", hits)
    if executor is not None:
        executor.report.cache_hits += hits
    if pending:
        if executor is not None:
            shards = executor.plan(len(pending))
            # Cache-served bindings never reach the executor, so after
            # a delta the deterministic shard plan covers exactly the
            # invalidated (dirty) slice of the binding space.
            tracer.gauge("generate.dirty_shards", len(shards))
            tasks = [
                GenerateShardTask(
                    shard,
                    fsa,
                    max_length,
                    tuple(pending[shard.start : shard.stop]),
                )
                for shard in shards
            ]
            shard_results = executor.run(tasks)
            with tracer.span(
                "fold.generate",
                stage="fold",
                shards=len(shard_results),
                bindings=len(pending),
            ):
                for pairs in shard_results:
                    for position, answers in pairs:
                        unique[pending[position]] = answers
        else:
            from repro.fsa.generate import accepted_tuples

            for key in pending:
                if session is not None:
                    unique[key] = session.generated(
                        fsa, max_length, dict(key)
                    )
                else:
                    unique[key] = accepted_tuples(
                        fsa, max_length, dict(key) if key else None
                    )
        if session is not None and executor is not None:
            for key, answers in unique.items():
                session.store_generated(fsa, max_length, key, answers)
    return [
        values[position] if values[position] is not _MISS else unique[key]
        for position, key in enumerate(keys)
    ]


def filter_accepted(
    fsa: "FSA",
    rows: Sequence[tuple[str, ...]],
    *,
    executor: "ParallelExecutor | None" = None,
    kernel_mode: str = "auto",
) -> frozenset[tuple[str, ...]]:
    """The rows accepted by ``fsa`` — sharded when an executor is given.

    Args:
        fsa: The acceptance machine to run on each row.
        rows: The candidate rows (tuples of strings, one per tape).
        executor: Optional :class:`~repro.parallel.ParallelExecutor`;
            when given the acceptance checks are sharded as
            :class:`~repro.parallel.tasks.SimulateShardTask` batches.
        kernel_mode: Acceptance-kernel mode (``"v1"``, ``"v2"``,
            ``"v3"`` or ``"auto"``), forwarded to the kernel
            dispatcher both in-process and inside shard workers.

    Returns:
        The subset of ``rows`` the machine accepts.
    """
    rows = list(rows)
    if executor is None:
        from repro.fsa.simulate import accepts_batch

        # One compiled kernel, one validation pass, shared scratch
        # buffers for the whole row batch (repro.fsa.kernel) — and
        # one column-wise table sweep under the v2 scan kernel.
        verdicts = accepts_batch(fsa, rows, kernel=kernel_mode)
        return frozenset(
            row for row, verdict in zip(rows, verdicts) if verdict
        )
    shards = executor.plan(len(rows))
    tasks = [
        SimulateShardTask(
            shard,
            fsa,
            tuple(rows[shard.start : shard.stop]),
            kernel_mode,
        )
        for shard in shards
    ]
    shard_results = executor.run(tasks)
    kept = set()
    with executor.tracer.span(
        "fold.filter", stage="fold", shards=len(shard_results), rows=len(rows)
    ):
        for pairs in shard_results:
            for position, verdict in pairs:
                if verdict:
                    kept.add(rows[position])
    return frozenset(kept)


__all__ = ["generated_for_fixed", "filter_accepted", "Shard"]
