"""The relation-storage protocol, per-column statistics and the default backend.

The paper treats a database as a total map from relation symbols to
finite subsets of ``(Σ*)^a`` (Section 2); *how* those finite sets are
held is an implementation degree of freedom the calculus never
constrains.  This module pins that degree of freedom down as a small
protocol — :class:`RelationStorage` — so the same engines can run over
a frozenset in memory (:class:`InMemoryStorage`) or over an on-disk
positional n-gram index (:class:`repro.storage.ngram.NGramIndexStorage`)
without changing a line of evaluation code.

The protocol also standardizes *statistics*: every backend reports a
:class:`RelationStats` with per-column distinct counts and length
histograms, which the cost model consumes instead of raw cardinalities.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ArityError


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column of a stored relation.

    All fields are plain integers or tuples, so the object is hashable
    and can ride inside cost-model signatures and plan cache keys.
    """

    #: Number of distinct strings in the column.
    distinct: int
    #: Total character count over all (non-distinct) column values.
    total_chars: int
    #: Shortest string length in the column (0 for an empty relation).
    min_length: int
    #: Longest string length in the column (0 for an empty relation).
    max_length: int
    #: Sorted ``(length, count)`` pairs over the column's values.
    length_histogram: tuple[tuple[int, int], ...]
    #: Stored size of the column in backend units (grammar rules for
    #: SLP-compressed columns); ``-1`` means "same as ``total_chars``"
    #: — the uncompressed default, so plain backends and old artifacts
    #: keep their statistics (and plan-cache signatures) unchanged.
    stored_chars: int = -1

    @property
    def mean_length(self) -> float:
        """The average value length (0.0 for an empty column)."""
        total = sum(count for _, count in self.length_histogram)
        return self.total_chars / total if total else 0.0

    @property
    def effective_stored_chars(self) -> int:
        """``stored_chars`` with the ``-1`` default resolved."""
        return self.stored_chars if self.stored_chars >= 0 else self.total_chars


@dataclass(frozen=True)
class RelationStats:
    """Statistics for a whole stored relation: rows plus per-column stats."""

    #: Number of tuples in the relation.
    rows: int
    #: Number of columns per tuple.
    arity: int
    #: One :class:`ColumnStats` per column, in column order.
    columns: tuple[ColumnStats, ...]


def compute_stats(
    rows: Iterable[tuple[str, ...]], arity: int
) -> RelationStats:
    """Compute :class:`RelationStats` by one pass over ``rows``.

    Args:
        rows: The relation's tuples.
        arity: The relation's column count.

    Returns:
        The populated statistics value.
    """
    distinct: list[set[str]] = [set() for _ in range(arity)]
    histograms: list[dict[int, int]] = [{} for _ in range(arity)]
    totals = [0] * arity
    count = 0
    for row in rows:
        count += 1
        for column, value in enumerate(row):
            distinct[column].add(value)
            length = len(value)
            totals[column] += length
            histogram = histograms[column]
            histogram[length] = histogram.get(length, 0) + 1
    columns = tuple(
        ColumnStats(
            distinct=len(distinct[column]),
            total_chars=totals[column],
            min_length=min(histograms[column], default=0),
            max_length=max(histograms[column], default=0),
            length_histogram=tuple(sorted(histograms[column].items())),
        )
        for column in range(arity)
    )
    return RelationStats(rows=count, arity=arity, columns=columns)


@runtime_checkable
class RelationStorage(Protocol):
    """What every relation backend must provide.

    Backends are immutable once constructed; engines may cache their
    observations freely.  ``arity`` and ``tuples`` are properties,
    everything else is a method.  Index-backed storages may additionally
    offer :meth:`candidates`-style prefilter probes — those are optional
    and engines must degrade gracefully when they are absent (see
    :func:`repro.storage.probe_candidates`).

    Mutation is a *derivation*, not an update: backends may offer an
    optional ``apply_delta(inserts, deletes)`` returning a **new**
    storage holding ``(tuples - deletes) | inserts``, leaving the
    receiver untouched.  :meth:`repro.core.database.Database.apply`
    uses the hook when present and falls back to rebuilding an
    :class:`InMemoryStorage` otherwise.
    """

    @property
    def arity(self) -> int:
        """The relation's column count."""
        ...

    @property
    def tuples(self) -> frozenset[tuple[str, ...]]:
        """The relation as a frozenset (the historical representation)."""
        ...

    def scan(self) -> Iterator[tuple[str, ...]]:
        """Iterate over every tuple, in backend-chosen order."""
        ...

    def contains(self, row: tuple[str, ...]) -> bool:
        """Membership test ``row ∈ R``."""
        ...

    def column(self, index: int) -> tuple[str, ...]:
        """The sorted distinct values of column ``index``."""
        ...

    def size(self) -> int:
        """The number of tuples."""
        ...

    def stats(self) -> RelationStats:
        """Per-column statistics for the cost model."""
        ...


def is_storage(value: object) -> bool:
    """Whether ``value`` duck-types as a :class:`RelationStorage`.

    Used by :class:`repro.core.database.Database` to tell adopted
    (pre-validated) storages apart from raw tuple iterables; checked
    structurally so third-party backends need not inherit anything.
    """
    return all(
        hasattr(value, attribute)
        for attribute in ("scan", "contains", "column", "size", "stats")
    )


class InMemoryStorage:
    """The default backend: a frozenset of tuples, everything eager.

    Matches the representation every prior release used internally, so
    it is also the reference implementation the differential tests hold
    other backends to.

    >>> store = InMemoryStorage([("ab", "b"), ("a", "b")])
    >>> store.size(), store.arity, store.column(1)
    (2, 2, ('b',))
    """

    __slots__ = ("_tuples", "_arity", "_stats", "_columns")

    def __init__(
        self,
        tuples: Iterable[tuple[str, ...]],
        arity: int | None = None,
    ) -> None:
        frozen = frozenset(tuple(row) for row in tuples)
        arities = {len(row) for row in frozen}
        if len(arities) > 1:
            raise ArityError(
                f"storage mixes tuple arities {sorted(arities)}"
            )
        derived = arities.pop() if arities else None
        if derived is not None and arity is not None and derived != arity:
            raise ArityError(
                f"declared arity {arity} does not match tuples of arity {derived}"
            )
        self._tuples = frozen
        self._arity = derived if derived is not None else (arity or 0)
        self._stats: RelationStats | None = None
        self._columns: dict[int, tuple[str, ...]] = {}

    @property
    def arity(self) -> int:
        """The relation's column count (declared, for empty relations)."""
        return self._arity

    @property
    def tuples(self) -> frozenset[tuple[str, ...]]:
        """The underlying frozenset itself — no copy."""
        return self._tuples

    def scan(self) -> Iterator[tuple[str, ...]]:
        """Iterate the tuples (set order; callers must not rely on it)."""
        return iter(self._tuples)

    def contains(self, row: tuple[str, ...]) -> bool:
        """O(1) membership via the frozenset."""
        return row in self._tuples

    def column(self, index: int) -> tuple[str, ...]:
        """Sorted distinct values of column ``index``, cached."""
        if index not in self._columns:
            self._columns[index] = tuple(
                sorted({row[index] for row in self._tuples})
            )
        return self._columns[index]

    def size(self) -> int:
        """The tuple count."""
        return len(self._tuples)

    def stats(self) -> RelationStats:
        """Statistics computed on first request and cached."""
        if self._stats is None:
            self._stats = compute_stats(self._tuples, self._arity)
        return self._stats

    def apply_delta(
        self,
        inserts: frozenset[tuple[str, ...]],
        deletes: frozenset[tuple[str, ...]],
    ) -> "InMemoryStorage":
        """Derive a new storage with ``deletes`` removed, ``inserts`` added.

        Runs in O(|Δ|) set operations; the receiver is untouched.

        Args:
            inserts: Rows to add (applied after the deletes).
            deletes: Rows to remove.

        Returns:
            The derived storage, or ``self`` when the delta is a no-op
            on this relation's contents.
        """
        updated = (self._tuples - deletes) | inserts
        if updated == self._tuples:
            return self
        return InMemoryStorage(updated, arity=self._arity or None)

    def __reduce__(self):
        return (InMemoryStorage, (self._tuples, self._arity))

    def __repr__(self) -> str:
        return f"InMemoryStorage({len(self._tuples)} rows, arity {self._arity})"


#: The storage every unknown relation symbol denotes: empty, arity 0.
EMPTY_STORAGE = InMemoryStorage(frozenset())


class Relation:
    """A read-only view of one named relation behind a storage.

    This is what :meth:`repro.core.database.Database.relation` returns.
    It behaves like the frozenset it used to be — iterable, sized,
    supports ``in``, compares and hashes equal to the corresponding
    frozenset — while exposing the storage protocol's extras
    (:meth:`column`, :meth:`stats`, :attr:`storage`).

    >>> view = Relation("R", InMemoryStorage([("a",), ("b",)]))
    >>> len(view), ("a",) in view, view == {("a",), ("b",)}
    (2, True, True)
    """

    __slots__ = ("_name", "_storage")

    def __init__(self, name: str, storage: RelationStorage) -> None:
        self._name = name
        self._storage = storage

    @property
    def name(self) -> str:
        """The relation symbol this view is bound to."""
        return self._name

    @property
    def storage(self) -> RelationStorage:
        """The backend holding the tuples."""
        return self._storage

    @property
    def arity(self) -> int:
        """The relation's column count."""
        return self._storage.arity

    @property
    def tuples(self) -> frozenset[tuple[str, ...]]:
        """The relation as a plain frozenset (the back-compat surface)."""
        return self._storage.tuples

    def column(self, index: int) -> tuple[str, ...]:
        """The sorted distinct values of column ``index``."""
        return self._storage.column(index)

    def stats(self) -> RelationStats:
        """The backend's per-column statistics."""
        return self._storage.stats()

    def __iter__(self) -> Iterator[tuple[str, ...]]:
        return self._storage.scan()

    def __len__(self) -> int:
        return self._storage.size()

    def __contains__(self, row: object) -> bool:
        return isinstance(row, tuple) and self._storage.contains(row)

    def __bool__(self) -> bool:
        return self._storage.size() > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            return self.tuples == other.tuples
        if isinstance(other, (set, frozenset)):
            return self.tuples == other
        return NotImplemented

    def __hash__(self) -> int:
        # Interchangeable with the frozenset it stands for, so views
        # can live in sets / dict keys alongside raw frozensets.
        return hash(self.tuples)

    def __repr__(self) -> str:
        return (
            f"Relation({self._name!r}, {self._storage.size()} rows, "
            f"arity {self._storage.arity})"
        )
