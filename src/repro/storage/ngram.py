"""The positional n-gram index backend.

Every column of the relation gets an inverted index mapping each
``n``-gram to the sorted ``(row id, position)`` pairs where it occurs —
the simstring ``ngramdb_writer`` shape, specialized to one gram size.
The index supports one query: :meth:`NGramIndexStorage.candidates`
takes a required *factor* (a substring every matching column value must
contain, derived by the planner from a selection machine's transition
graph) and returns the row ids that could satisfy it.  Positions make
the probe precise for factors longer than ``n``: the factor's
constituent grams must occur at *consecutive* positions, not merely
somewhere in the value.

The index lives either fully in memory (:meth:`build`) or behind a
memory-mapped on-disk artifact (:meth:`open` / :meth:`ensure`) that
builds once and loads instantly across sessions and parallel workers;
artifact-backed instances pickle as just their path, so shipping a
database to a worker process costs bytes, not tuple sets.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import ArityError, ArtifactError
from repro.storage import artifact as artifact_format
from repro.storage.base import RelationStats, compute_stats

#: The default gram size; 3 balances directory size against probe
#: selectivity on small (e.g. DNA) alphabets.
DEFAULT_N = 3


def _canonical(tuples: Iterable[tuple[str, ...]]) -> tuple[tuple[str, ...], ...]:
    rows = tuple(sorted({tuple(row) for row in tuples}))
    arities = {len(row) for row in rows}
    if len(arities) > 1:
        raise ArityError(f"storage mixes tuple arities {sorted(arities)}")
    return rows


class NGramIndexStorage:
    """A relation stored with positional n-gram indexes per column.

    Construct via :meth:`build` (in memory), :meth:`open` (an existing
    artifact) or :meth:`ensure` (open-if-current, else build + write).

    >>> store = NGramIndexStorage.build([("gcgc",), ("aaaa",)], n=3)
    >>> sorted(store.candidates(0, "gcgc"))
    [1]
    >>> next(store.rows_for([1]))
    ('gcgc',)
    """

    def __init__(
        self,
        rows: tuple[tuple[str, ...], ...],
        n: int,
        arity: int,
        reader: "artifact_format.ArtifactReader | None" = None,
        stats: RelationStats | None = None,
        postings: list[dict[str, tuple[tuple[int, int], ...]]] | None = None,
        *,
        extra_rows: tuple[tuple[str, ...], ...] = (),
        extra_postings: (
            list[dict[str, tuple[tuple[int, int], ...]]] | None
        ) = None,
        dead: frozenset[int] = frozenset(),
        base_sha: bytes | None = None,
        row_ids: dict[tuple[str, ...], int] | None = None,
    ) -> None:
        self._rows = rows
        self._n = n
        self._arity = arity
        self._reader = reader
        self._stats = stats
        self._postings = postings
        # -- delta-derivation state (empty on freshly built storages):
        # appended rows get ids after the base block, deleted ids are
        # tombstoned, and appended grams live in a posting layer merged
        # at probe time (see apply_delta).
        self._extra_rows = extra_rows
        self._extra_postings = extra_postings
        self._dead = dead
        self._base_sha = base_sha
        self._row_ids = row_ids
        self._verified = False
        self._row_cache: list[tuple[str, ...] | None] | None = None
        self._tuples: frozenset[tuple[str, ...]] | None = None
        self._columns: dict[int, tuple[str, ...]] = {}
        self._gram_cache: dict[tuple[int, str], tuple[tuple[int, int], ...]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        tuples: Iterable[tuple[str, ...]],
        n: int = DEFAULT_N,
        arity: int | None = None,
    ) -> "NGramIndexStorage":
        """Build the index in memory from an iterable of tuples.

        Args:
            tuples: The relation's rows (deduplicated, sorted
                canonically so row ids are deterministic).
            n: The gram size.
            arity: Declared arity for an empty relation.

        Returns:
            The populated storage; records an ``index.build`` counter.
        """
        from repro.observability import current_tracer

        rows = _canonical(tuples)
        derived = len(rows[0]) if rows else (arity or 0)
        if rows and arity is not None and derived != arity:
            raise ArityError(
                f"declared arity {arity} does not match tuples of "
                f"arity {derived}"
            )
        tracer = current_tracer()
        with tracer.span("index.build", stage="index", rows=len(rows)):
            postings = [
                {
                    gram: tuple(entries)
                    for gram, entries in artifact_format._column_postings(
                        rows, column, n
                    ).items()
                }
                for column in range(derived)
            ]
        tracer.add("index.build")
        return cls(
            rows,
            n,
            derived,
            stats=compute_stats(rows, derived),
            postings=postings,
        )

    @classmethod
    def open(cls, path: "str | Path") -> "NGramIndexStorage":
        """Memory-map an existing artifact (validating its checksum).

        Args:
            path: The artifact file written by :meth:`write`.

        Returns:
            A lazily-decoding storage over the map.

        Raises:
            ArtifactError: If the file is absent, corrupt or has an
                incompatible version.
        """
        reader = artifact_format.ArtifactReader(path)
        return cls(
            (),
            reader.n,
            reader.arity,
            reader=reader,
            stats=reader.stats,
        )

    @classmethod
    def ensure(
        cls,
        path: "str | Path",
        tuples: Iterable[tuple[str, ...]],
        n: int = DEFAULT_N,
        arity: int | None = None,
    ) -> "NGramIndexStorage":
        """Open ``path`` if it already indexes exactly these tuples, else rebuild.

        The check compares content fingerprints (rows + gram size), so
        a stale or corrupt artifact is silently replaced; the build
        therefore happens once per (content, n) and every later session
        or worker just maps the file.

        Args:
            path: The artifact location.
            tuples: The relation's rows.
            n: The gram size.
            arity: Declared arity for an empty relation.

        Returns:
            An artifact-backed storage.
        """
        rows = _canonical(tuples)
        fingerprint = artifact_format.content_fingerprint(rows, n)
        try:
            opened = cls.open(path)
            if opened._reader is not None and (
                opened._reader.content_sha == fingerprint
            ):
                return opened
            opened._reader.close()
        except ArtifactError:
            pass
        built = cls.build(rows, n=n, arity=arity)
        built.write(path)
        return cls.open(path)

    def write(self, path: "str | Path") -> None:
        """Serialize this (in-memory) index to an artifact file.

        Args:
            path: The destination; written atomically.
        """
        rows = self._canonical_live()
        data = artifact_format.pack(rows, self._n, self.stats())
        artifact_format.write_artifact(path, data)

    # -- the storage protocol -------------------------------------------

    @property
    def n(self) -> int:
        """The gram size the index was built with."""
        return self._n

    @property
    def arity(self) -> int:
        """The relation's column count."""
        return self._arity

    @property
    def path(self) -> "Path | None":
        """The backing artifact path (``None`` for in-memory builds)."""
        return self._reader.path if self._reader is not None else None

    @property
    def tuples(self) -> frozenset[tuple[str, ...]]:
        """The relation as a frozenset (decoded once, then cached)."""
        if self._tuples is None:
            self._tuples = frozenset(self._live_rows())
        return self._tuples

    def scan(self) -> Iterator[tuple[str, ...]]:
        """Iterate tuples in row-id (canonical sorted, then append) order."""
        return self._live_rows()

    def contains(self, row: tuple[str, ...]) -> bool:
        """Membership via the cached frozenset."""
        return row in self.tuples

    def column(self, index: int) -> tuple[str, ...]:
        """Sorted distinct values of column ``index``, cached."""
        if index not in self._columns:
            self._columns[index] = tuple(
                sorted({row[index] for row in self._live_rows()})
            )
        return self._columns[index]

    def size(self) -> int:
        """The tuple count (from the header for artifact-backed stores)."""
        if self._mutated:
            return (
                self._base_count() + len(self._extra_rows) - len(self._dead)
            )
        if self._reader is not None:
            return self._reader.row_count
        return len(self._rows)

    def stats(self) -> RelationStats:
        """Statistics — precomputed at build time, stored in the artifact."""
        if self._stats is None:
            self._stats = compute_stats(self._live_rows(), self._arity)
        return self._stats

    # -- index probes ---------------------------------------------------

    def candidates(self, column: int, factor: str) -> frozenset[int] | None:
        """Row ids whose ``column`` value *may* contain ``factor``.

        Sound, not complete in reverse: every row whose value contains
        the factor is returned; rows returned need not contain it only
        when ``factor`` is shorter than the gram size, in which case
        ``None`` signals "cannot prefilter on this factor".

        Args:
            column: The column index to probe.
            factor: The required substring.

        Returns:
            The candidate row-id set, or ``None`` when the factor is
            too short to probe.  Records an ``index.probe`` counter.
        """
        from repro.observability import current_tracer

        if len(factor) < self._n:
            return None
        current_tracer().add("index.probe")
        grams = [
            factor[start : start + self._n]
            for start in range(len(factor) - self._n + 1)
        ]
        survivors: dict[int, set[int]] = {}
        for row_id, position in self._gram_postings(column, grams[0]):
            survivors.setdefault(row_id, set()).add(position)
        for offset, gram in enumerate(grams[1:], start=1):
            if not survivors:
                break
            positions: dict[int, set[int]] = {}
            for row_id, position in self._gram_postings(column, gram):
                if row_id in survivors:
                    positions.setdefault(row_id, set()).add(position)
            survivors = {
                row_id: kept
                for row_id, starts in survivors.items()
                if (
                    kept := {
                        start
                        for start in starts
                        if start + offset in positions.get(row_id, ())
                    }
                )
            }
        if self._dead:
            return frozenset(survivors) - self._dead
        return frozenset(survivors)

    def rows_for(self, row_ids: Iterable[int]) -> Iterator[tuple[str, ...]]:
        """Decode the tuples with the given row ids, in sorted id order.

        Args:
            row_ids: Candidate ids from :meth:`candidates`.

        Yields:
            The corresponding tuples.
        """
        for row_id in sorted(set(row_ids)):
            yield self._row(row_id)

    # -- internals ------------------------------------------------------

    @property
    def _mutated(self) -> bool:
        return bool(self._extra_rows) or bool(self._dead)

    def _base_count(self) -> int:
        if self._rows or self._reader is None:
            return len(self._rows)
        return self._reader.row_count

    def _live_rows(self) -> Iterator[tuple[str, ...]]:
        """Iterate live tuples: base (minus tombstones), then appends."""
        if not self._mutated:
            yield from self._all_rows()
            return
        base = self._base_count()
        dead = self._dead
        for row_id, row in enumerate(self._all_rows()):
            if row_id not in dead:
                yield row
        for offset, row in enumerate(self._extra_rows):
            if base + offset not in dead:
                yield row

    def _canonical_live(self) -> tuple[tuple[str, ...], ...]:
        if not self._mutated:
            return self._all_rows()
        return tuple(sorted(self._live_rows()))

    def _verify_artifact(self) -> None:
        """Refuse to serve reader postings for a mutated, stale artifact.

        A mutated storage derived its base postings from the artifact
        content fingerprinted at derivation time; if the file has since
        been replaced (or removed), fall back to postings rebuilt from
        the decoded in-memory base rows so a probe can never reflect
        rows this version does not hold.
        """
        if self._verified or self._reader is None:
            return
        self._verified = True
        try:
            on_disk = artifact_format.read_content_sha(self._reader.path)
            stale = on_disk != self._base_sha
        except ArtifactError:
            stale = True
        if not stale:
            return
        from repro.observability import current_tracer

        current_tracer().add("index.stale_fallback")
        self._gram_cache.clear()
        self._postings = [
            {
                gram: tuple(entries)
                for gram, entries in artifact_format._column_postings(
                    self._rows, column, self._n
                ).items()
            }
            for column in range(self._arity)
        ]

    def _gram_postings(
        self, column: int, gram: str
    ) -> tuple[tuple[int, int], ...]:
        base = self._base_gram_postings(column, gram)
        if self._extra_postings is not None:
            extra = self._extra_postings[column].get(gram, ())
            if extra:
                return base + extra
        return base

    def _base_gram_postings(
        self, column: int, gram: str
    ) -> tuple[tuple[int, int], ...]:
        if self._mutated and self._postings is None:
            self._verify_artifact()
        if self._postings is not None:
            return self._postings[column].get(gram, ())
        key = (column, gram)
        if key not in self._gram_cache:
            self._gram_cache[key] = self._reader.postings(column, gram)
        return self._gram_cache[key]

    def _row(self, row_id: int) -> tuple[str, ...]:
        base = self._base_count()
        if row_id >= base:
            return self._extra_rows[row_id - base]
        if self._reader is None or self._rows:
            return self._rows[row_id]
        if self._row_cache is None:
            self._row_cache = [None] * self._reader.row_count
        cached = self._row_cache[row_id]
        if cached is None:
            cached = self._reader.row(row_id)
            self._row_cache[row_id] = cached
        return cached

    def _all_rows(self) -> tuple[tuple[str, ...], ...]:
        if self._reader is not None and not self._rows:
            self._rows = tuple(
                self._reader.row(row_id)
                for row_id in range(self._reader.row_count)
            )
        return self._rows

    def _shared_row_ids(self) -> dict[tuple[str, ...], int]:
        """The lineage-shared ``row -> id`` map, built on first mutation.

        The dict is shared with derived storages (children extend it),
        so a hit must always be validated against *this* instance's
        actual rows before being trusted — sibling derivations may have
        claimed the same appended ids for different rows.
        """
        if self._row_ids is None:
            mapping = {
                row: row_id for row_id, row in enumerate(self._all_rows())
            }
            base = self._base_count()
            for offset, row in enumerate(self._extra_rows):
                mapping[row] = base + offset
            self._row_ids = mapping
        return self._row_ids

    def _resolve_id(
        self,
        row_ids: dict[tuple[str, ...], int],
        row: tuple[str, ...],
        base: int,
        extra_rows: list[tuple[str, ...]],
    ) -> int | None:
        mapped = row_ids.get(row)
        if mapped is not None:
            if mapped < base:
                if self._rows[mapped] == row:
                    return mapped
            elif (
                mapped - base < len(extra_rows)
                and extra_rows[mapped - base] == row
            ):
                return mapped
        for offset, extra in enumerate(extra_rows):
            if extra == row:
                return base + offset
        return None

    def apply_delta(
        self,
        inserts: frozenset[tuple[str, ...]],
        deletes: frozenset[tuple[str, ...]],
    ) -> "NGramIndexStorage":
        """Derive a new storage with the delta applied, indexes maintained.

        Postings are maintained incrementally in memory: deletes
        tombstone row ids (filtered out of probe results), inserts
        append rows after the base id block and layer their grams into
        an extra posting table merged at probe time — O(|Δ|·L) work,
        never a rebuild.  On-disk artifacts are **not** rewritten; the
        derived storage remembers the content fingerprint its base
        postings came from and falls back to live in-memory postings
        if the file no longer matches (see :meth:`_verify_artifact`).

        Args:
            inserts: Rows to add (applied after the deletes).
            deletes: Rows to remove.

        Returns:
            The derived storage, or ``self`` for a no-op delta.

        Raises:
            ArityError: If an inserted row does not match the arity.
        """
        from repro.observability import current_tracer

        inserts = frozenset(tuple(row) for row in inserts)
        deletes = frozenset(tuple(row) for row in deletes) - inserts
        if not inserts and not deletes:
            return self
        if self._arity == 0 and self.size() == 0:
            if not inserts:
                return self
            return NGramIndexStorage.build(inserts, n=self._n)
        mismatched = {len(row) for row in inserts} - {self._arity}
        if mismatched:
            raise ArityError(
                f"delta inserts of arity {sorted(mismatched)} do not match "
                f"storage arity {self._arity}"
            )
        tracer = current_tracer()
        with tracer.span(
            "index.delta",
            stage="index",
            inserts=len(inserts),
            deletes=len(deletes),
        ):
            base_rows = self._all_rows()
            base = len(base_rows)
            row_ids = self._shared_row_ids()
            dead = set(self._dead)
            extra_rows = list(self._extra_rows)
            if self._extra_postings is not None:
                extra_postings = [
                    dict(column) for column in self._extra_postings
                ]
            else:
                extra_postings = [{} for _ in range(self._arity)]
            changed = False
            for row in sorted(deletes):
                row_id = self._resolve_id(row_ids, row, base, extra_rows)
                if row_id is not None and row_id not in dead:
                    dead.add(row_id)
                    changed = True
            for row in sorted(inserts):
                row_id = self._resolve_id(row_ids, row, base, extra_rows)
                if row_id is not None:
                    if row_id in dead:
                        dead.discard(row_id)
                        changed = True
                    continue
                row_id = base + len(extra_rows)
                extra_rows.append(row)
                row_ids[row] = row_id
                for column, value in enumerate(row):
                    for position in range(len(value) - self._n + 1):
                        gram = value[position : position + self._n]
                        bucket = extra_postings[column].get(gram, ())
                        extra_postings[column][gram] = bucket + (
                            (row_id, position),
                        )
                changed = True
            if not changed:
                return self
        tracer.add("index.delta")
        base_sha = self._base_sha
        if base_sha is None and self._reader is not None:
            base_sha = self._reader.content_sha
        return NGramIndexStorage(
            base_rows,
            self._n,
            self._arity,
            reader=self._reader,
            stats=None,
            postings=self._postings,
            extra_rows=tuple(extra_rows),
            extra_postings=extra_postings,
            dead=frozenset(dead),
            base_sha=base_sha,
            row_ids=row_ids,
        )

    def __reduce__(self):
        if self._mutated:
            return (_rebuild, (self._canonical_live(), self._n, self._arity))
        if self._reader is not None:
            return (NGramIndexStorage.open, (str(self._reader.path),))
        return (_rebuild, (self._rows, self._n, self._arity))

    def __repr__(self) -> str:
        backing = (
            f"artifact={self._reader.path}" if self._reader else "in-memory"
        )
        if self._mutated:
            backing += (
                f", +{len(self._extra_rows)} appended, "
                f"{len(self._dead)} tombstoned"
            )
        return (
            f"NGramIndexStorage({self.size()} rows, arity {self._arity}, "
            f"n={self._n}, {backing})"
        )


def _rebuild(
    rows: tuple[tuple[str, ...], ...], n: int, arity: int
) -> NGramIndexStorage:
    """Unpickle helper: rebuild an in-memory index from its rows."""
    return NGramIndexStorage.build(rows, n=n, arity=arity or None)
