"""The on-disk n-gram index artifact: struct-packed, mmap'd, versioned.

An artifact is a single immutable file holding one relation plus its
positional n-gram indexes.  It is written once (`pack` + `write_artifact`)
and then memory-mapped read-only by any number of sessions or worker
processes (`ArtifactReader`) — the OS page cache makes concurrent opens
effectively free, which is how parallel workers share one index without
pickling tuple sets.

Layout (all integers little-endian)::

    header   <8s H H H H I Q 20s 20s>
             magic  version  n  arity  reserved  row_count
             payload_len  payload_sha1  content_sha1
    payload  stats | cell offsets | cell blob | gram directories | postings

* **stats** — per column: ``<I Q I I I>`` (distinct, total_chars,
  min_len, max_len, histogram entries) then ``<I I>`` pairs.
* **cell offsets** — ``row_count·arity + 1`` ``uint32`` byte offsets
  into the cell blob; cell ``i`` is ``blob[o[i]:o[i+1]]`` (UTF-8).
* **gram directories** — per column: ``<I>`` gram count, then per gram
  (sorted): ``<H>`` byte length, the UTF-8 gram, ``<I>`` posting
  count, ``<Q>`` payload-relative posting offset.
* **postings** — ``<I H>`` (row id, character position) pairs, sorted
  by row id then position.

``payload_sha1`` detects corruption at open time; ``content_sha1``
fingerprints the (rows, n) content so ``NGramIndexStorage.ensure`` can
tell whether an existing artifact is still current without rebuilding.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
from pathlib import Path

from repro.errors import ArtifactError
from repro.storage.base import ColumnStats, RelationStats

#: The artifact file magic — first 8 bytes of every valid artifact.
MAGIC = b"RPRNGIDX"

#: The current artifact format version; bump on any layout change.
VERSION = 1

_HEADER = struct.Struct("<8sHHHHIQ20s20s")
_STATS_HEAD = struct.Struct("<IQIII")
_PAIR = struct.Struct("<II")
_CELL_SPAN = struct.Struct("<II")
_DIR_COUNT = struct.Struct("<I")
_GRAM_HEAD = struct.Struct("<H")
_GRAM_TAIL = struct.Struct("<IQ")
_POSTING = struct.Struct("<IH")

#: Longest representable cell (positions are uint16 in postings).
MAX_CELL_LENGTH = 0xFFFF


def content_fingerprint(rows: tuple[tuple[str, ...], ...], n: int) -> bytes:
    """The 20-byte SHA-1 fingerprint of canonical ``(rows, n)`` content.

    Args:
        rows: The relation's tuples in canonical (sorted) order.
        n: The gram size the index was built with.

    Returns:
        The digest ``ensure`` compares against a stored artifact's.
    """
    digest = hashlib.sha1(n.to_bytes(4, "little"))
    for row in rows:
        for cell in row:
            digest.update(cell.encode("utf-8"))
            digest.update(b"\x1f")
        digest.update(b"\x1e")
    return digest.digest()


def _column_postings(
    rows: tuple[tuple[str, ...], ...], column: int, n: int
) -> dict[str, list[tuple[int, int]]]:
    postings: dict[str, list[tuple[int, int]]] = {}
    for row_id, row in enumerate(rows):
        value = row[column]
        for position in range(len(value) - n + 1):
            gram = value[position : position + n]
            postings.setdefault(gram, []).append((row_id, position))
    return postings


def pack(
    rows: tuple[tuple[str, ...], ...],
    n: int,
    stats: RelationStats,
) -> bytes:
    """Serialize a relation plus its indexes into artifact bytes.

    Args:
        rows: The tuples in canonical (sorted) order; all one arity.
        n: The gram size.
        stats: Precomputed statistics for the rows.

    Returns:
        The complete artifact file content.

    Raises:
        ArtifactError: If a cell is longer than :data:`MAX_CELL_LENGTH`.
    """
    arity = stats.arity
    # -- stats section
    stats_parts: list[bytes] = []
    for column_stats in stats.columns:
        stats_parts.append(
            _STATS_HEAD.pack(
                column_stats.distinct,
                column_stats.total_chars,
                column_stats.min_length,
                column_stats.max_length,
                len(column_stats.length_histogram),
            )
        )
        for length, count in column_stats.length_histogram:
            stats_parts.append(_PAIR.pack(length, count))
    stats_bytes = b"".join(stats_parts)
    # -- cell offsets + blob
    encoded: list[bytes] = []
    offsets = [0]
    for row in rows:
        for cell in row:
            if len(cell) > MAX_CELL_LENGTH:
                raise ArtifactError(
                    f"cell of length {len(cell)} exceeds the artifact "
                    f"limit of {MAX_CELL_LENGTH}"
                )
            data = cell.encode("utf-8")
            encoded.append(data)
            offsets.append(offsets[-1] + len(data))
    offsets_bytes = struct.pack(f"<{len(offsets)}I", *offsets)
    blob = b"".join(encoded)
    # -- gram directories + postings (two-pass: sizes before offsets)
    per_column = [
        sorted(_column_postings(rows, column, n).items())
        for column in range(arity)
    ]
    directory_size = sum(
        _DIR_COUNT.size
        + sum(
            _GRAM_HEAD.size + len(gram.encode("utf-8")) + _GRAM_TAIL.size
            for gram, _ in column
        )
        for column in per_column
    )
    postings_base = (
        len(stats_bytes) + len(offsets_bytes) + len(blob) + directory_size
    )
    directory_parts: list[bytes] = []
    posting_parts: list[bytes] = []
    cursor = postings_base
    for column in per_column:
        directory_parts.append(_DIR_COUNT.pack(len(column)))
        for gram, entries in column:
            gram_bytes = gram.encode("utf-8")
            directory_parts.append(_GRAM_HEAD.pack(len(gram_bytes)))
            directory_parts.append(gram_bytes)
            directory_parts.append(_GRAM_TAIL.pack(len(entries), cursor))
            for row_id, position in entries:
                posting_parts.append(_POSTING.pack(row_id, position))
            cursor += len(entries) * _POSTING.size
    payload = b"".join(
        [stats_bytes, offsets_bytes, blob, *directory_parts, *posting_parts]
    )
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        n,
        arity,
        0,
        len(rows),
        len(payload),
        hashlib.sha1(payload).digest(),
        content_fingerprint(rows, n),
    )
    return header + payload


def read_content_sha(path: "str | os.PathLike[str]") -> bytes:
    """Read the content fingerprint from an artifact's header, fresh.

    Unlike :class:`ArtifactReader` this re-reads the file on every
    call — it is the staleness probe :class:`~repro.storage.ngram
    .NGramIndexStorage` uses after a mutation to detect that the
    on-disk artifact no longer matches the content its postings were
    derived from.

    Args:
        path: The artifact file path.

    Returns:
        The 20-byte ``content_sha1`` from the header.

    Raises:
        ArtifactError: If the file is missing, too small, or not an
            artifact of the current version.
    """
    try:
        with open(path, "rb") as handle:
            header = handle.read(_HEADER.size)
    except OSError as error:
        raise ArtifactError(f"cannot open artifact: {error}") from None
    if len(header) < _HEADER.size:
        raise ArtifactError(
            f"{path} is too small to be an artifact ({len(header)} bytes)"
        )
    magic, version, *_rest, content_sha = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ArtifactError(f"{path} is not an n-gram artifact (bad magic)")
    if version != VERSION:
        raise ArtifactError(
            f"{path} has artifact version {version}, "
            f"this build reads version {VERSION}"
        )
    return content_sha


def write_artifact(path: "str | os.PathLike[str]", data: bytes) -> None:
    """Write artifact bytes atomically (write-temp-then-rename).

    Args:
        path: The destination file path.
        data: Bytes produced by :func:`pack`.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temporary = target.with_name(target.name + f".tmp{os.getpid()}")
    temporary.write_bytes(data)
    os.replace(temporary, target)


class ArtifactReader:
    """A verified, memory-mapped view of one artifact file.

    Opening validates the magic, version and payload checksum, then
    parses the (tiny) stats and gram-directory sections eagerly; cell
    text and posting arrays are decoded lazily straight off the map.

    Raises :class:`~repro.errors.ArtifactError` for anything that is
    not a well-formed current-version artifact.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as error:
            raise ArtifactError(f"cannot open artifact: {error}") from None
        try:
            size = os.fstat(self._file.fileno()).st_size
            if size < _HEADER.size:
                raise ArtifactError(
                    f"{self.path} is too small to be an artifact "
                    f"({size} bytes)"
                )
            self._map = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
            self._parse(size)
        except ArtifactError:
            self._file.close()
            raise

    def _parse(self, size: int) -> None:
        (
            magic,
            version,
            self.n,
            self.arity,
            _reserved,
            self.row_count,
            payload_length,
            payload_sha,
            self.content_sha,
        ) = _HEADER.unpack_from(self._map, 0)
        if magic != MAGIC:
            raise ArtifactError(
                f"{self.path} is not an n-gram artifact (bad magic)"
            )
        if version != VERSION:
            raise ArtifactError(
                f"{self.path} has artifact version {version}, "
                f"this build reads version {VERSION}"
            )
        if _HEADER.size + payload_length != size:
            raise ArtifactError(
                f"{self.path} is truncated or padded: header declares "
                f"{payload_length} payload bytes, file holds "
                f"{size - _HEADER.size}"
            )
        payload = memoryview(self._map)[_HEADER.size :]
        if hashlib.sha1(payload).digest() != payload_sha:
            raise ArtifactError(f"{self.path} failed its checksum")
        self._payload = payload
        try:
            cursor = self._parse_stats()
            cursor = self._parse_offsets(cursor)
            self._parse_directories(cursor)
        except (struct.error, IndexError, UnicodeDecodeError) as error:
            raise ArtifactError(
                f"{self.path} payload is malformed: {error}"
            ) from None

    def _parse_stats(self) -> int:
        cursor = 0
        columns = []
        for _ in range(self.arity):
            distinct, total, low, high, entries = _STATS_HEAD.unpack_from(
                self._payload, cursor
            )
            cursor += _STATS_HEAD.size
            histogram = []
            for _ in range(entries):
                histogram.append(_PAIR.unpack_from(self._payload, cursor))
                cursor += _PAIR.size
            columns.append(
                ColumnStats(distinct, total, low, high, tuple(histogram))
            )
        self.stats = RelationStats(self.row_count, self.arity, tuple(columns))
        return cursor

    def _parse_offsets(self, cursor: int) -> int:
        self._offsets_base = cursor
        cells = self.row_count * self.arity
        cursor += (cells + 1) * 4
        (blob_length,) = struct.unpack_from(
            "<I", self._payload, self._offsets_base + cells * 4
        )
        self._blob_base = cursor
        return cursor + blob_length

    def _parse_directories(self, cursor: int) -> None:
        self._directories: list[dict[str, tuple[int, int]]] = []
        for _ in range(self.arity):
            (gram_count,) = _DIR_COUNT.unpack_from(self._payload, cursor)
            cursor += _DIR_COUNT.size
            directory: dict[str, tuple[int, int]] = {}
            for _ in range(gram_count):
                (gram_length,) = _GRAM_HEAD.unpack_from(self._payload, cursor)
                cursor += _GRAM_HEAD.size
                gram = bytes(
                    self._payload[cursor : cursor + gram_length]
                ).decode("utf-8")
                cursor += gram_length
                count, offset = _GRAM_TAIL.unpack_from(self._payload, cursor)
                cursor += _GRAM_TAIL.size
                directory[gram] = (count, offset)
            self._directories.append(directory)

    def cell(self, index: int) -> str:
        """Decode flat cell ``index`` (``row · arity + column``)."""
        start, end = _CELL_SPAN.unpack_from(
            self._payload, self._offsets_base + index * 4
        )
        return bytes(
            self._payload[self._blob_base + start : self._blob_base + end]
        ).decode("utf-8")

    def row(self, row_id: int) -> tuple[str, ...]:
        """Decode the full tuple with id ``row_id``."""
        base = row_id * self.arity
        return tuple(self.cell(base + column) for column in range(self.arity))

    def grams(self, column: int) -> tuple[str, ...]:
        """The sorted grams indexed for ``column``."""
        return tuple(sorted(self._directories[column]))

    def postings(self, column: int, gram: str) -> tuple[tuple[int, int], ...]:
        """The ``(row id, position)`` postings of ``gram`` in ``column``.

        Returns an empty tuple for grams that never occur.
        """
        entry = self._directories[column].get(gram)
        if entry is None:
            return ()
        count, offset = entry
        return tuple(
            _POSTING.iter_unpack(
                self._payload[offset : offset + count * _POSTING.size]
            )
        )

    def close(self) -> None:
        """Release the payload view, the map and the file (idempotent)."""
        try:
            payload = getattr(self, "_payload", None)
            if payload is not None:
                payload.release()  # the map cannot close while exported
                self._payload = None
            self._map.close()
        finally:
            self._file.close()

    def __repr__(self) -> str:
        return (
            f"ArtifactReader({str(self.path)!r}, {self.row_count} rows, "
            f"n={self.n})"
        )
