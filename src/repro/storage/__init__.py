"""Pluggable relation storage for string databases.

The :class:`~repro.storage.base.RelationStorage` protocol decouples
*what* a database maps each relation symbol to (a finite set of string
tuples — paper, Section 2) from *how* the tuples are held:

* :class:`~repro.storage.base.InMemoryStorage` — the historical
  frozenset representation; the reference backend.
* :class:`~repro.storage.ngram.NGramIndexStorage` — positional n-gram
  inverted indexes per column, optionally serialized to an immutable
  memory-mapped artifact (:mod:`repro.storage.artifact`) that builds
  once and is shared read-only across sessions and worker processes.
* :class:`~repro.storage.slp.SLPStorage` — cells held as straight-line
  programs (:mod:`repro.slp`): membership and deltas are structural,
  statistics and n-gram prefilter probes read off the grammars, and
  only rows an engine actually enumerates are ever decompressed.

:func:`storage_factory` turns a storage *kind* name (``"memory"``,
``"ngram"``, ``"slp"``) into the callable :class:`repro.core.database.Database`
accepts via its ``storage=`` parameter; :func:`probe_candidates` is the
uniform prefilter entry point engines call without caring whether the
backend is indexed at all.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from pathlib import Path

from repro.errors import StorageError
from repro.storage.artifact import ArtifactReader, MAGIC, VERSION
from repro.storage.base import (
    EMPTY_STORAGE,
    ColumnStats,
    InMemoryStorage,
    Relation,
    RelationStats,
    RelationStorage,
    compute_stats,
    is_storage,
)
from repro.storage.ngram import DEFAULT_N, NGramIndexStorage
from repro.storage.slp import SLPStorage

#: The storage kinds :func:`storage_factory` understands.
STORAGE_KINDS = ("memory", "ngram", "slp")

#: The signature of a storage factory: ``(name, tuples, alphabet) → storage``.
StorageFactory = Callable[
    [str, Iterable[tuple[str, ...]], object], RelationStorage
]


def storage_factory(
    kind: str = "memory",
    *,
    index_dir: "str | Path | None" = None,
    n: int = DEFAULT_N,
) -> StorageFactory:
    """A factory building one storage per relation, by kind name.

    Args:
        kind: One of :data:`STORAGE_KINDS`.  ``"memory"`` wraps tuples
            in an :class:`InMemoryStorage`; ``"ngram"`` builds an
            :class:`NGramIndexStorage` — in memory when ``index_dir``
            is ``None``, else backed by a ``<name>.ngx`` artifact under
            ``index_dir`` (reused across runs via content fingerprint);
            ``"slp"`` compresses every cell into an
            :class:`~repro.storage.slp.SLPStorage`.
        index_dir: Where ``"ngram"`` artifacts live.
        n: The gram size for ``"ngram"`` and ``"slp"``.

    Returns:
        A callable suitable for ``Database(..., storage=...)``.

    Raises:
        StorageError: For an unknown kind.
    """
    if kind == "memory":

        def make_memory(name, tuples, alphabet):
            return InMemoryStorage(tuples)

        return make_memory
    if kind == "ngram":

        def make_ngram(name, tuples, alphabet):
            if index_dir is None:
                return NGramIndexStorage.build(tuples, n=n)
            return NGramIndexStorage.ensure(
                Path(index_dir) / f"{name}.ngx", tuples, n=n
            )

        return make_ngram
    if kind == "slp":

        def make_slp(name, tuples, alphabet):
            return SLPStorage.build(tuples, n=n)

        return make_slp
    raise StorageError(
        f"unknown storage kind {kind!r}; expected one of {STORAGE_KINDS}"
    )


def resolve_storage_factory(
    storage: "str | StorageFactory | None",
) -> StorageFactory:
    """Normalize a ``storage=`` argument into a factory callable.

    Args:
        storage: ``None`` (the in-memory default), a kind name from
            :data:`STORAGE_KINDS`, or an explicit factory callable.

    Returns:
        The factory.
    """
    if storage is None:
        return storage_factory("memory")
    if isinstance(storage, str):
        return storage_factory(storage)
    if callable(storage):
        return storage
    raise StorageError(
        f"storage must be a kind name or factory, got {storage!r}"
    )


def probe_candidates(
    storage: RelationStorage, column: int, factors: tuple[str, ...]
) -> "frozenset[int] | None":
    """Intersect index candidate sets for required factors, if possible.

    The uniform prefilter entry point: backends without a
    ``candidates`` probe (or factors too short for the index) yield
    ``None``, which callers read as "no pruning available — enumerate".

    Args:
        storage: The relation's backend.
        column: The column the factors constrain.
        factors: Substrings every matching value must contain.

    Returns:
        The intersected candidate row-id set, or ``None``.
    """
    probe = getattr(storage, "candidates", None)
    if probe is None:
        return None
    result: frozenset[int] | None = None
    for factor in factors:
        found = probe(column, factor)
        if found is None:
            continue
        result = found if result is None else (result & found)
        if not result:
            break
    return result


__all__ = [
    "ArtifactReader",
    "ColumnStats",
    "DEFAULT_N",
    "EMPTY_STORAGE",
    "InMemoryStorage",
    "MAGIC",
    "NGramIndexStorage",
    "Relation",
    "RelationStats",
    "RelationStorage",
    "SLPStorage",
    "STORAGE_KINDS",
    "StorageFactory",
    "VERSION",
    "compute_stats",
    "is_storage",
    "probe_candidates",
    "resolve_storage_factory",
    "storage_factory",
]
