"""The SLP-compressed relation backend (``--storage slp``).

Every cell of the relation is held as a straight-line program
(:mod:`repro.slp.grammar`), compressed once at build time with the
deterministic :func:`~repro.slp.grammar.compress` — so equal strings
share one interned grammar and *structural* identity coincides with
string equality.  That invariant is what lets the backend answer most
of the storage protocol without decompressing anything:

* :meth:`SLPStorage.contains` compresses the probe row and compares
  roots — no stored cell is expanded;
* :meth:`SLPStorage.stats` reads lengths and distinct counts off the
  grammars (``expanded_length`` is a field, not an expansion) and
  additionally reports each column's grammar size as
  ``stored_chars``, which the cost model prices compressed scans by;
* :meth:`SLPStorage.candidates` answers n-gram prefilter probes from
  grammar-extracted factor sets (:meth:`~repro.slp.grammar.SLP.grams`
  — ``O(rules · n)`` per distinct cell, never an expansion);
* :meth:`SLPStorage.apply_delta` matches deletes and inserts
  structurally.

Only the enumeration surfaces — :meth:`scan` / :attr:`tuples` /
:meth:`column` / :meth:`rows_for` — expand cells, lazily and with a
per-row cache, because the evaluation engines consume plain strings.
Under a prefilter-carrying plan only candidate rows are ever decoded;
cells past the decompression cap are exactly the payloads meant for
the direct kernel-v3 path (:meth:`cell` hands the compressed value to
:class:`~repro.slp.kernel.SLPKernel` without expanding).

The prefilter is *superset-sound* like the n-gram index: a candidate
set may include false positives (gram-set containment ignores factor
gram adjacency), and the planner re-checks every surviving row
against the acceptance kernel — answers can never change, only the
number of rows scanned.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ArityError
from repro.slp.grammar import SLP, compress
from repro.storage.base import ColumnStats, RelationStats
from repro.storage.ngram import DEFAULT_N


class SLPStorage:
    """A relation stored as SLP-compressed cells with gram prefilters.

    Construct via :meth:`build` (compressing plain tuples) or
    :meth:`from_cells` (adopting pre-built grammars — the entry point
    for scale workloads whose expansions must never materialize).

    >>> store = SLPStorage.build([("gcgcgcgc",), ("aaaaaaaa",)], n=3)
    >>> store.size(), store.arity
    (2, 1)
    >>> sorted(store.candidates(0, "gcgc"))
    [1]
    >>> next(store.rows_for([1]))
    ('gcgcgcgc',)
    >>> store.contains(("aaaaaaaa",))
    True
    """

    __slots__ = (
        "_rows",
        "_row_set",
        "_arity",
        "_n",
        "_stats",
        "_columns",
        "_decoded",
        "_tuples",
        "_indexes",
    )

    def __init__(
        self,
        rows: tuple[tuple[SLP, ...], ...],
        n: int,
        arity: int,
    ) -> None:
        self._rows = rows
        self._row_set = frozenset(rows)
        self._n = n
        self._arity = arity
        self._stats: RelationStats | None = None
        self._columns: dict[int, tuple[str, ...]] = {}
        self._decoded: list[tuple[str, ...] | None] = [None] * len(rows)
        self._tuples: frozenset[tuple[str, ...]] | None = None
        # column -> {gram -> frozenset of row ids}, built on first probe.
        self._indexes: dict[int, dict[str, frozenset[int]]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        tuples: Iterable[tuple[str, ...]],
        n: int = DEFAULT_N,
        arity: int | None = None,
    ) -> "SLPStorage":
        """Compress plain tuples into a storage.

        Rows are deduplicated and sorted canonically (like the n-gram
        backend) so row ids are deterministic; each distinct string is
        compressed once.  Records a ``slp.build`` counter with the
        cell count compressed.

        Args:
            tuples: The relation's rows, as plain strings.
            n: The gram size for prefilter probes.
            arity: Declared arity for an empty relation.

        Returns:
            The populated storage.
        """
        from repro.observability import current_tracer

        rows = tuple(sorted({tuple(row) for row in tuples}))
        arities = {len(row) for row in rows}
        if len(arities) > 1:
            raise ArityError(
                f"storage mixes tuple arities {sorted(arities)}"
            )
        derived = len(rows[0]) if rows else (arity or 0)
        if rows and arity is not None and derived != arity:
            raise ArityError(
                f"declared arity {arity} does not match tuples of "
                f"arity {derived}"
            )
        tracer = current_tracer()
        with tracer.span("slp.build", stage="index", rows=len(rows)):
            cache: dict[str, SLP] = {}
            compressed = []
            for row in rows:
                cells = []
                for value in row:
                    cell = cache.get(value)
                    if cell is None:
                        cell = cache[value] = compress(value)
                    cells.append(cell)
                compressed.append(tuple(cells))
        tracer.add("slp.build", len(cache))
        storage = cls(tuple(compressed), n, derived)
        # The originals are in hand — seed the decode cache for free.
        storage._decoded = list(rows)
        return storage

    @classmethod
    def from_cells(
        cls,
        rows: Iterable[tuple[SLP, ...]],
        n: int = DEFAULT_N,
        arity: int | None = None,
    ) -> "SLPStorage":
        """Adopt pre-built compressed rows (no expansion, no re-compress).

        The caller vouches that equal cells are structurally identical
        (true for anything built through :func:`~repro.slp.grammar
        .compress` or shared grammar nodes); rows are deduplicated
        structurally and ordered deterministically by their canonical
        rule lists.

        Args:
            rows: The relation's rows, as SLP cells.
            n: The gram size for prefilter probes.
            arity: Declared arity for an empty relation.

        Returns:
            The populated storage.
        """
        unique = {tuple(row) for row in rows}
        arities = {len(row) for row in unique}
        if len(arities) > 1:
            raise ArityError(
                f"storage mixes tuple arities {sorted(arities)}"
            )
        derived = arities.pop() if arities else (arity or 0)
        ordered = tuple(sorted(unique, key=_row_key))
        return cls(ordered, n, derived)

    # -- the storage protocol -------------------------------------------

    @property
    def n(self) -> int:
        """The gram size prefilter probes answer at."""
        return self._n

    @property
    def arity(self) -> int:
        """The relation's column count."""
        return self._arity

    @property
    def tuples(self) -> frozenset[tuple[str, ...]]:
        """The relation as a frozenset of *expanded* rows (cached)."""
        if self._tuples is None:
            self._tuples = frozenset(self.scan())
        return self._tuples

    def scan(self) -> Iterator[tuple[str, ...]]:
        """Iterate expanded tuples in row-id order (decoded lazily)."""
        for row_id in range(len(self._rows)):
            yield self._decode(row_id)

    def contains(self, row: tuple[str, ...]) -> bool:
        """Structural membership — compresses the probe, expands nothing."""
        try:
            probe = tuple(compress(value) for value in row)
        except TypeError:
            return False
        return probe in self._row_set

    def column(self, index: int) -> tuple[str, ...]:
        """Sorted distinct expanded values of column ``index``, cached."""
        if index not in self._columns:
            distinct = {row[index] for row in self._rows}
            self._columns[index] = tuple(
                sorted(cell.expand() for cell in distinct)
            )
        return self._columns[index]

    def size(self) -> int:
        """The tuple count."""
        return len(self._rows)

    def stats(self) -> RelationStats:
        """Statistics read off the grammars — no cell is expanded.

        Distinct counts are structural (≡ string distinct, because
        :func:`~repro.slp.grammar.compress` is canonical), lengths
        come from :meth:`~repro.slp.grammar.SLP.expanded_length`, and
        each column additionally reports its total grammar size as
        ``stored_chars`` — the compressed-scan price the cost model
        discounts by.
        """
        if self._stats is None:
            arity = self._arity
            distinct: list[set[SLP]] = [set() for _ in range(arity)]
            histograms: list[dict[int, int]] = [{} for _ in range(arity)]
            totals = [0] * arity
            stored = [0] * arity
            for row in self._rows:
                for index, cell in enumerate(row):
                    distinct[index].add(cell)
                    length = cell.expanded_length()
                    totals[index] += length
                    stored[index] += cell.stored_size()
                    histogram = histograms[index]
                    histogram[length] = histogram.get(length, 0) + 1
            self._stats = RelationStats(
                rows=len(self._rows),
                arity=arity,
                columns=tuple(
                    ColumnStats(
                        distinct=len(distinct[index]),
                        total_chars=totals[index],
                        min_length=min(histograms[index], default=0),
                        max_length=max(histograms[index], default=0),
                        length_histogram=tuple(
                            sorted(histograms[index].items())
                        ),
                        stored_chars=stored[index],
                    )
                    for index in range(arity)
                ),
            )
        return self._stats

    # -- prefilter probes ------------------------------------------------

    def candidates(self, column: int, factor: str) -> frozenset[int] | None:
        """Row ids whose ``column`` value *may* contain ``factor``.

        Superset-sound: every row whose value contains the factor is
        returned (its grams are a subset of the cell's gram set);
        extra rows may ride along and are rejected by the planner's
        kernel re-check.  Factors shorter than the gram size yield
        ``None`` ("cannot prefilter"), exactly like the n-gram index.
        Records an ``slp.probe`` counter.

        Args:
            column: The column index to probe.
            factor: The required substring.

        Returns:
            The candidate row-id set, or ``None``.
        """
        from repro.observability import current_tracer

        if len(factor) < self._n:
            return None
        current_tracer().add("slp.probe")
        index = self._gram_index(column)
        result: frozenset[int] | None = None
        for start in range(len(factor) - self._n + 1):
            found = index.get(factor[start : start + self._n], frozenset())
            result = found if result is None else (result & found)
            if not result:
                break
        return result if result is not None else frozenset()

    def rows_for(self, row_ids: Iterable[int]) -> Iterator[tuple[str, ...]]:
        """Decode the tuples with the given row ids, in sorted id order.

        Only these rows are ever expanded on a prefiltered scan — the
        pruned remainder stays compressed.

        Args:
            row_ids: Candidate ids from :meth:`candidates`.

        Yields:
            The corresponding expanded tuples.
        """
        for row_id in sorted(set(row_ids)):
            yield self._decode(row_id)

    def cell(self, row_id: int, column: int) -> SLP:
        """The *compressed* cell — the kernel-v3 entry point.

        Args:
            row_id: The row id.
            column: The column index.

        Returns:
            The stored grammar, never expanded.
        """
        return self._rows[row_id][column]

    # -- derivation ------------------------------------------------------

    def apply_delta(
        self,
        inserts: frozenset[tuple[str, ...]],
        deletes: frozenset[tuple[str, ...]],
    ) -> "SLPStorage":
        """Derive a new storage with the delta applied, structurally.

        Delta rows are compressed and matched against the stored
        grammars by identity — stored cells are never expanded.  Runs
        in O(|Δ| · cell length) compression plus set operations.

        Args:
            inserts: Rows to add (applied after the deletes).
            deletes: Rows to remove.

        Returns:
            The derived storage, or ``self`` for a no-op delta.

        Raises:
            ArityError: If an inserted row does not match the arity.
        """
        inserts = frozenset(tuple(row) for row in inserts)
        deletes = frozenset(tuple(row) for row in deletes) - inserts
        if not inserts and not deletes:
            return self
        if self._arity == 0 and not self._rows:
            if not inserts:
                return self
            return SLPStorage.build(inserts, n=self._n)
        mismatched = {len(row) for row in inserts} - {self._arity}
        if mismatched:
            raise ArityError(
                f"delta inserts of arity {sorted(mismatched)} do not match "
                f"storage arity {self._arity}"
            )
        removed = {
            tuple(compress(value) for value in row) for row in deletes
        }
        added = {
            tuple(compress(value) for value in row) for row in inserts
        }
        updated = (set(self._rows) - removed) | added
        if updated == set(self._rows):
            return self
        return SLPStorage.from_cells(updated, n=self._n, arity=self._arity)

    # -- internals ------------------------------------------------------

    def _decode(self, row_id: int) -> tuple[str, ...]:
        cached = self._decoded[row_id]
        if cached is None:
            cached = tuple(cell.expand() for cell in self._rows[row_id])
            self._decoded[row_id] = cached
        return cached

    def _gram_index(self, column: int) -> dict[str, frozenset[int]]:
        """The inverted gram → row-id map of one column, built lazily.

        Grams come from each distinct cell's grammar
        (:meth:`~repro.slp.grammar.SLP.grams`) — ``O(rules · n)`` per
        cell, shared across rows holding the same cell.  Records an
        ``slp.index.build`` counter on first construction.
        """
        cached = self._indexes.get(column)
        if cached is not None:
            return cached
        from repro.observability import current_tracer

        cell_grams: dict[SLP, frozenset[str]] = {}
        postings: dict[str, set[int]] = {}
        for row_id, row in enumerate(self._rows):
            cell = row[column]
            grams = cell_grams.get(cell)
            if grams is None:
                grams = cell_grams[cell] = cell.grams(self._n)
            for gram in grams:
                postings.setdefault(gram, set()).add(row_id)
        index = {gram: frozenset(ids) for gram, ids in postings.items()}
        self._indexes[column] = index
        current_tracer().add("slp.index.build")
        return index

    def __reduce__(self):
        return (_restore, (self._rows, self._n, self._arity))

    def __repr__(self) -> str:
        stats = self.stats()
        total = sum(column.total_chars for column in stats.columns)
        stored = sum(
            column.effective_stored_chars for column in stats.columns
        )
        return (
            f"SLPStorage({self.size()} rows, arity {self._arity}, "
            f"n={self._n}, {total} chars in {stored} rules)"
        )


def _row_key(row: tuple[SLP, ...]) -> tuple:
    """A deterministic sort key over compressed rows.

    Orders by each cell's canonical rule list, with terminal and pair
    rules tagged so the mixed-type entries stay comparable — a pure
    function of the derived strings (``compress`` is canonical), never
    of interning history.
    """
    return tuple(
        tuple(
            (0, rule) if isinstance(rule, str) else (1, *rule)
            for rule in cell.rules()
        )
        for cell in row
    )


def _restore(
    rows: tuple[tuple[SLP, ...], ...], n: int, arity: int
) -> SLPStorage:
    """Unpickle helper: cells re-intern via their own reduction."""
    return SLPStorage(rows, n, arity)


__all__ = ["SLPStorage"]
