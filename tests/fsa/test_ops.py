"""Tests for FSA tape surgery."""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.errors import ArityError
from repro.fsa.compile import compile_string_formula
from repro.fsa.ops import disregard_tape, drop_tape, permute_tapes, widen
from repro.fsa.simulate import accepts, language


class TestDisregard:
    def test_disregarded_tape_content_irrelevant(self):
        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        blind = disregard_tape(fsa, 1)
        # With y's head parked on ⊢ the x-sides of the equality loop
        # remain: by property 5 the blind machine accepts every x (each
        # x equals *some* y), with arbitrary content on the dead tape.
        for x in AB.strings(2):
            for y in ("", "a", "bb"):
                assert accepts(blind, (x, y)), (x, y)

    def test_disregard_constrains_nothing_but_structure(self):
        # Disregarding the only constrained tape of a constant test
        # leaves a machine that accepts exactly when the *remaining*
        # structure allows a path — here, always.
        fsa = compile_string_formula(sh.constant("x", "ab"), AB).fsa
        blind = disregard_tape(fsa, 0)
        assert accepts(blind, ("",))
        assert accepts(blind, ("ba",))

    def test_property5_projection_for_unidirectional(self):
        # For unidirectional machines, disregarding + dropping a tape
        # computes the projection of the language (property 5).
        fsa = compile_string_formula(sh.prefix_of("x", "y"), AB).fsa
        assert fsa.is_unidirectional()
        dropped = drop_tape(fsa, 1)
        assert dropped.arity == 1
        # every x is a prefix of *some* y
        projected = language(dropped, 2)
        assert projected == {(u,) for u in AB.strings(2)}

    def test_bad_tape(self):
        fsa = compile_string_formula(sh.constant("x", "a"), AB).fsa
        with pytest.raises(ArityError):
            disregard_tape(fsa, 3)


class TestPermute:
    def test_swap_tapes(self):
        fsa = compile_string_formula(sh.prefix_of("x", "y"), AB).fsa
        swapped = permute_tapes(fsa, [1, 0])
        for u in AB.strings(2):
            for v in AB.strings(2):
                assert accepts(swapped, (v, u)) == accepts(fsa, (u, v))

    def test_invalid_permutation(self):
        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        with pytest.raises(ArityError):
            permute_tapes(fsa, [0, 0])


class TestWiden:
    def test_widen_adds_ignored_tapes(self):
        fsa = compile_string_formula(sh.constant("x", "ab"), AB).fsa
        wide = widen(fsa, 3, [1])  # old tape 0 becomes tape 1
        assert wide.arity == 3
        assert accepts(wide, ("bb", "ab", "a"))
        assert not accepts(wide, ("ab", "bb", "a"))

    def test_widen_validates_placement(self):
        fsa = compile_string_formula(sh.constant("x", "a"), AB).fsa
        with pytest.raises(ArityError):
            widen(fsa, 2, [2])
        with pytest.raises(ArityError):
            widen(fsa, 2, [0, 1])
