"""Tests for the Theorem 3.1 compiler.

The central property: for every string formula φ and every tuple of
strings, the compiled FSA accepts exactly when the *independent*
direct model checker satisfies φ from the initial alignment —
``L(A_φ) = ⟦φ⟧`` restricted to bounded lengths.
"""

from itertools import product

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.semantics import check_string_formula
from repro.core.syntax import (
    IsChar,
    IsEmpty,
    Lambda,
    SameChar,
    SStar,
    WTrue,
    atom,
    concat,
    left,
    right,
    string_variables,
    union,
)
from repro.fsa.compile import compile_string_formula
from repro.fsa.simulate import accepts


def assert_matches_checker(formula, alphabet, max_len):
    """L(A_φ) == ⟦φ⟧ on all tuples of strings of length ≤ max_len."""
    compiled = compile_string_formula(formula, alphabet)
    variables = compiled.variables
    pool = list(alphabet.strings(max_len))
    for values in product(pool, repeat=len(variables)):
        env = dict(zip(variables, values))
        expected = check_string_formula(formula, env)
        got = accepts(compiled.fsa, values)
        assert got == expected, (formula, values, expected)


class TestAtomicCompilation:
    def test_single_left_transpose(self):
        assert_matches_checker(atom(left("x"), IsChar("x", "a")), AB, 3)

    def test_single_right_transpose_from_initial(self):
        # From an initial alignment a right transpose stays at the left
        # end: only the ε test can succeed.
        assert_matches_checker(atom(right("x"), IsEmpty("x")), AB, 2)
        assert_matches_checker(atom(right("x"), IsChar("x", "a")), AB, 2)

    def test_empty_transpose_is_identity(self):
        assert_matches_checker(atom(left(), IsEmpty("x") | IsChar("x", "a")), AB, 2)

    def test_two_tape_atom(self):
        assert_matches_checker(atom(left("x", "y"), SameChar("x", "y")), AB, 2)

    def test_lambda(self):
        compiled = compile_string_formula(Lambda(), AB, variables=("x",))
        for u in AB.strings(2):
            assert accepts(compiled.fsa, (u,))


class TestStructuralProperties:
    """Properties 1-4 of Theorem 3.1 on the compiled machines."""

    def compiled(self):
        return compile_string_formula(sh.equals("x", "y"), AB)

    def test_property1_bidirectional_tapes(self):
        # x =_s y is unidirectional; the machine must be too.
        assert self.compiled().fsa.is_unidirectional()
        bidir = compile_string_formula(sh.manifold("x", "y"), AB)
        assert bidir.fsa.bidirectional_tapes() == {bidir.tape_of("y")}

    def test_property2_start_has_no_incoming(self):
        fsa = self.compiled().fsa
        assert fsa.incoming(fsa.start) == ()

    def test_property3_unique_final_or_rejecting_start(self):
        fsa = self.compiled().fsa
        assert len(fsa.finals) == 1

    def test_property4_final_incoming_stationary_no_outgoing(self):
        fsa = self.compiled().fsa
        (final,) = tuple(fsa.finals)
        assert final != fsa.start
        assert fsa.outgoing(final) == ()
        assert all(t.is_stationary() for t in fsa.incoming(final))

    def test_unsatisfiable_formula_compiles_to_rejecting_start(self):
        from repro.fsa.decompile import unsatisfiable

        compiled = compile_string_formula(unsatisfiable(), AB, variables=("x",))
        assert compiled.fsa.finals == frozenset()
        for u in AB.strings(2):
            assert not accepts(compiled.fsa, (u,))


class TestRegexOperators:
    def test_concatenation(self):
        phi = concat(
            atom(left("x"), IsChar("x", "a")), atom(left("x"), IsChar("x", "b"))
        )
        assert_matches_checker(phi, AB, 3)

    def test_union(self):
        phi = union(
            atom(left("x"), IsChar("x", "a")), atom(left("x"), IsChar("x", "b"))
        )
        assert_matches_checker(phi, AB, 2)

    def test_star(self):
        phi = concat(
            SStar(atom(left("x"), IsChar("x", "a"))),
            atom(left("x"), IsEmpty("x")),
        )
        assert_matches_checker(phi, AB, 4)

    def test_star_of_unsatisfiable_is_lambda(self):
        from repro.fsa.decompile import unsatisfiable

        phi = SStar(unsatisfiable())
        compiled = compile_string_formula(phi, AB, variables=("x",))
        for u in AB.strings(2):
            assert accepts(compiled.fsa, (u,))

    def test_nested_star_union(self):
        phi = concat(
            SStar(
                union(
                    concat(
                        atom(left("x"), IsChar("x", "a")),
                        atom(left("x"), IsChar("x", "b")),
                    ),
                    atom(left("x"), IsChar("x", "b")),
                )
            ),
            atom(left("x"), IsEmpty("x")),
        )
        assert_matches_checker(phi, AB, 4)


class TestPaperPredicates:
    """Every Section 2 predicate, FSA engine vs direct checker."""

    @pytest.mark.parametrize(
        "formula,max_len",
        [
            (sh.constant("x", "ab"), 3),
            (sh.equals("x", "y"), 3),
            (sh.prefix_of("x", "y"), 3),
            (sh.concatenation("x", "y", "z"), 2),
            (sh.shuffle("x", "y", "z"), 2),
            (sh.occurs_in("x", "y"), 3),
            (sh.suffix_of("x", "y"), 3),
            (sh.edit_distance_at_most("x", "y", 1), 2),
        ],
        ids=lambda value: str(value)[:40],
    )
    def test_unidirectional_predicates(self, formula, max_len):
        assert_matches_checker(formula, AB, max_len)

    def test_manifold_bidirectional(self):
        assert_matches_checker(sh.manifold("x", "y"), AB, 3)

    def test_anbncn_bidirectional(self):
        abc = Alphabet("abc")
        compiled = compile_string_formula(sh.anbncn_string_part("x", "y"), abc)
        for x_len in range(7):
            for x in ["a" * (x_len // 3) + "b" * (x_len // 3) + "c" * (x_len // 3),
                      "ab" * (x_len // 2)]:
                for y in ["", "a", "aa", "ab", "aaa"]:
                    values = {"x": x, "y": y}
                    expected = check_string_formula(
                        sh.anbncn_string_part("x", "y"), values
                    )
                    got = accepts(
                        compiled.fsa,
                        tuple(values[v] for v in compiled.variables),
                    )
                    assert got == expected, (x, y)

    def test_gc_pattern_three_letter_alphabet(self):
        gca = Alphabet("gca")
        assert_matches_checker(sh.gc_plus_a_star("y"), gca, 4)


class TestLayouts:
    def test_explicit_layout_with_extra_tape(self):
        compiled = compile_string_formula(
            sh.constant("x", "a"), AB, variables=("x", "pad")
        )
        # The pad tape is unconstrained.
        assert accepts(compiled.fsa, ("a", "bb"))
        assert not accepts(compiled.fsa, ("b", "bb"))

    def test_layout_must_cover_formula(self):
        from repro.errors import ArityError

        with pytest.raises(ArityError):
            compile_string_formula(sh.equals("x", "y"), AB, variables=("x",))

    def test_layout_must_not_repeat(self):
        from repro.errors import ArityError

        with pytest.raises(ArityError):
            compile_string_formula(
                sh.constant("x", "a"), AB, variables=("x", "x")
            )

    def test_compilation_cache_returns_same_object(self):
        first = compile_string_formula(sh.equals("x", "y"), AB)
        second = compile_string_formula(sh.equals("x", "y"), AB)
        assert first is second
