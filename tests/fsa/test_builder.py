"""Tests for the machine-construction DSL."""

import pytest

from repro.core.alphabet import AB, LEFT_END, RIGHT_END
from repro.errors import TransitionError
from repro.fsa.builder import ANY, ANY_CHAR, MachineBuilder
from repro.fsa.simulate import accepts


class TestAdd:
    def test_wildcard_expansion(self):
        b = MachineBuilder(1, AB, "s")
        b.add("s", (ANY_CHAR,), "t", (+1,))
        assert len(b.transitions) == len(AB.symbols)

    def test_any_skips_illegal_endmarker_moves(self):
        b = MachineBuilder(1, AB, "s")
        b.add("s", (ANY,), "t", (+1,))
        reads = {t.reads[0] for t in b.transitions}
        assert RIGHT_END not in reads  # cannot move right from ⊣
        assert LEFT_END in reads

    def test_arity_checked(self):
        b = MachineBuilder(2, AB, "s")
        with pytest.raises(TransitionError):
            b.add("s", ("a",), "t", (+1,))

    def test_iterable_spec(self):
        b = MachineBuilder(1, AB, "s")
        b.add("s", (("a", "b"),), "t", (0,))
        assert len(b.transitions) == 2


class TestIdioms:
    def test_scan_until(self):
        b = MachineBuilder(1, AB, "s")
        b.add("s", (LEFT_END,), "scan", (+1,))
        b.scan_until("scan", 0, "b", "found")
        b.add("found", (ANY,), "done", (0,))
        b.final("done")
        machine = b.build()
        assert accepts(machine, ("aab",))
        assert accepts(machine, ("ba",))
        assert not accepts(machine, ("aaa",))

    def test_rewind(self):
        b = MachineBuilder(1, AB, "s")
        b.add("s", (LEFT_END,), "fwd", (+1,))
        b.scan_until("fwd", 0, RIGHT_END, "back", consume_stop=False)
        b.rewind("back", 0, "home")
        b.add("home", (LEFT_END,), "done", (0,))
        b.final("done")
        machine = b.build()
        assert machine.bidirectional_tapes() == {0}
        assert accepts(machine, ("abab",))
        assert accepts(machine, ("",))

    def test_build_prunes(self):
        b = MachineBuilder(1, AB, "s")
        b.add("s", ("a",), "t", (0,))
        b.add("orphan", ("a",), "island", (0,))
        b.final("t")
        machine = b.build()
        assert "orphan" not in machine.states
