"""Tests for machine rendering."""

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.fsa.compile import compile_string_formula
from repro.fsa.machine import make_fsa
from repro.fsa.render import to_dot, to_text, transition_label


class TestTransitionLabel:
    def test_moves_rendered(self):
        assert transition_label(("a", "b"), (+1, 0)) == "a+1 b·"
        assert transition_label(("a",), (-1,)) == "a-1"


class TestToText:
    def test_contains_structure(self):
        fsa = compile_string_formula(sh.constant("x", "a"), AB).fsa
        text = to_text(fsa)
        assert "start:" in text
        assert "finals:" in text
        assert "-->" in text

    def test_deterministic(self):
        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        assert to_text(fsa) == to_text(fsa)


class TestToDot:
    def test_valid_dot_shape(self):
        fsa = make_fsa(
            1, AB, "s", ["f"], [("s", ("a",), "f", (0,))]
        )
        dot = to_dot(fsa, name="demo")
        assert dot.startswith("digraph demo {")
        assert dot.rstrip().endswith("}")
        assert "doublecircle" in dot  # the final state
        assert '"__start"' in dot

    def test_edges_labelled(self):
        fsa = make_fsa(1, AB, "s", ["f"], [("s", ("a",), "f", (+1,))])
        assert 'label="a+1"' in to_dot(fsa)
