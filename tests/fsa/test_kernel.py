"""Differential and caching tests for the compiled simulation kernel.

The kernel's contract is *exact* equivalence with the reference
Theorem 3.3 search — same verdicts, same validation errors — plus
instance/session caching so the compile cost is paid once.  The
hypothesis differential drives random machines on random input tuples;
the workload differential drives paper-shaped machines on rows from
every synthetic workload generator.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import shorthands as sh
from repro.core.alphabet import AB, DNA, LEFT_END, RIGHT_END, Alphabet
from repro.errors import AlphabetError, ArityError
from repro.fsa.compile import compile_string_formula
from repro.fsa.kernel import MAX_BINDINGS, compile_kernel, kernel_for
from repro.fsa.machine import make_fsa
from repro.fsa.simulate import accepts, accepts_batch, reference_accepts
from repro.observability import Tracer, activate
from repro.workloads.generators import (
    copy_language_strings,
    manifold_strings,
    near_duplicates,
    uniform_strings,
    with_planted_motif,
)


def equality_machine():
    transitions = [("s", (LEFT_END, LEFT_END), "cmp", (+1, +1))]
    for char in AB:
        transitions.append(("cmp", (char, char), "cmp", (+1, +1)))
    transitions.append(("cmp", (RIGHT_END, RIGHT_END), "f", (0, 0)))
    return make_fsa(2, AB, "s", ["f"], transitions)


class TestEquivalence:
    def test_equality_machine(self):
        kernel = compile_kernel(equality_machine())
        assert kernel.accepts(("abab", "abab"))
        assert kernel.accepts(("", ""))
        assert not kernel.accepts(("ab", "ba"))
        assert not kernel.accepts(("ab", "abb"))

    def test_halting_acceptance_requires_stuckness(self):
        # A final state with an enabled transition does not accept.
        fsa = make_fsa(1, AB, "s", ["s"], [("s", (LEFT_END,), "s", (0,))])
        kernel = compile_kernel(fsa)
        assert not kernel.accepts(("",))
        assert not kernel.accepts(("a",))

    def test_final_state_accepts_when_stuck(self):
        fsa = make_fsa(1, AB, "s", ["s"], [("s", ("a",), "s", (0,))])
        kernel = compile_kernel(fsa)
        assert kernel.accepts(("a",))
        assert kernel.accepts(("",))

    def test_arity_zero_machine(self):
        accepting = make_fsa(0, AB, "s", ["f"], [("s", (), "f", ())])
        rejecting = make_fsa(0, AB, "s", [], [], extra_states=["s"])
        assert compile_kernel(accepting).accepts(()) is True
        assert compile_kernel(rejecting).accepts(()) is False
        assert reference_accepts(accepting, ()) is True
        assert reference_accepts(rejecting, ()) is False

    def test_two_way_machine_matches_reference(self):
        fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
        kernel = compile_kernel(fsa)
        for row in [("abab", "ab"), ("aba", "ab"), ("", ""), ("aa", "a")]:
            assert kernel.accepts(row) == reference_accepts(fsa, row)

    def test_batch_matches_per_row(self):
        fsa = equality_machine()
        rows = [
            (u, v) for u in AB.strings(2) for v in AB.strings(2)
        ]
        kernel = compile_kernel(fsa)
        assert kernel.accepts_batch(rows) == tuple(
            reference_accepts(fsa, row) for row in rows
        )
        assert accepts_batch(fsa, rows) == kernel.accepts_batch(rows)


class TestValidation:
    def test_arity_error(self):
        with pytest.raises(ArityError):
            compile_kernel(equality_machine()).accepts(("a",))

    def test_alphabet_error(self):
        with pytest.raises(AlphabetError):
            compile_kernel(equality_machine()).accepts(("a", "xz"))

    def test_endmarker_characters_rejected(self):
        # Reference validation rejects ⊢/⊣ inside inputs; interning
        # must not quietly map them to the endmarker symbol ids.
        kernel = compile_kernel(equality_machine())
        with pytest.raises(AlphabetError):
            kernel.accepts((LEFT_END, LEFT_END))
        with pytest.raises(AlphabetError):
            kernel.accepts((RIGHT_END, RIGHT_END))

    def test_batch_validates_every_row(self):
        kernel = compile_kernel(equality_machine())
        with pytest.raises(ArityError):
            kernel.accepts_batch([("a", "a"), ("a",)])
        with pytest.raises(AlphabetError):
            kernel.accepts_batch([("a", "a"), ("a", "z")])


# -- hypothesis differential: random machines × random inputs ----------

_TAPE_SYMBOLS = AB.tape_symbols()


@st.composite
def _random_machines(draw):
    arity = draw(st.integers(min_value=1, max_value=2))
    state_count = draw(st.integers(min_value=1, max_value=4))
    states = list(range(state_count))
    finals = draw(st.lists(st.sampled_from(states), max_size=state_count))
    transitions = []
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        source = draw(st.sampled_from(states))
        target = draw(st.sampled_from(states))
        reads = tuple(
            draw(st.sampled_from(_TAPE_SYMBOLS)) for _ in range(arity)
        )
        moves = []
        for symbol in reads:
            options = [-1, 0, +1]
            if symbol == LEFT_END:
                options.remove(-1)
            if symbol == RIGHT_END:
                options.remove(+1)
            moves.append(draw(st.sampled_from(options)))
        transitions.append((source, reads, target, tuple(moves)))
    return make_fsa(
        arity, AB, 0, finals, transitions, extra_states=states
    )


_words = st.text(alphabet="ab", max_size=3)


@settings(max_examples=120, deadline=None)
@given(fsa=_random_machines(), data=st.data())
def test_kernel_equals_reference_on_random_machines(fsa, data):
    inputs = tuple(data.draw(_words) for _ in range(fsa.arity))
    assert compile_kernel(fsa).accepts(inputs) == reference_accepts(
        fsa, inputs
    )


# -- workload differential: paper machines on generator rows -----------


def _workload_rows():
    yield "uniform", AB, [
        (u, v)
        for u, v in zip(
            uniform_strings(AB, 8, 4, seed=3),
            uniform_strings(AB, 8, 4, seed=4),
        )
    ]
    yield "motif", AB, [
        (u, v)
        for u, v in zip(
            with_planted_motif(AB, "ab", count=8, max_length=4, seed=5),
            with_planted_motif(AB, "ba", count=8, max_length=4, seed=6),
        )
    ]
    yield "near-dup", AB, [
        (u, v)
        for u, v in zip(
            near_duplicates(AB, "abab", count=8, max_edits=2, seed=7),
            near_duplicates(AB, "abab", count=8, max_edits=2, seed=8),
        )
    ]
    yield "copy-lang", AB, [
        (u, v)
        for u, v in zip(
            copy_language_strings(count=8, max_half_length=2, seed=9),
            copy_language_strings(count=8, max_half_length=2, seed=10),
        )
    ]
    yield "manifold", AB, manifold_strings(
        AB, count=8, max_base_length=2, max_repeats=3, seed=11
    )
    yield "dna", DNA, [
        (u, v)
        for u, v in zip(
            uniform_strings(DNA, 6, 3, seed=12),
            uniform_strings(DNA, 6, 3, seed=13),
        )
    ]


@pytest.mark.parametrize(
    "name,alphabet,rows",
    list(_workload_rows()),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_kernel_equals_reference_on_workloads(name, alphabet, rows):
    machines = [
        compile_string_formula(build("x", "y"), alphabet).fsa
        for build in (
            sh.equals,
            sh.prefix_of,
            sh.occurs_in,
            sh.manifold,
        )
    ]
    for fsa in machines:
        kernel = kernel_for(fsa)
        for row in rows:
            assert kernel.accepts(row) == reference_accepts(fsa, row), (
                name,
                fsa,
                row,
            )


# -- caching -----------------------------------------------------------


class TestKernelCache:
    def test_instance_cache_returns_same_kernel(self):
        fsa = equality_machine()
        assert kernel_for(fsa) is kernel_for(fsa)

    def test_distinct_instances_compile_separately(self):
        first, second = equality_machine(), equality_machine()
        assert first == second  # structurally equal machines...
        assert kernel_for(first) is not kernel_for(second)  # ...per instance

    def test_compile_and_hit_counters(self):
        # The equality machine is in the v2 fragment, so the v1
        # counters are observed by pinning the mode.
        fsa = equality_machine()
        tracer = Tracer()
        with activate(tracer):
            kernel_for(fsa, "v1")
            kernel_for(fsa, "v1")
            accepts(fsa, ("ab", "ab"), kernel="v1")
        assert tracer.counters["kernel.compile"] == 1
        assert tracer.counters["kernel.hits"] == 2
        assert tracer.counters["simulate.runs"] == 1
        assert tracer.counters["simulate.kernel_configurations"] > 0

    def test_v2_counters_under_auto_default(self):
        fsa = equality_machine()
        tracer = Tracer()
        with activate(tracer):
            kernel_for(fsa)
            kernel_for(fsa)
            accepts(fsa, ("ab", "ab"))
        assert tracer.counters["kernel.determinize"] == 1
        assert tracer.counters["kernel.dfa_states"] > 0
        assert tracer.counters["kernel.v2_hits"] == 2
        assert tracer.counters["simulate.runs"] == 1
        assert tracer.counters["simulate.scan_symbols"] > 0
        assert "kernel.compile" not in tracer.counters

    def test_pickled_machine_drops_kernel_stash(self):
        fsa = equality_machine()
        kernel_for(fsa)
        clone = pickle.loads(pickle.dumps(fsa))
        assert "_kernel" not in clone.__dict__
        assert accepts(clone, ("ab", "ab"))

    def test_pickled_kernel_travels_as_its_machine(self):
        kernel = kernel_for(equality_machine())
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.accepts(("ab", "ab"))

    def test_binding_cache_is_bounded(self):
        kernel = compile_kernel(equality_machine())
        for length in range(MAX_BINDINGS + 8):
            kernel.accepts(("a" * length, "a" * length))
        assert len(kernel._bindings) <= MAX_BINDINGS

    def test_shared_binding_across_equal_shapes(self):
        kernel = compile_kernel(equality_machine())
        kernel.accepts(("ab", "ba"))
        kernel.accepts(("ba", "ab"))  # same shape, same binding
        assert len(kernel._bindings) == 1


def test_default_alphabet_constructible():
    # Alphabets other than AB/DNA compile too (regression guard for
    # the symbol-interning order).
    alphabet = Alphabet("xyz")
    fsa = make_fsa(
        1,
        alphabet,
        "s",
        ["f"],
        [
            ("s", (LEFT_END,), "scan", (+1,)),
            ("scan", ("x",), "scan", (+1,)),
            ("scan", (RIGHT_END,), "f", (0, )),
        ],
    )
    kernel = compile_kernel(fsa)
    for word in ("", "x", "xx", "xy", "yx"):
        assert kernel.accepts((word,)) == reference_accepts(fsa, (word,))
