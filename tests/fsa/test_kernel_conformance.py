"""Kernel-mode conformance: v1 ≡ v2 ≡ auto across the whole stack.

The kernel dispatcher's contract is that the kernel mode is *never*
observable in answers: for every workload generator, every registered
engine, every ``--kernel`` mode and every worker count, the evaluated
answer sets must be byte-identical (compared as sorted tuple lists)
to the v1-pinned naive reference.  This file drives exactly that
matrix, plus the cache-keying half of the contract — a session's
kernel :class:`~repro.engine.caches.KeyedCache` must keep v1 and v2
kernels for one machine under distinct keys — and the pickling half:
v2 scan tables survive the ``SimulateShardTask`` worker round trip.
"""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.query import Query
from repro.core.syntax import And, Not, Var, exists, lift, rel
from repro.engine import ParallelEngine, QueryEngine
from repro.fsa.compile import compile_string_formula
from repro.fsa.determinize import DeterministicKernel
from repro.fsa.kernel import KERNEL_MODES, CompiledKernel
from repro.fsa.simulate import reference_accepts
from repro.parallel import ParallelExecutor
from repro.parallel.generation import filter_accepted
from repro.workloads.generators import (
    copy_language_strings,
    example_database,
    manifold_strings,
    near_duplicates,
    uniform_strings,
    with_planted_motif,
)

DNA = Alphabet("acgt")

#: The worker counts the conformance matrix must cover.
WORKER_COUNTS = (1, 2, 4)

#: Every registered engine; ``parallel`` is driven via a configured
#: :class:`~repro.engine.ParallelEngine` so tiny workloads still cross
#: real process boundaries.
ENGINES = ("naive", "planner", "algebra", "parallel", "auto")


def _databases():
    yield "uniform", example_database(AB, seed=3, size=4, max_length=3)
    yield "motif", example_database(
        AB,
        singles=with_planted_motif(AB, "ab", count=5, max_length=3, seed=5),
        seed=7,
        size=3,
        max_length=2,
    )
    yield "near-dup", example_database(
        AB,
        singles=near_duplicates(AB, "aba", count=4, max_edits=1, seed=11),
        seed=13,
        size=3,
        max_length=3,
    )
    yield "copy-lang", example_database(
        AB,
        singles=copy_language_strings(count=5, max_half_length=2, seed=9),
        seed=15,
        size=3,
        max_length=2,
    )
    yield "manifold", example_database(
        AB,
        pairs=manifold_strings(
            AB, count=4, max_base_length=2, max_repeats=2, seed=21
        ),
        seed=17,
        size=3,
        max_length=2,
    )
    yield "dna", example_database(
        DNA,
        singles=uniform_strings(DNA, 3, 2, seed=17),
        seed=19,
        size=2,
        max_length=2,
    )


def _queries(alphabet):
    # select-prefix exercises the in-fragment (right-restricted) v2
    # path; generate-concat and the manifold rows keep out-of-fragment
    # machines (v1 fallback) in the same matrix.
    yield "select-prefix", Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), lift(sh.prefix_of("x", "y"))),
        alphabet,
    )
    yield "join", Query(
        ("x",),
        exists("y", And(rel("R1", "x", "y"), rel("R2", "y"))),
        alphabet,
    )
    yield "generate-concat", Query(
        ("x",),
        exists(
            ["y", "z"],
            And(
                And(rel("R2", "y"), rel("R2", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        ),
        alphabet,
    )
    yield "negated-filter", Query(
        ("x", "y"),
        And(rel("R1", "x", "y"), Not(rel("R2", "y"))),
        alphabet,
    )


DATABASES = list(_databases())
DB_PARAMS = [pytest.param(name, db, id=name) for name, db in DATABASES]

#: One long-lived session per kernel mode, so the matrix also
#: exercises per-mode cache reuse across its cells.
_SESSIONS = {mode: QueryEngine(kernel_mode=mode) for mode in KERNEL_MODES}
_REFERENCES: dict = {}


def _reference(dbname, qname, query, db, bound):
    """The v1-pinned naive answer, computed once per (db, query)."""
    key = (dbname, qname)
    if key not in _REFERENCES:
        _REFERENCES[key] = sorted(
            _SESSIONS["v1"].evaluate(query, db, length=bound, engine="naive")
        )
    return _REFERENCES[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
@pytest.mark.parametrize("dbname,db", DB_PARAMS)
def test_conformance_matrix(dbname, db, kernel_mode, workers):
    """generator × engine × kernel mode × workers: identical answers."""
    session = _SESSIONS[kernel_mode]
    bound = db.max_string_length() + 1
    for qname, query in _queries(db.alphabet):
        reference = _reference(dbname, qname, query, db, bound)
        for engine_name in ENGINES:
            engine = (
                ParallelEngine(
                    workers=workers, shards=3, min_parallel_items=1
                )
                if engine_name == "parallel"
                else engine_name
            )
            got = sorted(
                session.evaluate(
                    query,
                    db,
                    length=bound,
                    engine=engine,
                    workers=workers,
                    shards=3,
                )
            )
            assert got == reference, (
                f"{dbname}/{qname}: engine={engine_name} "
                f"kernel={kernel_mode} workers={workers} diverges from "
                f"the v1 naive reference"
            )


# -- session cache keying ----------------------------------------------


def _equals_machine():
    return compile_string_formula(sh.equals(Var("x"), Var("y")), AB).fsa


def _manifold_machine():
    return compile_string_formula(sh.manifold(Var("x"), Var("y")), AB).fsa


class TestSessionKernelCacheKeys:
    def test_v1_and_v2_do_not_collide(self):
        session = QueryEngine()
        fsa = _equals_machine()
        v2 = session.kernel(fsa)
        v1 = session.kernel(fsa, "v1")
        assert isinstance(v2, DeterministicKernel)
        assert isinstance(v1, CompiledKernel)
        # Stable keys: repeat lookups hit the same per-tier entries.
        assert session.kernel(fsa) is v2
        assert session.kernel(fsa, "v1") is v1
        assert session.kernel(fsa, "v2") is v2

    def test_structural_sharing_within_a_tier(self):
        session = QueryEngine()
        first, second = _equals_machine(), _equals_machine()
        assert first == second
        assert session.kernel(first) is session.kernel(second)
        assert session.kernel(first, "v1") is session.kernel(second, "v1")

    def test_out_of_fragment_shares_the_v1_entry(self):
        # v2/auto requests for an out-of-fragment machine resolve to
        # the v1 tier, so they share the forced-v1 cache entry
        # instead of duplicating the kernel under a phantom v2 key.
        session = QueryEngine()
        fsa = _manifold_machine()
        auto = session.kernel(fsa)
        assert isinstance(auto, CompiledKernel)
        assert session.kernel(fsa, "v1") is auto

    def test_pinned_v1_session_never_builds_v2(self):
        session = QueryEngine(kernel_mode="v1")
        kernel = session.kernel(_equals_machine())
        assert isinstance(kernel, CompiledKernel)

    def test_invalid_session_mode_rejected(self):
        with pytest.raises(ValueError):
            QueryEngine(kernel_mode="fast")


# -- worker round trip (the satellite-3 pickle regression) --------------


@pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
def test_v2_tables_survive_the_worker_path(kernel_mode):
    """`SimulateShardTask` ships machines, not tables: verdicts from a
    2-worker pool must match the reference for every kernel mode."""
    fsa = _equals_machine()
    rows = [
        (u, v) for u in AB.strings(2) for v in AB.strings(2)
    ]
    expected = frozenset(
        row for row in rows if reference_accepts(fsa, row)
    )
    executor = ParallelExecutor(workers=2, min_parallel_items=1)
    got = filter_accepted(
        fsa, rows, executor=executor, kernel_mode=kernel_mode
    )
    assert got == expected
