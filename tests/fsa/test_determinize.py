"""Differential and property tests for the determinized v2 kernel.

The v2 contract has two halves, both enforced here:

* **exactness** — for every machine the fragment detector admits, the
  determinized scan returns exactly the verdicts of the reference
  Theorem 3.3 search (`simulate.reference_accepts`), on *exhaustive*
  ``Σ^{<=l}`` input spaces, not samples;
* **soundness of the fallback** — machines outside the fragment are
  never determinized: the detector says ``None``, ``determinize``
  declines, and ``kernel_for`` transparently answers with the v1
  worklist kernel while bumping the ``kernel.fallback`` counter.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import shorthands as sh
from repro.core.alphabet import AB, LEFT_END, RIGHT_END, Alphabet
from repro.core.syntax import Var
from repro.errors import AlphabetError, ArityError
from repro.fsa.compile import compile_string_formula
from repro.fsa.determinize import (
    MAX_DFA_CELLS,
    RIGHT_RESTRICTED,
    UNIDIRECTIONAL,
    DeterministicKernel,
    classify_fragment,
    determinize,
    determinized_for,
    dfa_to_fsa,
    lockstep_intersection,
)
from repro.fsa.kernel import CompiledKernel, kernel_for
from repro.fsa.machine import make_fsa
from repro.fsa.simulate import reference_accepts
from repro.observability import Tracer, activate

_TAPE_SYMBOLS = AB.tape_symbols()
_NON_RIGHT_END = tuple(s for s in _TAPE_SYMBOLS if s != RIGHT_END)


def _compiled(build):
    return compile_string_formula(build(Var("x"), Var("y")), AB).fsa


def _exhaustive_rows(arity, max_length):
    pool = list(AB.strings(max_length))
    if arity == 1:
        return [(word,) for word in pool]
    return [(u, v) for u in pool for v in pool]


# -- hypothesis strategies ---------------------------------------------


@st.composite
def _in_fragment_machines(draw):
    """Random unidirectional / right-restricted (lockstep) machines."""
    arity = draw(st.integers(min_value=1, max_value=2))
    state_count = draw(st.integers(min_value=1, max_value=4))
    states = list(range(state_count))
    finals = draw(st.lists(st.sampled_from(states), max_size=state_count))
    transitions = []
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        source = draw(st.sampled_from(states))
        target = draw(st.sampled_from(states))
        advance = draw(st.booleans())
        # All-right transitions may not read ⊣ (heads cannot move
        # right off the endmarker), matching the FSA constructor.
        symbols = _NON_RIGHT_END if advance else _TAPE_SYMBOLS
        reads = tuple(
            draw(st.sampled_from(symbols)) for _ in range(arity)
        )
        moves = ((+1 if advance else 0),) * arity
        transitions.append((source, reads, target, moves))
    return make_fsa(arity, AB, 0, finals, transitions, extra_states=states)


@st.composite
def _out_of_fragment_machines(draw):
    """Random machines guaranteed outside the Theorem 5.2 fragment."""
    arity = draw(st.integers(min_value=1, max_value=2))
    state_count = draw(st.integers(min_value=1, max_value=4))
    states = list(range(state_count))
    finals = draw(st.lists(st.sampled_from(states), max_size=state_count))
    transitions = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        source = draw(st.sampled_from(states))
        target = draw(st.sampled_from(states))
        reads = tuple(
            draw(st.sampled_from(_TAPE_SYMBOLS)) for _ in range(arity)
        )
        moves = []
        for symbol in reads:
            options = [-1, 0, +1]
            if symbol == LEFT_END:
                options.remove(-1)
            if symbol == RIGHT_END:
                options.remove(+1)
            moves.append(draw(st.sampled_from(options)))
        transitions.append((source, reads, target, tuple(moves)))
    # Plant one transition that breaks the fragment for sure: a left
    # move (any arity) or a mixed stay/right move pair (arity 2).
    source = draw(st.sampled_from(states))
    target = draw(st.sampled_from(states))
    if arity == 1 or draw(st.booleans()):
        reads = tuple(
            draw(st.sampled_from(("a", "b", RIGHT_END)))
            for _ in range(arity)
        )
        moves = (-1,) + (0,) * (arity - 1)
    else:
        reads = tuple(
            draw(st.sampled_from(_NON_RIGHT_END)) for _ in range(arity)
        )
        moves = (0, +1)
    transitions.append((source, reads, target, moves))
    return make_fsa(arity, AB, 0, finals, transitions, extra_states=states)


# -- the differential property -----------------------------------------


@settings(max_examples=150, deadline=None)
@given(fsa=_in_fragment_machines())
def test_v2_equals_reference_exhaustively(fsa):
    assert classify_fragment(fsa) is not None
    kernel = determinize(fsa)
    assert kernel is not None
    rows = _exhaustive_rows(fsa.arity, 3 if fsa.arity == 1 else 2)
    expected = tuple(reference_accepts(fsa, row) for row in rows)
    assert tuple(kernel.accepts(row) for row in rows) == expected
    assert kernel.accepts_batch(rows) == expected


@settings(max_examples=100, deadline=None)
@given(fsa=_out_of_fragment_machines())
def test_out_of_fragment_falls_back_to_v1(fsa):
    assert classify_fragment(fsa) is None
    assert determinize(fsa) is None
    tracer = Tracer()
    with activate(tracer):
        kernel = kernel_for(fsa)
    assert isinstance(kernel, CompiledKernel)
    assert tracer.counters["kernel.fallback"] == 1
    rows = _exhaustive_rows(fsa.arity, 2 if fsa.arity == 1 else 1)
    for row in rows:
        assert kernel.accepts(row) == reference_accepts(fsa, row)


# -- the fragment detector as an artifact ------------------------------


class TestClassifyFragment:
    def test_paper_shorthand_machines(self):
        assert classify_fragment(_compiled(sh.equals)) == RIGHT_RESTRICTED
        assert classify_fragment(_compiled(sh.prefix_of)) == RIGHT_RESTRICTED
        assert classify_fragment(_compiled(sh.occurs_in)) is None
        assert classify_fragment(_compiled(sh.manifold)) is None

    def test_single_tape_stay_right_is_unidirectional(self):
        fsa = make_fsa(
            1,
            AB,
            "s",
            ["f"],
            [
                ("s", (LEFT_END,), "scan", (+1,)),
                ("scan", ("a",), "scan", (+1,)),
                ("scan", (RIGHT_END,), "f", (0,)),
            ],
        )
        assert classify_fragment(fsa) == UNIDIRECTIONAL

    def test_left_move_disqualifies(self):
        fsa = make_fsa(
            1, AB, "s", ["s"], [("s", ("a",), "s", (-1,))]
        )
        assert classify_fragment(fsa) is None

    def test_desynchronized_heads_disqualify(self):
        fsa = make_fsa(
            2, AB, "s", ["s"], [("s", ("a", "a"), "s", (0, +1))]
        )
        assert classify_fragment(fsa) is None

    def test_arity_zero_disqualifies(self):
        fsa = make_fsa(0, AB, "s", ["f"], [("s", (), "f", ())])
        assert classify_fragment(fsa) is None


class TestDeterminizeCaps:
    def test_cell_budget_declines(self):
        fsa = _compiled(sh.equals)
        assert determinize(fsa, max_cells=8) is None

    def test_default_budget_admits_paper_machines(self):
        assert MAX_DFA_CELLS >= 1 << 16
        kernel = determinize(_compiled(sh.equals))
        assert isinstance(kernel, DeterministicKernel)
        assert kernel.dfa_states >= 3  # dead, accept, start at least


# -- validation parity --------------------------------------------------


class TestValidation:
    def test_arity_error(self):
        kernel = determinize(_compiled(sh.equals))
        with pytest.raises(ArityError):
            kernel.accepts(("a",))
        with pytest.raises(ArityError):
            kernel.accepts_batch([("a", "a"), ("a",)])

    def test_alphabet_error(self):
        kernel = determinize(_compiled(sh.equals))
        with pytest.raises(AlphabetError):
            kernel.accepts(("a", "xz"))
        with pytest.raises(AlphabetError):
            kernel.accepts_batch([("a", "a"), ("a", "z")])

    def test_endmarker_characters_rejected(self):
        kernel = determinize(_compiled(sh.equals))
        with pytest.raises(AlphabetError):
            kernel.accepts((LEFT_END, LEFT_END))
        with pytest.raises(AlphabetError):
            kernel.accepts((RIGHT_END, RIGHT_END))


# -- counters and instance caching -------------------------------------


class TestCountersAndCache:
    def test_determinize_counters(self):
        fsa = _compiled(sh.equals)
        # compile_string_formula memoizes machines process-wide, so an
        # earlier test may already have stashed a kernel on this exact
        # instance; drop it to observe the first-build counters.
        fsa.__dict__.pop("_kernel_v2", None)
        tracer = Tracer()
        with activate(tracer):
            kernel = determinized_for(fsa)
            again = determinized_for(fsa)
        assert again is kernel
        assert tracer.counters["kernel.determinize"] == 1
        assert tracer.counters["kernel.dfa_states"] == kernel.dfa_states
        assert tracer.counters["kernel.v2_hits"] == 1

    def test_scan_symbols_counter(self):
        kernel = determinize(_compiled(sh.equals))
        tracer = Tracer()
        with activate(tracer):
            kernel.accepts(("ab", "ab"))
            kernel.accepts_batch([("a", "a"), ("b", "a")])
        assert tracer.counters["simulate.runs"] == 3
        assert tracer.counters["simulate.scan_symbols"] >= 3

    def test_unsupported_verdict_is_cached(self):
        fsa = _compiled(sh.manifold)
        assert determinized_for(fsa) is None
        assert fsa.__dict__["_kernel_v2"] == "unsupported"
        assert determinized_for(fsa) is None  # served from the stash

    def test_forced_v1_never_returns_v2(self):
        fsa = _compiled(sh.equals)
        assert isinstance(kernel_for(fsa), DeterministicKernel)
        assert isinstance(kernel_for(fsa, "v1"), CompiledKernel)
        assert isinstance(kernel_for(fsa, "v2"), DeterministicKernel)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            kernel_for(_compiled(sh.equals), "v9")


# -- pickling (the satellite-3 regression) ------------------------------


class TestPickling:
    def test_machine_pickle_drops_v2_stash(self):
        fsa = _compiled(sh.equals)
        kernel_for(fsa)  # populates _kernel_v2
        assert "_kernel_v2" in fsa.__dict__
        clone = pickle.loads(pickle.dumps(fsa))
        assert "_kernel_v2" not in clone.__dict__
        assert "_kernel" not in clone.__dict__
        assert clone == fsa

    def test_unsupported_stash_dropped_too(self):
        fsa = _compiled(sh.manifold)
        kernel_for(fsa)  # stashes the "unsupported" verdict + v1 kernel
        clone = pickle.loads(pickle.dumps(fsa))
        assert "_kernel_v2" not in clone.__dict__

    def test_kernel_pickle_travels_as_its_machine(self):
        kernel = determinized_for(_compiled(sh.prefix_of))
        clone = pickle.loads(pickle.dumps(kernel))
        assert isinstance(clone, DeterministicKernel)
        assert clone.accepts(("ab", "abb"))
        assert not clone.accepts(("b", "ab"))


# -- decompilation and lockstep fusion ---------------------------------


class TestDfaToFsa:
    def test_round_trip_language(self):
        fsa = _compiled(sh.equals)
        machine = dfa_to_fsa(determinize(fsa))
        assert classify_fragment(machine) == RIGHT_RESTRICTED
        for row in _exhaustive_rows(2, 2):
            assert reference_accepts(machine, row) == reference_accepts(
                fsa, row
            )

    def test_unidirectional_round_trip(self):
        fsa = make_fsa(
            1,
            AB,
            "s",
            ["f"],
            [
                ("s", (LEFT_END,), "scan", (+1,)),
                ("scan", ("a",), "scan", (+1,)),
                ("scan", ("b",), "odd", (+1,)),
                ("odd", ("b",), "scan", (+1,)),
                ("odd", ("a",), "odd", (+1,)),
                ("scan", (RIGHT_END,), "f", (0,)),
            ],
        )
        machine = dfa_to_fsa(determinize(fsa))
        for row in _exhaustive_rows(1, 4):
            assert reference_accepts(machine, row) == reference_accepts(
                fsa, row
            )


class TestLockstepIntersection:
    def test_intersection_language(self):
        eq, prefix = _compiled(sh.equals), _compiled(sh.prefix_of)
        fused = lockstep_intersection(eq, prefix)
        assert fused is not None
        assert classify_fragment(fused) == RIGHT_RESTRICTED
        for row in _exhaustive_rows(2, 2):
            want = reference_accepts(eq, row) and reference_accepts(
                prefix, row
            )
            assert reference_accepts(fused, row) == want

    def test_out_of_fragment_operand_declines(self):
        assert (
            lockstep_intersection(_compiled(sh.equals), _compiled(sh.manifold))
            is None
        )

    def test_mismatched_shapes_decline(self):
        eq = _compiled(sh.equals)
        other = compile_string_formula(
            sh.equals(Var("x"), Var("y")), Alphabet("abc")
        ).fsa
        assert lockstep_intersection(eq, other) is None
        one_tape = make_fsa(
            1, AB, "s", ["s"], [("s", ("a",), "s", (+1,))]
        )
        assert lockstep_intersection(eq, one_tape) is None

    @settings(max_examples=60, deadline=None)
    @given(first=_in_fragment_machines(), second=_in_fragment_machines())
    def test_intersection_property(self, first, second):
        if first.arity != second.arity:
            assert lockstep_intersection(first, second) is None
            return
        fused = lockstep_intersection(first, second)
        assert fused is not None
        rows = _exhaustive_rows(first.arity, 2 if first.arity == 1 else 1)
        for row in rows:
            want = reference_accepts(first, row) and reference_accepts(
                second, row
            )
            assert reference_accepts(fused, row) == want, row
