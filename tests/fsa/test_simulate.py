"""Tests for FSA simulation and the Theorem 3.3 acceptance algorithm."""

from repro.core.alphabet import AB, LEFT_END, RIGHT_END
from repro.fsa.machine import make_fsa
from repro.fsa.simulate import (
    accepting_run,
    accepts,
    initial_configuration,
    language,
    reachable_configurations,
)


def equality_machine():
    """Hand-built 2-FSA accepting pairs of equal strings."""
    transitions = [("s", (LEFT_END, LEFT_END), "cmp", (+1, +1))]
    for char in AB:
        transitions.append(("cmp", (char, char), "cmp", (+1, +1)))
    transitions.append(("cmp", (RIGHT_END, RIGHT_END), "f", (0, 0)))
    return make_fsa(2, AB, "s", ["f"], transitions)


def palindrome_machine():
    """A two-way 1-FSA accepting palindromes over {a, b}.

    Walks to the right end, then compares outermost characters by
    zig-zagging — a genuine use of bidirectional movement.
    """
    # Simpler two-way demo: accept strings whose first and last
    # characters agree (length >= 1), by scanning right then returning.
    transitions = [("s", (LEFT_END,), "right", (+1,))]
    for char in AB:
        transitions.append(("right", (char,), "right", (+1,)))
        for other in AB:  # walk back over anything
            transitions.append((f"back_{char}", (other,), f"back_{char}", (-1,)))
        transitions.append((f"back_{char}", (LEFT_END,), f"check_{char}", (+1,)))
        transitions.append((f"check_{char}", (char,), "f", (0,)))
        transitions.append(("right", (RIGHT_END,), f"last_{char}", (-1,)))
        transitions.append((f"last_{char}", (char,), f"back_{char}", (0,)))
    return make_fsa(1, AB, "s", ["f"], transitions)


class TestAcceptance:
    def test_equality_machine(self):
        fsa = equality_machine()
        assert accepts(fsa, ("abab", "abab"))
        assert accepts(fsa, ("", ""))
        assert not accepts(fsa, ("ab", "ba"))
        assert not accepts(fsa, ("ab", "abb"))

    def test_two_way_first_last_machine(self):
        fsa = palindrome_machine()
        assert accepts(fsa, ("aba",))
        assert accepts(fsa, ("a",))
        assert accepts(fsa, ("abba",))
        assert not accepts(fsa, ("ab",))
        assert not accepts(fsa, ("",))

    def test_halting_acceptance_requires_stuckness(self):
        # A final state with an enabled outgoing transition does not
        # accept: the computation must be unable to continue.
        fsa = make_fsa(
            1,
            AB,
            "s",
            ["s"],
            [("s", (LEFT_END,), "s", (0,))],
        )
        # In the initial configuration the loop is always enabled and
        # the machine never halts, so nothing is accepted.
        assert not accepts(fsa, ("",))
        assert not accepts(fsa, ("a",))

    def test_final_state_accepts_when_stuck(self):
        fsa = make_fsa(
            1,
            AB,
            "s",
            ["s"],
            [("s", ("a",), "s", (0,))],  # never enabled at ⊢
        )
        assert accepts(fsa, ("a",))
        assert accepts(fsa, ("",))

    def test_arity_enforced(self):
        import pytest

        from repro.errors import ArityError

        with pytest.raises(ArityError):
            accepts(equality_machine(), ("a",))


class TestWitnesses:
    def test_accepting_run_structure(self):
        fsa = equality_machine()
        run = accepting_run(fsa, ("ab", "ab"))
        assert run is not None
        assert run[0] == initial_configuration(fsa)
        assert run[-1].state == "f"
        # ⊢ + two characters + final stationary step
        assert len(run) == 5

    def test_accepting_run_none_on_reject(self):
        assert accepting_run(equality_machine(), ("a", "b")) is None


class TestConfigurationGraph:
    def test_reachable_configurations_polynomial_size(self):
        fsa = equality_machine()
        sizes = []
        for n in (2, 4, 8):
            inputs = ("a" * n, "a" * n)
            sizes.append(len(reachable_configurations(fsa, inputs)))
        # Linear growth for this machine: configurations track the
        # diagonal of the position grid.
        assert sizes[0] < sizes[1] < sizes[2]
        assert sizes[2] <= 4 * (8 + 2)

    def test_language_enumeration(self):
        fsa = equality_machine()
        lang = language(fsa, 2)
        assert lang == {(u, u) for u in AB.strings(2)}
