"""Tests for output generation (the Mealy-machine reading of Def 3.1)."""

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.fsa.compile import compile_string_formula
from repro.fsa.generate import accepted_tuples
from repro.fsa.simulate import language


class TestUnidirectionalGeneration:
    def test_equals_generates_copy(self):
        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        outputs = accepted_tuples(fsa, max_length=2, fixed={0: "ab"})
        assert outputs == {("ab",)}

    def test_concatenation_generates_the_concatenation(self):
        # x = y · z with y, z fixed: generate x (the paper's running
        # safe-generation example from Section 4).
        fsa = compile_string_formula(sh.concatenation("x", "y", "z"), AB).fsa
        outputs = accepted_tuples(fsa, max_length=4, fixed={1: "ab", 2: "ba"})
        assert outputs == {("abba",)}

    def test_concatenation_generates_all_splits(self):
        fsa = compile_string_formula(sh.concatenation("x", "y", "z"), AB).fsa
        outputs = accepted_tuples(fsa, max_length=2, fixed={0: "ab"})
        assert outputs == {("", "ab"), ("a", "b"), ("ab", "")}

    def test_unbounded_generation_is_cut_at_max_length(self):
        # x ∈ a* has infinitely many members; the bound truncates.
        from repro.core.syntax import IsChar, IsEmpty, SStar, atom, concat, left

        phi = concat(
            SStar(atom(left("x"), IsChar("x", "a"))),
            atom(left("x"), IsEmpty("x")),
        )
        fsa = compile_string_formula(phi, AB).fsa
        outputs = accepted_tuples(fsa, max_length=3)
        assert outputs == {("",), ("a",), ("aa",), ("aaa",)}

    def test_open_ended_tape_yields_extensions(self):
        # [x]_l x = a pins only the first character: every string
        # starting with 'a' is accepted.
        from repro.core.syntax import IsChar, atom, left

        fsa = compile_string_formula(atom(left("x"), IsChar("x", "a")), AB).fsa
        outputs = accepted_tuples(fsa, max_length=2)
        assert outputs == {("a",), ("aa",), ("ab",)}

    def test_matches_brute_force_language(self):
        for formula in (
            sh.prefix_of("x", "y"),
            sh.shuffle("x", "y", "z"),
            sh.occurs_in("x", "y"),
        ):
            fsa = compile_string_formula(formula, AB).fsa
            assert accepted_tuples(fsa, max_length=2) == language(fsa, 2)


class TestBidirectionalGeneration:
    def test_manifold_outputs(self):
        # y is bidirectional in x ∈*_s y: generation falls back to
        # guessing y over Σ^{<=L}.
        fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
        outputs = accepted_tuples(fsa, max_length=4, fixed={0: "abab"})
        assert outputs == {("ab",), ("abab",)}

    def test_manifold_generation_of_x(self):
        fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
        outputs = accepted_tuples(fsa, max_length=4, fixed={1: "ab"})
        assert outputs == {("ab",), ("abab",)}

    def test_matches_brute_force_language(self):
        fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
        assert accepted_tuples(fsa, max_length=3) == language(fsa, 3)
