"""Tests for the k-FSA data model."""

import pytest

from repro.core.alphabet import AB, LEFT_END, RIGHT_END
from repro.errors import ArityError, TransitionError
from repro.fsa.machine import FSA, Transition, make_fsa, tape_symbol


def sample_machine() -> FSA:
    """A 1-FSA accepting a*: scan a's, halt on ⊣."""
    return make_fsa(
        1,
        AB,
        start="s",
        finals=["f"],
        transitions=[
            ("s", (LEFT_END,), "scan", (+1,)),
            ("scan", ("a",), "scan", (+1,)),
            ("scan", (RIGHT_END,), "f", (0,)),
        ],
    )


class TestTransition:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(TransitionError):
            Transition("p", ("a", "b"), "q", (0,))

    def test_illegal_move_value(self):
        with pytest.raises(TransitionError):
            Transition("p", ("a",), "q", (2,))

    def test_endmarker_legality(self):
        with pytest.raises(TransitionError):
            Transition("p", (LEFT_END,), "q", (-1,))
        with pytest.raises(TransitionError):
            Transition("p", (RIGHT_END,), "q", (+1,))
        # staying or moving inward is fine
        Transition("p", (LEFT_END,), "q", (+1,))
        Transition("p", (RIGHT_END,), "q", (-1,))

    def test_stationary(self):
        assert Transition("p", ("a", "b"), "q", (0, 0)).is_stationary()
        assert not Transition("p", ("a", "b"), "q", (0, 1)).is_stationary()


class TestFSA:
    def test_size_counts_transitions(self):
        assert sample_machine().size == 3

    def test_outgoing_index(self):
        fsa = sample_machine()
        assert len(fsa.outgoing("scan")) == 2
        assert fsa.outgoing("f") == ()

    def test_incoming(self):
        fsa = sample_machine()
        assert {t.source for t in fsa.incoming("scan")} == {"s", "scan"}

    def test_start_must_be_a_state(self):
        with pytest.raises(TransitionError):
            FSA(1, frozenset({"a"}), "missing", frozenset(), frozenset(), AB)

    def test_transition_symbols_validated(self):
        with pytest.raises(TransitionError):
            make_fsa(
                1, AB, "s", ["f"], [("s", ("z",), "f", (0,))]
            )

    def test_arity_checked_against_transitions(self):
        with pytest.raises(ArityError):
            make_fsa(2, AB, "s", ["f"], [("s", ("a",), "f", (0,))])

    def test_unidirectional_classification(self):
        fsa = sample_machine()
        assert fsa.is_unidirectional()
        assert fsa.unidirectional_tapes() == {0}
        two_way = make_fsa(
            2,
            AB,
            "s",
            ["f"],
            [
                ("s", ("a", "b"), "f", (+1, -0)),
                ("f", ("a", "b"), "s", (0, -1)),
            ],
        )
        assert two_way.bidirectional_tapes() == {1}

    def test_pruned_drops_dead_states(self):
        fsa = make_fsa(
            1,
            AB,
            "s",
            ["f"],
            [
                ("s", ("a",), "f", (0,)),
                ("s", ("b",), "dead_end", (0,)),
                ("unreachable", ("a",), "f", (0,)),
            ],
        )
        pruned = fsa.pruned()
        assert pruned.states == {"s", "f"}
        assert pruned.size == 1

    def test_pruned_keeps_start_without_finals(self):
        fsa = make_fsa(1, AB, "s", [], [("s", ("a",), "q", (0,))])
        pruned = fsa.pruned()
        assert pruned.states == {"s"}
        assert pruned.finals == frozenset()

    def test_renumbered_start_is_zero(self):
        fsa = sample_machine().renumbered()
        assert fsa.start == 0
        assert fsa.states == {0, 1, 2}

    def test_map_states_requires_injection(self):
        with pytest.raises(TransitionError):
            sample_machine().map_states(lambda s: "same")


class TestTapeSymbol:
    def test_endmarkers_and_characters(self):
        assert tape_symbol("abc", 0) == LEFT_END
        assert tape_symbol("abc", 1) == "a"
        assert tape_symbol("abc", 3) == "c"
        assert tape_symbol("abc", 4) == RIGHT_END

    def test_empty_string_tape(self):
        assert tape_symbol("", 0) == LEFT_END
        assert tape_symbol("", 1) == RIGHT_END

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            tape_symbol("ab", 5)
        with pytest.raises(IndexError):
            tape_symbol("ab", -1)
