"""Tests for Lemma 3.1 specialization."""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.errors import ArityError
from repro.fsa.compile import compile_string_formula
from repro.fsa.simulate import accepts, language
from repro.fsa.specialize import specialize


def equals_machine():
    return compile_string_formula(sh.equals("x", "y"), AB).fsa


class TestSpecialize:
    def test_language_projection(self):
        fsa = equals_machine()
        fixed = specialize(fsa, {0: "ab"})
        assert fixed.arity == 1
        assert language(fixed, 3) == {("ab",)}

    def test_fix_second_tape(self):
        fsa = equals_machine()
        fixed = specialize(fsa, {1: "ba"})
        assert language(fixed, 3) == {("ba",)}

    def test_fix_all_tapes_zero_fsa(self):
        fsa = equals_machine()
        good = specialize(fsa, {0: "ab", 1: "ab"})
        assert good.arity == 0
        assert accepts(good, ())
        bad = specialize(fsa, {0: "ab", 1: "aa"})
        assert not accepts(bad, ())

    def test_specialization_preserves_acceptance(self):
        fsa = compile_string_formula(
            sh.concatenation("x", "y", "z"), AB
        ).fsa
        for y in ("", "a", "ab"):
            fixed = specialize(fsa, {1: y})
            for x in AB.strings(3):
                for z in AB.strings(2):
                    assert accepts(fixed, (x, z)) == accepts(fsa, (x, y, z))

    def test_unpruned_matches_paper_bound(self):
        fsa = equals_machine()
        full = specialize(fsa, {0: "aba"}, prune=False)
        # |states| = |Q| * (|u|+2)
        assert len(full.states) == len(fsa.states) * (3 + 2)

    def test_bad_tape_index(self):
        with pytest.raises(ArityError):
            specialize(equals_machine(), {7: "a"})

    def test_two_way_machine_specialization(self):
        fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
        fixed = specialize(fsa, {1: "ab"})
        assert language(fixed, 4) == {("ab",), ("abab",)}
