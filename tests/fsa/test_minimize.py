"""Tests for the bisimulation quotient."""

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.fsa.compile import compile_string_formula
from repro.fsa.machine import make_fsa
from repro.fsa.minimize import bisimulation_quotient
from repro.fsa.simulate import accepts, language


class TestQuotient:
    def test_merges_parallel_duplicates(self):
        from repro.core.alphabet import LEFT_END

        # Two states with identical outgoing behaviour collapse.
        fsa = make_fsa(
            1,
            AB,
            "s",
            ["f"],
            [
                ("s", (LEFT_END,), "p", (+1,)),
                ("s", (LEFT_END,), "q", (+1,)),
                ("p", ("b",), "f", (0,)),
                ("q", ("b",), "f", (0,)),
            ],
        )
        small = bisimulation_quotient(fsa)
        assert len(small.states) == len(fsa.states) - 1
        assert accepts(small, ("b",))
        for word in AB.strings(3):
            assert accepts(small, (word,)) == accepts(fsa, (word,))

    def test_distinguishes_finality(self):
        from repro.core.alphabet import LEFT_END

        fsa = make_fsa(
            1,
            AB,
            "s",
            ["f"],
            [
                ("s", (LEFT_END,), "m", (+1,)),
                ("m", ("a",), "f", (0,)),
                ("m", ("b",), "dead", (0,)),
            ],
        )
        small = bisimulation_quotient(fsa)
        # f (final) and dead (non-final) share signatures but must not merge.
        assert len(small.finals) == 1
        assert not accepts(small, ("b",))
        assert accepts(small, ("a",))

    def test_language_preserved_on_compiled_machines(self):
        for formula in (sh.equals("x", "y"), sh.prefix_of("x", "y")):
            fsa = compile_string_formula(formula, AB).fsa
            small = bisimulation_quotient(fsa)
            assert len(small.states) <= len(fsa.states)
            assert language(small, 2) == language(fsa, 2)

    def test_idempotent(self):
        fsa = compile_string_formula(sh.constant("x", "ab"), AB).fsa
        once = bisimulation_quotient(fsa)
        twice = bisimulation_quotient(once)
        assert len(once.states) == len(twice.states)

    def test_two_way_machine_preserved(self):
        fsa = compile_string_formula(sh.manifold("x", "y"), AB).fsa
        small = bisimulation_quotient(fsa)
        for x in ("", "ab", "abab", "aba"):
            assert accepts(small, (x, "ab")) == accepts(fsa, (x, "ab")), x
