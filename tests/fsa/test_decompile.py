"""Tests for Theorem 3.2: FSA → string formula."""

from itertools import product

from repro.core import shorthands as sh
from repro.core.alphabet import AB, LEFT_END, RIGHT_END
from repro.core.semantics import check_string_formula
from repro.core.syntax import bidirectional_variables, string_variables
from repro.fsa.compile import compile_string_formula
from repro.fsa.decompile import (
    decompile,
    normalize_for_decompile,
    transition_formula,
    unsatisfiable,
)
from repro.fsa.machine import Transition, make_fsa
from repro.fsa.simulate import accepts


def assert_formula_matches_machine(fsa, variables, max_len):
    phi = decompile(fsa, variables)
    pool = list(fsa.alphabet.strings(max_len))
    for values in product(pool, repeat=fsa.arity):
        env = dict(zip(variables, values))
        assert check_string_formula(phi, env) == accepts(fsa, values), values


class TestTransitionFormula:
    def test_reads_and_moves_encoded(self):
        t = Transition("p", ("a", RIGHT_END), "q", (+1, 0))
        phi = transition_formula(t, ("x", "y"))
        # Satisfied exactly when x shows 'a' and y is exhausted; then x
        # slides left.
        assert check_string_formula(phi, {"x": "a", "y": ""}) is False  # initial: x shows ε
        # (the formula tests the *current* window, so from an initial
        # alignment only all-ε reads can fire)
        t0 = Transition("p", (LEFT_END, LEFT_END), "q", (+1, 0))
        phi0 = transition_formula(t0, ("x", "y"))
        assert check_string_formula(phi0, {"x": "a", "y": ""})


class TestUnsatisfiable:
    def test_unsatisfiable_everywhere_false(self):
        phi = unsatisfiable()
        for u in AB.strings(2):
            assert not check_string_formula(phi, {"x": u})


class TestNormalization:
    def test_halting_normalization_preserves_language(self):
        # Final state with outgoing transitions: accepts only when stuck.
        fsa = make_fsa(
            1,
            AB,
            "s",
            ["scan"],
            [
                ("s", (LEFT_END,), "scan", (+1,)),
                ("scan", ("a",), "scan", (+1,)),
            ],
        )
        normalized = normalize_for_decompile(fsa)
        (final,) = tuple(normalized.finals)
        assert normalized.outgoing(final) == ()
        for u in AB.strings(3):
            assert accepts(normalized, (u,)) == accepts(fsa, (u,)), u


class TestRoundTrips:
    def test_decompile_hand_machine(self):
        # a*b over {a,b}
        fsa = make_fsa(
            1,
            AB,
            "s",
            ["f"],
            [
                ("s", (LEFT_END,), "as", (+1,)),
                ("as", ("a",), "as", (+1,)),
                ("as", ("b",), "end", (+1,)),
                ("end", (RIGHT_END,), "f", (0,)),
            ],
        )
        assert_formula_matches_machine(fsa, ("x",), 4)

    def test_decompile_two_tape_machine(self):
        fsa = compile_string_formula(sh.constant("x", "a"), AB).fsa
        assert_formula_matches_machine(fsa, ("x",), 2)

    def test_compile_decompile_compile(self):
        phi = sh.prefix_of("x", "y")
        fsa = compile_string_formula(phi, AB).fsa
        back = decompile(fsa, ("x", "y"))
        pool = list(AB.strings(2))
        for u, v in product(pool, repeat=2):
            assert check_string_formula(back, {"x": u, "y": v}) == (
                v.startswith(u)
            ), (u, v)

    def test_bidirectionality_preserved(self):
        fsa = make_fsa(
            1,
            AB,
            "s",
            ["f"],
            [
                ("s", (LEFT_END,), "r", (+1,)),
                ("r", ("a",), "r", (+1,)),
                ("r", (RIGHT_END,), "l", (-1,)),
                ("l", ("a",), "l", (-1,)),
                ("l", (LEFT_END,), "f", (0,)),
            ],
        )
        phi = decompile(fsa, ("x",))
        assert bidirectional_variables(phi) == {"x"}
        assert_formula_matches_machine(fsa, ("x",), 3)

    def test_empty_language_machine(self):
        fsa = make_fsa(1, AB, "s", [], [])
        phi = decompile(fsa, ("x",))
        for u in AB.strings(2):
            assert not check_string_formula(phi, {"x": u})

    def test_variables_default_to_x1_xk(self):
        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        phi = decompile(fsa)
        assert string_variables(phi) <= {"x1", "x2"}
