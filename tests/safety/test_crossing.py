"""Tests for the crossing-sequence construction (A″)."""

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.syntax import (
    IsChar,
    IsEmpty,
    SStar,
    WTrue,
    atom,
    concat,
    left,
    not_empty,
    right,
)
from repro.fsa.compile import compile_string_formula
from repro.fsa.simulate import accepts
from repro.safety.crossing import (
    accepts_without_scanning_b,
    build_crossing_automaton,
    has_unread_cycle,
)


def a_star_scan_back():
    """y ∈ a*, verified forward, then rewound to the left end."""
    return concat(
        SStar(atom(left("y"), IsChar("y", "a"))),
        atom(left("y"), IsEmpty("y")),
        SStar(atom(right("y"), not_empty("y"))),
        atom(right("y"), IsEmpty("y")),
    )


class TestLanguagePreservation:
    def test_a_star_language(self):
        compiled = compile_string_formula(a_star_scan_back(), AB)
        crossing = build_crossing_automaton(compiled.fsa, 0, set(), {0})
        for word in AB.strings(4):
            expected = accepts(compiled.fsa, (word,))
            assert crossing.accepts(word) == expected, word

    def test_manifold_b_language_matches_machine(self):
        # For x ∈*_s y with b = y's tape: A″ accepts y iff some x makes
        # the machine accept — i.e. every y (take x = y).
        compiled = compile_string_formula(sh.manifold("x", "y"), AB)
        b = compiled.tape_of("y")
        crossing = build_crossing_automaton(
            compiled.fsa, b, {compiled.tape_of("x")}, {b}
        )
        for word in AB.strings(3):
            assert crossing.accepts(word), word

    def test_anbncn_counter_language(self):
        from repro.core.alphabet import Alphabet

        abc = Alphabet("abc")
        compiled = compile_string_formula(sh.anbncn_string_part("x", "y"), abc)
        b = compiled.tape_of("y")
        crossing = build_crossing_automaton(
            compiled.fsa, b, {compiled.tape_of("x")}, {b}
        )
        # every y = any string of length n works with x = aⁿbⁿcⁿ
        for word in ["", "a", "ab", "abc", "cb"]:
            assert crossing.accepts(word), word


class TestAnalyses:
    def test_unread_cycle_detected_for_pumpable_b(self):
        # y ∈ a* scanned back and forth with no other tape: pumpable.
        compiled = compile_string_formula(a_star_scan_back(), AB)
        crossing = build_crossing_automaton(compiled.fsa, 0, set(), {0})
        assert has_unread_cycle(crossing)

    def test_no_unread_cycle_when_input_paces_b(self):
        # x ∈*_s y: y's squares are re-scanned only while consuming x.
        compiled = compile_string_formula(sh.manifold("x", "y"), AB)
        crossing = build_crossing_automaton(
            compiled.fsa,
            compiled.tape_of("y"),
            {compiled.tape_of("x")},
            {compiled.tape_of("y")},
        )
        assert not has_unread_cycle(crossing)
        assert not accepts_without_scanning_b(crossing)

    def test_unscanned_b_detected(self):
        # only y's first character is ever inspected
        phi = concat(
            atom(left("y"), WTrue()),
            atom(right("y"), WTrue()),
        )
        compiled = compile_string_formula(phi, AB)
        crossing = build_crossing_automaton(compiled.fsa, 0, set(), {0})
        assert accepts_without_scanning_b(crossing)

    def test_scanned_b_not_flagged(self):
        compiled = compile_string_formula(a_star_scan_back(), AB)
        crossing = build_crossing_automaton(compiled.fsa, 0, set(), {0})
        assert not accepts_without_scanning_b(crossing)

    def test_size_reported(self):
        compiled = compile_string_formula(a_star_scan_back(), AB)
        crossing = build_crossing_automaton(compiled.fsa, 0, set(), {0})
        assert crossing.size() > 0
        assert len(crossing.states()) >= 2
