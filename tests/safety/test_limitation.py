"""Tests for the Theorem 5.2 limitation decision procedure."""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB, Alphabet
from repro.core.syntax import IsChar, IsEmpty, SStar, WTrue, atom, concat, left, right
from repro.errors import LimitationError
from repro.fsa.compile import compile_string_formula
from repro.safety.limitation import (
    LimitFunction,
    decide_limitation,
    formula_limitation,
)


class TestLimitFunction:
    def test_linear_shape(self):
        w = LimitFunction(3, quadratic=False)
        assert w(4) == 3 * 5
        assert w(2, 2) == 3 * 6
        assert w() == 3

    def test_quadratic_shape(self):
        w = LimitFunction(2, quadratic=True)
        assert w(3) == 2 * 4 * 5
        assert "quadratic" in w.describe()


class TestUnidirectionalDecisions:
    def test_equals_inputs_limit_outputs(self):
        report = formula_limitation(sh.equals("x", "y"), ["x"], ["y"], AB)
        assert report.limited
        assert not report.limit.quadratic
        # |y| = |x|, so the certified bound must dominate it.
        assert report.bound(5) >= 5

    def test_equals_nothing_limits_both(self):
        report = formula_limitation(sh.equals("x", "y"), [], ["x", "y"], AB)
        assert not report.limited
        assert "hard" in report.reason

    def test_prefix_directions(self):
        longer_bounds_shorter = formula_limitation(
            sh.prefix_of("x", "y"), ["y"], ["x"], AB
        )
        assert longer_bounds_shorter.limited
        shorter_does_not_bound_longer = formula_limitation(
            sh.prefix_of("x", "y"), ["x"], ["y"], AB
        )
        assert not shorter_does_not_bound_longer.limited
        assert "easy" in shorter_does_not_bound_longer.reason

    def test_concatenation_both_ways(self):
        phi = sh.concatenation("x", "y", "z")
        parts_limit_whole = formula_limitation(phi, ["y", "z"], ["x"], AB)
        assert parts_limit_whole.limited
        assert parts_limit_whole.bound(2, 3) >= 5
        whole_limits_parts = formula_limitation(phi, ["x"], ["y", "z"], AB)
        assert whole_limits_parts.limited

    def test_shuffle(self):
        phi = sh.shuffle("x", "y", "z")
        assert formula_limitation(phi, ["y", "z"], ["x"], AB).limited
        assert formula_limitation(phi, ["x"], ["y", "z"], AB).limited
        assert not formula_limitation(phi, ["y"], ["x"], AB).limited

    def test_edit_distance(self):
        phi = sh.edit_distance_at_most("x", "y", 2)
        report = formula_limitation(phi, ["x"], ["y"], AB)
        assert report.limited
        assert report.bound(4) >= 6  # |y| can reach |x| + k

    def test_constant_formula_bounds_its_variable(self):
        report = formula_limitation(sh.constant("x", "abab"), [], ["x"], AB)
        assert report.limited
        assert report.bound() >= 4

    def test_unbounded_star_language(self):
        phi = concat(
            SStar(atom(left("x"), IsChar("x", "a"))),
            atom(left("x"), IsEmpty("x")),
        )
        report = formula_limitation(phi, [], ["x"], AB)
        assert not report.limited

    def test_tape_validation(self):
        fsa = compile_string_formula(sh.equals("x", "y"), AB).fsa
        with pytest.raises(LimitationError):
            decide_limitation(fsa, [0], [7])
        with pytest.raises(LimitationError):
            decide_limitation(fsa, [0], [0])


class TestRightRestrictedDecisions:
    def test_manifold_base_is_limited_by_manifold(self):
        report = formula_limitation(sh.manifold("x", "y"), ["x"], ["y"], AB)
        assert report.limited
        assert report.limit.quadratic
        assert report.crossing_size is not None
        assert report.bound(4) >= 4

    def test_manifold_base_does_not_limit_manifold(self):
        report = formula_limitation(sh.manifold("x", "y"), ["y"], ["x"], AB)
        assert not report.limited

    def test_paper_query_pair(self):
        """The Section 5 example: x ∈*_s y makes one query safe, the
        mirrored one unsafe."""
        safe = formula_limitation(sh.manifold("x", "y"), ["x"], ["y"], AB)
        unsafe = formula_limitation(sh.manifold("y", "x"), ["x"], ["y"], AB)
        assert safe.limited
        assert not unsafe.limited

    def test_anbncn_counter_is_limited(self):
        abc = Alphabet("abc")
        phi = sh.anbncn_string_part("x", "y")
        report = formula_limitation(phi, ["x"], ["y"], abc)
        assert report.limited  # |y| = n <= |x|

    def test_anbncn_counter_limits_word(self):
        abc = Alphabet("abc")
        phi = sh.anbncn_string_part("x", "y")
        report = formula_limitation(phi, ["y"], ["x"], abc)
        assert report.limited  # |x| = 3 |y|

    def test_bidirectional_scan_without_end_check_unlimited(self):
        # y slides right and back but its right end is never required:
        # every y is accepted, so nothing limits it.
        phi = concat(
            atom(left("y"), WTrue()),
            atom(right("y"), WTrue()),
        )
        report = formula_limitation(phi, [], ["y"], AB)
        assert not report.limited

    def test_bidirectional_a_star_is_unlimited_but_accepted(self):
        phi = concat(
            SStar(atom(left("y"), IsChar("y", "a"))),
            atom(left("y"), IsEmpty("y")),
            SStar(atom(right("y"), WTrue())),
            atom(right("y"), IsEmpty("y")),
        )
        report = formula_limitation(phi, [], ["y"], AB)
        assert not report.limited

    def test_initial_right_transposes_prune_to_unidirectional(self):
        # Right transposes straight from the initial alignment clamp at
        # the left end; the compiled machine has no reachable leftward
        # move and is decided by the unidirectional procedure.
        phi = concat(
            atom(right("x"), WTrue()), atom(right("y"), WTrue())
        )
        fsa = compile_string_formula(phi, AB).fsa.pruned()
        assert fsa.is_unidirectional()
        report = formula_limitation(phi, ["x"], ["y"], AB)
        assert not report.limited  # y is entirely unconstrained

    def test_two_bidirectional_variables_rejected(self):
        def scan_and_back(var):
            from repro.core.syntax import not_empty

            return concat(
                SStar(atom(left(var), not_empty(var))),
                atom(left(var), IsEmpty(var)),
                SStar(atom(right(var), not_empty(var))),
                atom(right(var), IsEmpty(var)),
            )

        phi = concat(scan_and_back("x"), scan_and_back("y"))
        with pytest.raises(LimitationError):
            formula_limitation(phi, ["x"], ["y"], AB)
