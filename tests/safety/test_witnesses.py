"""Tests for the Theorem 5.2 bound-attainment witnesses."""

import pytest

from repro.core.alphabet import AB
from repro.errors import ArityError
from repro.fsa.generate import accepted_tuples
from repro.fsa.simulate import accepts
from repro.safety.limitation import decide_limitation
from repro.safety.witnesses import linear_bound_witness, quadratic_bound_witness


class TestLinearWitness:
    def test_output_length_is_s_times_rho(self):
        for s in (1, 2, 3):
            machine = linear_bound_witness(s, 1, AB)
            for word in ("", "a", "ab", "aba"):
                expected = "a" * (s * (len(word) + 1))
                assert accepts(machine, (word, expected)), (s, word)
                assert not accepts(machine, (word, expected + "a"))
                if expected:
                    assert not accepts(machine, (word, expected[:-1]))

    def test_two_input_tapes(self):
        machine = linear_bound_witness(2, 2, AB)
        expected = "a" * (2 * (2 + 1 + 2))  # s(|w1|+|w2|+k)
        assert accepts(machine, ("ab", "b", expected))

    def test_is_limited_with_linear_bound(self):
        machine = linear_bound_witness(3, 1, AB)
        report = decide_limitation(machine, [0], [1])
        assert report.limited
        assert not report.limit.quadratic
        # The certified bound dominates the attained output s·(n+1).
        assert report.bound(4) >= 3 * 5

    def test_generation_attains_the_bound(self):
        machine = linear_bound_witness(2, 1, AB)
        outputs = accepted_tuples(machine, max_length=12, fixed={0: "aba"})
        assert outputs == {("a" * (2 * 4),)}

    def test_validation(self):
        with pytest.raises(ArityError):
            linear_bound_witness(0, 1, AB)
        with pytest.raises(ArityError):
            linear_bound_witness(1, 0, AB)


class TestQuadraticWitness:
    def test_machine_is_right_restricted(self):
        machine = quadratic_bound_witness(2, 2, AB)
        assert machine.bidirectional_tapes() == {1}

    def test_output_grows_superlinearly(self):
        machine = quadratic_bound_witness(2, 2, AB)

        def longest_output(w1: str, w2: str) -> int:
            outputs = accepted_tuples(
                machine, max_length=64, fixed={0: w1, 1: w2}
            )
            return max((len(o) for (o,) in outputs), default=0)

        base = longest_output("a", "a")
        wound = longest_output("a", "aaaa")
        read = longest_output("aaa", "a")
        both = longest_output("aaa", "aaaa")
        # Output grows along both axes, and the combined growth exceeds
        # the sum of the individual ones — the product (quadratic)
        # shape of Theorem 5.2's right-restricted bound.
        assert wound > base and read > base
        assert both - base > (wound - base) + (read - base)

    def test_validation(self):
        with pytest.raises(ArityError):
            quadratic_bound_witness(3, 2, AB)
        with pytest.raises(ArityError):
            quadratic_bound_witness(2, 1, AB)
