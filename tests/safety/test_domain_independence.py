"""Tests for limit functions and certified safe evaluation."""

import pytest

from repro.core import shorthands as sh
from repro.core.alphabet import AB
from repro.core.database import Database
from repro.core.query import Query
from repro.core.semantics import evaluate_naive
from repro.core.syntax import (
    And,
    Not,
    exists,
    forall,
    lift,
    rel,
)
from repro.errors import SafetyError
from repro.safety.domain_independence import expression_limit, limit_function


def db() -> Database:
    return Database(
        AB,
        {
            "R1": [("ab",), ("b",)],
            "R3": [("ba",), ("a",)],
            "P": [("ab", "ab"), ("a", "ba")],
        },
    )


class TestLimitFunction:
    def test_relational_atom(self):
        report = limit_function(rel("R1", "x"), AB)
        assert report is not None
        assert report.bound(db()) >= 2

    def test_selection_with_string_formula(self):
        phi = And(rel("P", "x", "y"), lift(sh.equals("x", "y")))
        report = limit_function(phi, AB)
        assert report is not None
        assert report.bound(db()) >= 2

    def test_concatenation_query_certified(self):
        """The paper's Section 4 running example is domain independent:
        W(db) must dominate max(R1, db) + max(R3, db)."""
        phi = exists(
            ["y", "z"],
            And(
                And(rel("R1", "y"), rel("R3", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        )
        report = limit_function(phi, AB)
        assert report is not None
        assert report.bound(db()) >= 4

    def test_constant_formula_certified(self):
        report = limit_function(lift(sh.constant("x", "ab")), AB)
        assert report is not None
        assert report.bound(db()) >= 2

    def test_unsafe_a_star_not_certified(self):
        from repro.core.syntax import IsChar, IsEmpty, SStar, atom, concat, left

        phi = lift(
            concat(
                SStar(atom(left("x"), IsChar("x", "a"))),
                atom(left("x"), IsEmpty("x")),
            )
        )
        assert limit_function(phi, AB) is None

    def test_unsafe_manifold_direction_not_certified(self):
        # y | ∃x R1(x) ∧ (y is a manifold of x): y unbounded.
        phi = exists("x", And(rel("R1", "x"), lift(sh.manifold("y", "x"))))
        assert limit_function(phi, AB) is None

    def test_safe_manifold_direction_certified(self):
        # y | ∃x R1(x) ∧ (x is a manifold of y): |y| <= |x|.
        phi = exists("x", And(rel("R1", "x"), lift(sh.manifold("x", "y"))))
        report = limit_function(phi, AB)
        assert report is not None
        assert report.bound(db()) >= 2

    def test_negation_inherits_context_bounds(self):
        phi = And(rel("R1", "x"), Not(lift(sh.constant("x", "b"))))
        report = limit_function(phi, AB)
        assert report is not None

    def test_unbounded_quantifier_not_certified(self):
        # ∀x: proper_prefix(x, y) — the paper's ω-style unsafe pattern.
        phi = forall("x", lift(sh.proper_prefix_of("x", "y")))
        assert limit_function(phi, AB) is None

    def test_bound_description_is_readable(self):
        report = limit_function(rel("R1", "x"), AB)
        assert "R1" in report.describe()


class TestCertifiedQueryEvaluation:
    def test_query_auto_length_matches_naive(self):
        phi = exists(
            ["y", "z"],
            And(
                And(rel("R1", "y"), rel("R3", "z")),
                lift(sh.concatenation("x", "y", "z")),
            ),
        )
        q = Query(("x",), phi, AB)
        auto = q.evaluate(db())  # derives the limit itself
        manual = evaluate_naive(phi, ("x",), db(), tuple(AB.strings(4)))
        assert auto == manual
        assert ("abba",) in auto

    def test_query_without_certificate_raises(self):
        from repro.core.syntax import IsChar, IsEmpty, SStar, atom, concat, left

        phi = lift(
            concat(
                SStar(atom(left("x"), IsChar("x", "a"))),
                atom(left("x"), IsEmpty("x")),
            )
        )
        q = Query(("x",), phi, AB)
        with pytest.raises(SafetyError):
            q.evaluate(db())


class TestExpressionLimit:
    def test_relation_and_operators(self):
        from repro.algebra.expressions import Diff, Product, Project, Rel, Union

        assert expression_limit(Rel("R1", 1), db()) == 2
        assert expression_limit(Union(Rel("R1", 1), Rel("R3", 1)), db()) == 2
        assert (
            expression_limit(Project(Product(Rel("R1", 1), Rel("P", 2)), (1,)), db())
            == 2
        )

    def test_bare_sigma_star_unbounded(self):
        from repro.algebra.expressions import SigmaStar

        assert expression_limit(SigmaStar(), db()) is None

    def test_generative_selection_bounded(self):
        from repro.algebra.expressions import Rel, Select, SigmaStar, product_of
        from repro.fsa.compile import compile_string_formula

        machine = compile_string_formula(
            sh.concatenation("x", "y", "z"), AB, variables=("x", "y", "z")
        ).fsa
        expr = Select(
            product_of([SigmaStar(), Rel("R1", 1), Rel("R3", 1)]), machine
        )
        limit = expression_limit(expr, db())
        assert limit is not None and limit >= 4

    def test_unlimited_selection_unbounded(self):
        from repro.algebra.expressions import Rel, Select, SigmaStar, product_of
        from repro.fsa.compile import compile_string_formula

        machine = compile_string_formula(
            sh.prefix_of("x", "y"), AB, variables=("x", "y")
        ).fsa
        expr = Select(product_of([Rel("R1", 1), SigmaStar()]), machine)
        assert expression_limit(expr, db()) is None
