"""Tests for the Theorem 5.1 constructions: φ_G and backward TMs."""

import pytest

from repro.core.semantics import check_string_formula
from repro.core.syntax import bidirectional_variables
from repro.errors import ReproError
from repro.expressive.grammars import (
    Grammar,
    TuringMachine,
    TMTransition,
    anbn_grammar,
    backward_grammar,
)
from repro.safety.reductions import (
    derivation_encoding,
    grammar_alphabet,
    phi_g,
)


class TestDerivationEncoding:
    def test_chain_is_reversed(self):
        chain = ["S", "aSb", "aabb"]
        assert derivation_encoding(chain) == "aabb>aSb>S"

    def test_alphabet_includes_separator(self):
        sigma = grammar_alphabet(anbn_grammar())
        assert ">" in sigma
        assert {"S", "a", "b"} <= set(sigma.symbols)

    def test_separator_clash_rejected(self):
        with pytest.raises(ReproError):
            grammar_alphabet(Grammar("S", (("S", ">"),)))


class TestPhiG:
    def check(self, grammar, u, chain_text):
        phi = phi_g(grammar)
        return check_string_formula(
            phi, {"x1": u, "x2": chain_text, "x3": chain_text}
        )

    def test_accepts_true_derivations(self):
        grammar = anbn_grammar()
        chain = grammar.derivation("aabb", max_steps=5, max_length=10)
        assert chain == ["S", "aSb", "aabb"]
        encoded = derivation_encoding(chain)
        assert self.check(grammar, "aabb", encoded)

    def test_accepts_one_step_derivation(self):
        grammar = anbn_grammar()
        assert self.check(grammar, "ab", "ab>S")

    def test_rejects_wrong_word(self):
        grammar = anbn_grammar()
        assert not self.check(grammar, "abab", "aabb>aSb>S")

    def test_rejects_skipped_step(self):
        grammar = anbn_grammar()
        # aabb is two rule applications from S, not one.
        assert not self.check(grammar, "aabb", "aabb>S")

    def test_rejects_wrong_rule_application(self):
        grammar = anbn_grammar()
        assert not self.check(grammar, "abb", "abb>aSb>S")
        assert not self.check(grammar, "aabb", "aabb>ab>S")

    def test_rejects_unequal_copies(self):
        grammar = anbn_grammar()
        phi = phi_g(grammar)
        assert not check_string_formula(
            phi, {"x1": "ab", "x2": "ab>S", "x3": "ab>ab"}
        )

    def test_longer_derivation(self):
        grammar = anbn_grammar()
        chain = grammar.derivation("aaabbb", max_steps=6, max_length=12)
        assert self.check(grammar, "aaabbb", derivation_encoding(chain))

    def test_formula_has_two_bidirectional_variables(self):
        phi = phi_g(anbn_grammar())
        assert bidirectional_variables(phi) == {"x2", "x3"}


class TestBackwardTuringMachine:
    def unary_doubler(self) -> TuringMachine:
        """Rewrites the first 'a' to 'b' and halts — a tiny total TM."""
        return TuringMachine(
            states=frozenset({"q0", "q1"}),
            input_alphabet=frozenset({"a"}),
            tape_alphabet=frozenset({"a", "b", "_"}),
            blank="_",
            start="q0",
            transitions=(
                TMTransition("q0", "a", "q1", "b", +1),
            ),
        )

    def looper(self) -> TuringMachine:
        """Never halts: bounces on the first square forever."""
        return TuringMachine(
            states=frozenset({"q0", "q1"}),
            input_alphabet=frozenset({"a"}),
            tape_alphabet=frozenset({"a", "_"}),
            blank="_",
            start="q0",
            transitions=(
                TMTransition("q0", "a", "q1", "a", +1),
                TMTransition("q1", "a", "q0", "a", -1),
                TMTransition("q1", "_", "q0", "_", -1),
            ),
        )

    def test_run_semantics(self):
        assert self.unary_doubler().run("aa", max_steps=10)
        assert not self.looper().run("aa", max_steps=50)

    def test_backward_grammar_derives_inputs(self):
        grammar = backward_grammar(self.unary_doubler())
        # The grammar derives exactly machine inputs; "a" is one.
        assert grammar.derives_in("a", max_steps=12, max_length=10)
        assert grammar.derives_in("aa", max_steps=14, max_length=12)
        assert not grammar.derives_in("b", max_steps=12, max_length=10)

    def test_looper_has_unbounded_derivations(self):
        """The Theorem 5.1 reduction made visible: a non-halting TM
        yields ever-longer derivation chains for the same word."""
        grammar = backward_grammar(self.looper())
        lengths = set()
        chain = grammar.derivation("a", max_steps=16, max_length=10)
        assert chain is not None
        lengths.add(len(chain))
        # The derivation search finds the shortest; unboundedness shows
        # through the machine itself running forever:
        assert not self.looper().run("a", max_steps=200)

    def test_marker_clash_rejected(self):
        from repro.expressive.grammars import GrammarError

        with pytest.raises(GrammarError):
            backward_grammar(self.unary_doubler(), left_marker="a")
