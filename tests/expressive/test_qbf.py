"""Tests for Theorem 6.5: QBF through quantifier-limited machinery."""

from itertools import product

import pytest

from repro.errors import ReproError
from repro.expressive.qbf import (
    QBF,
    build_block_machine,
    build_interleaving_machine,
    build_matrix_machine,
    encode_assignment,
    encode_qbf,
    evaluate_qbf_via_machines,
    machines_for_level,
)
from repro.fsa.simulate import accepts


def sigma1(matrix) -> QBF:
    """∃x∃y-style one-block CNF instance."""
    return QBF((("E", ("x", "y")),), matrix)


def sigma2() -> QBF:
    """∃x ∀y DNF: (x ∧ y) ∨ (x ∧ ¬y) — true (pick x=1)."""
    return QBF(
        (("E", ("x",)), ("A", ("y",))),
        (((True, "x"), (True, "y")), ((True, "x"), (False, "y"))),
    )


def pi2() -> QBF:
    """∀x ∃y CNF: (x ∨ y) ∧ (¬x ∨ ¬y) — true (y = ¬x)."""
    return QBF(
        (("A", ("x",)), ("E", ("y",))),
        (((True, "x"), (True, "y")), ((False, "x"), (False, "y"))),
    )


class TestModel:
    def test_oracle_level1(self):
        true_instance = sigma1((((True, "x"), (True, "y")),))
        assert true_instance.evaluate()
        false_instance = sigma1(
            (((True, "x"),), ((False, "x"),))
        )
        assert not false_instance.evaluate()

    def test_oracle_level2(self):
        assert sigma2().evaluate()
        assert pi2().evaluate()
        false_pi2 = QBF(
            (("A", ("x",)), ("E", ("y",))),
            (((True, "x"), (True, "y")), ((True, "x"), (False, "y"))),
        )
        assert not false_pi2.evaluate()

    def test_normal_form_flags(self):
        assert sigma1((((True, "x"),),)).cnf
        assert not sigma2().cnf  # innermost ∀ → DNF
        assert pi2().cnf

    def test_validation(self):
        with pytest.raises(ReproError):
            QBF((), ())
        with pytest.raises(ReproError):
            QBF((("E", ("x",)), ("E", ("y",))), ())  # no alternation
        with pytest.raises(ReproError):
            QBF((("E", ("x", "x")),), ())  # repeated variable
        with pytest.raises(ReproError):
            QBF((("E", ("x",)),), (((True, "z"),),))  # free variable


class TestEncoding:
    def test_instance_encoding_shape(self):
        text = encode_qbf(pi2())
        assert text.startswith("A1;E10;#")
        assert text.count("(") == 2

    def test_assignment_encoding(self):
        text = encode_assignment(pi2(), {"x": True, "y": False})
        assert text == "1T10F"


class TestMachines:
    def test_block_machine_sizes(self):
        qbf = sigma2()
        instance = encode_qbf(qbf)
        m1 = build_block_machine(1, 2)
        m2 = build_block_machine(2, 2)
        assert accepts(m1, (instance, "T"))
        assert accepts(m1, (instance, "F"))
        assert not accepts(m1, (instance, ""))
        assert not accepts(m1, (instance, "TF"))
        assert accepts(m2, (instance, "T"))
        assert not accepts(m2, (instance, "TT"))

    def test_block_machine_multivariable(self):
        qbf = QBF(
            (("E", ("x", "y")), ("A", ("z",))),
            (((True, "x"),),),
        )
        instance = encode_qbf(qbf)
        m1 = build_block_machine(1, 2)
        assert accepts(m1, (instance, "TF"))
        assert not accepts(m1, (instance, "T"))

    def test_block_machine_is_a_type_qualifier(self):
        """The limitation [1] ↝ [2] of M_i — the Theorem 6.5 premise."""
        from repro.safety.limitation import decide_limitation

        report = decide_limitation(build_block_machine(1, 2), [0], [1])
        assert report.limited
        assert not report.limit.quadratic

    def test_interleaver_accepts_matching_assignment(self):
        qbf = sigma2()
        instance = encode_qbf(qbf)
        interleaver = build_interleaving_machine(2)
        assert accepts(interleaver, (instance, "1T10F", "T", "F"))
        assert not accepts(interleaver, (instance, "1T10F", "F", "F"))
        assert not accepts(interleaver, (instance, "1T10T", "T", "F"))
        assert not accepts(interleaver, (instance, "1T", "T", "F"))

    def test_interleaver_limitation(self):
        from repro.safety.limitation import decide_limitation

        report = decide_limitation(
            build_interleaving_machine(1), [0], [1, 2]
        )
        assert report.limited

    def test_matrix_machine_cnf_agrees_with_oracle(self):
        qbf = pi2()
        instance = encode_qbf(qbf)
        machine = build_matrix_machine(2, "A")
        for x, y in product((False, True), repeat=2):
            values = {"x": x, "y": y}
            expected = qbf._matrix_value(values)
            y_text = encode_assignment(qbf, values)
            assert accepts(machine, (instance, y_text)) == expected, values

    def test_matrix_machine_dnf_agrees_with_oracle(self):
        qbf = sigma2()
        instance = encode_qbf(qbf)
        machine = build_matrix_machine(2, "E")
        for x, y in product((False, True), repeat=2):
            values = {"x": x, "y": y}
            expected = qbf._matrix_value(values)
            y_text = encode_assignment(qbf, values)
            assert accepts(machine, (instance, y_text)) == expected, values

    def test_matrix_machine_is_right_restricted(self):
        machine = build_matrix_machine(2, "A")
        assert len(machine.bidirectional_tapes()) <= 1


class TestTheorem65Evaluation:
    def test_level1_instances(self):
        satisfiable = sigma1((((True, "x"), (False, "y")),))
        assert evaluate_qbf_via_machines(satisfiable) == satisfiable.evaluate()
        unsatisfiable = sigma1((((True, "x"),), ((False, "x"),)))
        assert (
            evaluate_qbf_via_machines(unsatisfiable)
            == unsatisfiable.evaluate()
            is False
        )

    def test_level2_sigma(self):
        assert evaluate_qbf_via_machines(sigma2()) is True

    def test_level2_pi(self):
        assert evaluate_qbf_via_machines(pi2()) is True

    def test_random_level2_instances_match_oracle(self):
        import random

        rng = random.Random(42)
        names = ("x", "y", "z")
        for trial in range(12):
            blocks = (
                ("E", ("x",)),
                ("A", ("y", "z")),
            ) if trial % 2 else (
                ("A", ("x",)),
                ("E", ("y", "z")),
            )
            matrix = tuple(
                tuple(
                    (rng.random() < 0.5, rng.choice(names))
                    for _ in range(rng.randint(1, 2))
                )
                for _ in range(rng.randint(1, 3))
            )
            qbf = QBF(blocks, matrix)
            assert evaluate_qbf_via_machines(qbf) == qbf.evaluate(), qbf

    def test_level3(self):
        qbf = QBF(
            (("E", ("x",)), ("A", ("y",)), ("E", ("z",))),
            # (x ∨ y ∨ z) ∧ (¬y ∨ ¬z) — innermost ∃ → CNF
            (
                ((True, "x"), (True, "y"), (True, "z")),
                ((False, "y"), (False, "z")),
            ),
        )
        assert evaluate_qbf_via_machines(qbf) == qbf.evaluate() is True
