"""Tests for Theorem 6.2 / Corollary 6.1 (r.e. languages)."""

import pytest

from repro.expressive.grammars import Grammar, anbn_grammar
from repro.expressive.recursively_enumerable import (
    check_membership,
    corollary_formula,
    re_membership_formula,
)


class TestMembership:
    def test_anbn_members_verified(self):
        grammar = anbn_grammar()
        for word in ("ab", "aabb", "aaabbb"):
            witness = check_membership(grammar, word, max_steps=6)
            assert witness is not None, word
            assert witness.word == word
            assert witness.encoded_chain.endswith(">S")
            assert witness.steps >= 1

    def test_non_members_rejected(self):
        grammar = anbn_grammar()
        for word in ("", "a", "ba", "abab", "aab"):
            assert check_membership(grammar, word, max_steps=6) is None, word

    def test_witness_chain_length_matches_derivation(self):
        grammar = anbn_grammar()
        witness = check_membership(grammar, "aaabbb", max_steps=8)
        assert witness.steps == 3  # S -> aSb -> aaSbb -> aaabbb

    def test_corollary_variant_agrees(self):
        grammar = anbn_grammar()
        for word in ("ab", "aabb"):
            assert (
                check_membership(
                    grammar, word, max_steps=6, formula_builder=corollary_formula
                )
                is not None
            ), word
        assert (
            check_membership(
                grammar, "aab", max_steps=6, formula_builder=corollary_formula
            )
            is None
        )

    def test_corollary_conjuncts_are_unidirectional(self):
        from repro.core.syntax import (
            Exists,
            StringAtom,
            bidirectional_variables,
            is_unidirectional,
            string_variables,
        )

        formula = corollary_formula(anbn_grammar())
        inner = formula
        while isinstance(inner, Exists):
            inner = inner.inner
        left, right = inner.left, inner.right
        assert is_unidirectional(left.formula)
        assert is_unidirectional(right.formula)
        # ψ does not mention x1 — the corollary's final remark.
        assert "x1" not in string_variables(right.formula)

    def test_theorem_formula_is_bidirectional(self):
        from repro.core.syntax import Exists, StringAtom, bidirectional_variables

        formula = re_membership_formula(anbn_grammar())
        inner = formula
        while isinstance(inner, Exists):
            inner = inner.inner
        assert bidirectional_variables(inner.formula) == {"x2", "x3"}

    def test_erasing_grammar(self):
        # L = a* via S -> aS | ε
        grammar = Grammar("S", (("S", "aS"), ("S", "")))
        assert check_membership(grammar, "aaa", max_steps=8) is not None
        assert check_membership(grammar, "b", max_steps=8) is None
