"""Tests for Theorem 6.6: LBA acceptance ⇔ formula truth."""

import pytest

from repro.core.semantics import check_string_formula
from repro.core.syntax import bidirectional_variables, is_right_restricted
from repro.errors import ReproError
from repro.expressive.lba import (
    LBA,
    LBATransition,
    formula_size,
    lba_formula,
    verify_acceptance_via_formula,
)


def parity_lba() -> LBA:
    """Accepts words over {a} of even length.

    Sweeps right flipping a parity bit in the state, accepts at ⊳ with
    even parity.
    """
    return LBA(
        states=frozenset({"e", "o", "f"}),
        tape_alphabet=frozenset({"a"}),
        start="e",
        accept="f",
        transitions=(
            LBATransition("e", "a", "o", "a", +1),
            LBATransition("o", "a", "e", "a", +1),
            LBATransition("e", ">", "f", ">", 0),
        ),
    )


def marker_lba() -> LBA:
    """Accepts {aⁿbⁿ}: repeatedly marks the leftmost a and rightmost b.

    Classic two-way sweeps exercising writes and both directions.
    """
    transitions = [
        # q: find leftmost unmarked a (skip X), mark it
        LBATransition("q", "X", "q", "X", +1),
        LBATransition("q", "a", "r", "X", +1),
        # all marked? then everything must be marked to the right
        LBATransition("q", "Y", "c", "Y", +1),
        LBATransition("q", ">", "f", ">", 0),
        # r: run right to the end over a, b
        LBATransition("r", "a", "r", "a", +1),
        LBATransition("r", "b", "r", "b", +1),
        LBATransition("r", "Y", "s", "Y", -1),
        LBATransition("r", ">", "s", ">", -1),
        # s: the cell left of the Y-region must be b; mark it
        LBATransition("s", "b", "t", "Y", -1),
        # t: run back left until the marked prefix, step back right
        LBATransition("t", "a", "t", "a", -1),
        LBATransition("t", "b", "t", "b", -1),
        LBATransition("t", "X", "q", "X", +1),
        # c: verify the remainder is all Y up to the end
        LBATransition("c", "Y", "c", "Y", +1),
        LBATransition("c", ">", "f", ">", 0),
    ]
    return LBA(
        states=frozenset({"q", "r", "s", "t", "c", "f"}),
        tape_alphabet=frozenset({"a", "b", "X", "Y"}),
        start="q",
        accept="f",
        transitions=tuple(transitions),
    )


class TestDirectSimulation:
    def test_parity(self):
        lba = parity_lba()
        assert lba.accepts("")
        assert lba.accepts("aa")
        assert lba.accepts("aaaa")
        assert not lba.accepts("a")
        assert not lba.accepts("aaa")

    def test_anbn(self):
        lba = marker_lba()
        for word, expected in [
            ("", True),
            ("ab", True),
            ("aabb", True),
            ("aaabbb", True),
            ("a", False),
            ("ba", False),
            ("abab", False),
            ("aab", False),
        ]:
            assert lba.accepts(word) is expected, word

    def test_accepting_run_structure(self):
        lba = parity_lba()
        run = lba.accepting_run("aa")
        assert run is not None
        assert run[0] == "<eaa>"
        assert run[-1].count("f") == 1
        assert all(len(c) == len("aa") + 3 for c in run)

    def test_validation(self):
        with pytest.raises(ReproError):
            LBATransition("q", "a", "p", "a", 2)
        with pytest.raises(ReproError):
            # reading the left marker is outside the head range
            LBA(
                states=frozenset({"q", "f"}),
                tape_alphabet=frozenset({"a"}),
                start="q",
                accept="f",
                transitions=(LBATransition("q", "<", "q", "<", +1),),
            )
        with pytest.raises(ReproError):
            LBA(
                states=frozenset({"q", "f"}),
                tape_alphabet=frozenset({"a"}),
                start="q",
                accept="f",
                transitions=(LBATransition("f", "a", "q", "a", +1),),
            )


class TestTheorem66Formula:
    def test_formula_is_right_restricted(self):
        phi = lba_formula(parity_lba(), "aa")
        assert is_right_restricted(phi)
        assert bidirectional_variables(phi) == {"x1"}

    def test_witness_accepted(self):
        lba = parity_lba()
        witness = lba.encode_computation("aa")
        phi = lba_formula(lba, "aa")
        assert check_string_formula(phi, {"x1": witness})

    def test_wrong_witnesses_rejected(self):
        lba = parity_lba()
        phi = lba_formula(lba, "aa")
        good = lba.encode_computation("aa")
        # planted accepting state after a broken chain
        assert not check_string_formula(phi, {"x1": "<eaa>" + "<faa>"[::-1]})
        # computation of the wrong input
        other = lba.encode_computation("aaaa")
        assert not check_string_formula(phi, {"x1": other})
        # truncated computation (no accepting configuration)
        assert not check_string_formula(phi, {"x1": good[: len(good) // 2]})
        # the paper's planted-p_m attack on the printed tail
        assert not check_string_formula(phi, {"x1": good + "f"})

    def test_acceptance_via_formula_matches_simulation(self):
        lba = marker_lba()
        for word in ["ab", "aabb", ""]:
            assert verify_acceptance_via_formula(lba, word)
        for word in ["a", "ba", "aab"]:
            assert not verify_acceptance_via_formula(lba, word)

    def test_formula_size_linear_in_input(self):
        lba = parity_lba()
        sizes = [formula_size(lba_formula(lba, "a" * n)) for n in (2, 4, 8)]
        # O(n · t · |Γ|): roughly linear growth in n
        assert sizes[0] < sizes[1] < sizes[2]
        ratio = sizes[2] / sizes[1]
        assert ratio < 3.0

    def test_multicharacter_states_rejected_for_encoding(self):
        lba = LBA(
            states=frozenset({"long_name", "f"}),
            tape_alphabet=frozenset({"a"}),
            start="long_name",
            accept="f",
            transitions=(),
        )
        with pytest.raises(ReproError):
            lba.formula_alphabet()
